//! # integrated-parallelism — reproduction facade
//!
//! Reproduction of Gholami, Azad, Jin, Keutzer & Buluç, *"Integrated
//! Model, Batch, and Domain Parallelism in Training Neural Networks"*
//! (SPAA 2018). This crate re-exports the whole workspace so examples
//! and integration tests (and downstream users) need a single
//! dependency:
//!
//! * [`mpsim`] — MPI-like simulator with α–β virtual clocks,
//! * [`collectives`] — ring/Bruck/recursive collectives + closed forms,
//! * [`tensor`] — dense matmul/conv kernels,
//! * [`dnn`] — layer shape algebra (Eq. 2) and the model zoo,
//! * [`distmm`] — executable 1D/1.5D/2D/domain distributed algorithms,
//! * [`integrated`] — the paper's cost models (Eqs. 3–9), optimizer,
//!   overlap/memory/SUMMA analyses, and the verified trainer.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.

pub use collectives;
pub use distmm;
pub use dnn;
pub use integrated;
pub use mpsim;
pub use tensor;
