//! End-to-end silent-data-corruption validation: the acceptance
//! scenarios for the ABFT-checksummed 1.5D GEMM and the weight-memory
//! audit.
//!
//! 1. A single high-bit compute flip is located by the Huang-Abraham
//!    row/column checksums and repaired **in place** — zero
//!    checkpoint restores, final weights bit-identical to fault-free.
//! 2. A resident-weight memory flip escapes the GEMM checksums but is
//!    caught by the iteration-start weight audit and rolled back;
//!    training converges to loss parity with the fault-free run.
//! 3. With the defense off, the same compute flip spreads through the
//!    collectives and the final weights silently diverge — the
//!    control that shows detection is doing the work.
//!
//! The fault-plan seed is taken from `FT_SEED` (default 3) so CI can
//! sweep a seed matrix over the same scenarios.

use integrated_parallelism::collectives::FtConfig;
use integrated_parallelism::dnn::zoo::mlp_tiny;
use integrated_parallelism::integrated::chaos::{ChaosPlan, Oracle};
use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
use integrated_parallelism::integrated::trainer::synthetic_data;
use integrated_parallelism::integrated::MachineModel;
use integrated_parallelism::mpsim::FaultPlan;
use integrated_parallelism::tensor::Matrix;

fn ft_seed() -> u64 {
    std::env::var("FT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn scfg(iters: usize, abft: bool) -> FtTrainConfig {
    FtTrainConfig {
        lr: 0.3,
        iters,
        seed: 7,
        ckpt_every: 2,
        abft,
        ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
        machine: MachineModel::cori_knl(),
        ..FtTrainConfig::default()
    }
}

fn max_weight_diff(a: &[Matrix], b: &[Matrix]) -> f64 {
    let mut d: f64 = 0.0;
    for (ma, mb) in a.iter().zip(b) {
        for (x, y) in ma.as_slice().iter().zip(mb.as_slice()) {
            d = d.max((x - y).abs());
        }
    }
    d
}

#[test]
fn compute_flip_is_corrected_in_place_with_zero_restores() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = scfg(8, true);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    let plan = FaultPlan::new(ft_seed()).bitflip_compute(3, 2, 1, 51);
    let faulty = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan);

    assert_eq!(faulty.stats.total_bitflips_compute(), 1, "flip fired");
    assert_eq!(
        faulty.stats.total_corrupt_corrected(),
        1,
        "repaired in place"
    );
    assert_eq!(faulty.stats.total_corrupt_recovered(), 0);
    assert_eq!(faulty.stats.total_aborts(), 0, "no escalation");
    for out in &faulty.per_rank {
        let o = out.as_ref().expect("every rank finishes");
        assert!(o.recoveries.is_empty(), "zero checkpoint restores");
    }
    assert_eq!(faulty.losses(), clean.losses(), "losses bit-identical");
    assert_eq!(
        max_weight_diff(&clean.weights(), &faulty.weights()),
        0.0,
        "weights bit-identical: the repair recomputed the exact products"
    );
}

#[test]
fn memory_flip_is_audited_and_rolled_back_to_parity() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = scfg(8, true);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    let plan = FaultPlan::new(ft_seed()).bitflip_memory(2, 3, 1234, 48);
    let faulty = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan);

    assert_eq!(faulty.stats.total_bitflips_memory(), 1, "flip fired");
    assert_eq!(faulty.stats.total_corrupt_recovered(), 1, "audit escalated");
    let o = faulty.per_rank[0].as_ref().expect("rank 0 finishes");
    assert_eq!(o.recoveries.len(), 1, "one checkpoint restore");
    for (a, b) in clean.losses().iter().zip(faulty.losses()) {
        assert!(
            (a - b).abs() < 1e-6,
            "loss parity after rollback: {a} vs {b}"
        );
    }
    assert!(
        max_weight_diff(&clean.weights(), &faulty.weights()) < 1e-6,
        "weights recover to parity"
    );
}

#[test]
fn recovery_straddling_a_partition_cut_converges() {
    // Regression: these SDC-generator seeds combine a [3,5] partition
    // with a memory bit-flip whose audit-triggered rollback lands on
    // the cut's activation edge. Seed 118 once livelocked — a stale
    // unreachability record blanked a healed peer's presence slot, so
    // no round ever readmitted it and the retry epochs climbed at a
    // frozen clock. Seed 183 once deadlocked — the cut activated
    // mid-agreement-round, per-sender clock skew made the reachability
    // graph non-transitive, and ranks committed to three different
    // quorum-winning fragments whose redistributions waited on each
    // other forever. The loop-top record reconciliation and the
    // fragment-closure verdict round keep both plans convergent.
    let oracle = Oracle::with_abft(2, 3, 8, true);
    for seed in [118, 183] {
        let plan = ChaosPlan::generate_sdc(seed);
        if let Err(v) = oracle.check(&plan) {
            panic!("sdc seed {seed} violated an invariant: {v}");
        }
    }
}

#[test]
fn undefended_flip_silently_diverges() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = scfg(8, false);

    // The flipped element is a hash draw keyed by the plan seed, and
    // some draws land on an element whose contribution rounds away —
    // so the control pins a seed whose draw provably diverges instead
    // of sweeping FT_SEED.
    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    let plan = FaultPlan::new(13).bitflip_compute(3, 2, 1, 51);
    let faulty = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan);

    assert_eq!(faulty.stats.total_bitflips_compute(), 1, "flip fired");
    assert_eq!(faulty.stats.total_corrupt_detected(), 0, "nobody noticed");
    assert!(
        max_weight_diff(&clean.weights(), &faulty.weights()) > 1e-6,
        "the corruption spread into the weights unchecked"
    );
}
