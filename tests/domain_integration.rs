//! Cross-crate integration for domain parallelism: the optimized
//! halo path vs the general window-redistribution path, traffic
//! accounting against Eq. 7, and property-based geometry sweeps.

use proptest::prelude::*;

use integrated_parallelism::distmm::dist::part_range;
use integrated_parallelism::distmm::{domain, domain_general};
use integrated_parallelism::mpsim::{NetModel, World};
use integrated_parallelism::tensor::conv::{conv2d_backward, conv2d_direct, Conv2dParams};
use integrated_parallelism::tensor::init;
use integrated_parallelism::tensor::pool::{maxpool2d, Pool2dParams};

#[test]
fn general_path_agrees_with_optimized_halo_path() {
    // Same-pad 3x3 conv: both implementations must produce identical
    // strips and identical ∆W.
    let params = Conv2dParams {
        in_c: 3,
        out_c: 4,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let (b, h, w) = (2usize, 12usize, 6usize);
    let x = init::uniform_tensor(b, 3, h, w, -1.0, 1.0, 81);
    let wt = init::uniform(4, params.patch_len(), -0.4, 0.4, 82);
    let dy = init::uniform_tensor(b, 4, h, w, -1.0, 1.0, 83);
    let p_ranks = 3;
    let out = World::run(p_ranks, NetModel::free(), |comm| {
        let rng = part_range(h, p_ranks, comm.rank());
        let strip = x.row_strip(rng.start, rng.end);
        let dy_strip = dy.row_strip(rng.start, rng.end);
        let y_opt = domain::forward(comm, &strip, &wt, &params).unwrap();
        let y_gen = domain_general::conv_forward(comm, &strip, &wt, &params, h).unwrap();
        let (dw_opt, dx_opt) = domain::backward(comm, &strip, &wt, &dy_strip, &params).unwrap();
        let (dw_gen, dx_gen) =
            domain_general::conv_backward(comm, &strip, &wt, &dy_strip, &params, h).unwrap();
        (
            y_opt.max_abs_diff(&y_gen),
            dw_opt.max_abs_diff(&dw_gen),
            dx_opt.max_abs_diff(&dx_gen),
        )
    });
    for (r, &(dy_, dw_, dx_)) in out.iter().enumerate() {
        assert!(
            dy_ < 1e-12 && dw_ < 1e-12 && dx_ < 1e-12,
            "rank {r}: {dy_} {dw_} {dx_}"
        );
    }
}

#[test]
fn optimized_halo_moves_less_than_general_fetch_for_same_pad() {
    // The optimized path sends each boundary once; the general path
    // re-fetches in the backward pass too but must stay within a small
    // constant factor (both are boundary-proportional).
    let params = Conv2dParams {
        in_c: 2,
        out_c: 2,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let (b, h, w) = (2usize, 16usize, 4usize);
    let x = init::uniform_tensor(b, 2, h, w, -1.0, 1.0, 84);
    let wt = init::uniform(2, params.patch_len(), -0.4, 0.4, 85);
    let p_ranks = 4;
    let words = |general: bool| {
        let (_, stats) = World::run_with_stats(p_ranks, NetModel::free(), |comm| {
            let rng = part_range(h, p_ranks, comm.rank());
            let strip = x.row_strip(rng.start, rng.end);
            if general {
                domain_general::conv_forward(comm, &strip, &wt, &params, h).unwrap();
            } else {
                domain::forward(comm, &strip, &wt, &params).unwrap();
            }
        });
        stats.total_words()
    };
    let opt = words(false);
    let gen = words(true);
    assert_eq!(opt, gen, "same-pad forward windows are exactly the halos");
}

#[test]
fn mini_alexnet_stage_chain_runs_under_domain_split() {
    // Drive the first two stages of the miniature AlexNet (strided
    // conv + overlapping pool) through the general kernels and verify
    // against serial, strip by strip.
    let conv1 = Conv2dParams {
        in_c: 3,
        out_c: 8,
        kh: 7,
        kw: 7,
        stride: 2,
        pad: 0,
    };
    let pool1 = Pool2dParams { k: 3, stride: 2 };
    let (b, h, w) = (2usize, 35usize, 35usize);
    let x = init::uniform_tensor(b, 3, h, w, -1.0, 1.0, 86);
    let wt = init::uniform(8, conv1.patch_len(), -0.2, 0.2, 87);
    let y1_ref = conv2d_direct(&x, &wt, &conv1);
    let (y2_ref, _) = maxpool2d(&y1_ref, &pool1);
    let p_ranks = 3;
    let out = World::run(p_ranks, NetModel::free(), |comm| {
        let rng = part_range(h, p_ranks, comm.rank());
        let strip = x.row_strip(rng.start, rng.end);
        let y1 = domain_general::conv_forward(comm, &strip, &wt, &conv1, h).unwrap();
        let (y2, _argmax) = domain_general::pool_forward(comm, &y1, &pool1, y1_ref.h).unwrap();
        y2
    });
    for (r, y2) in out.iter().enumerate() {
        let orng = part_range(y2_ref.h, p_ranks, r);
        let expect = y2_ref.row_strip(orng.start, orng.end);
        assert!(y2.approx_eq(&expect, 1e-10), "rank {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn general_conv_matches_serial_for_random_geometry(
        p_ranks in 1usize..5,
        kh in prop::sample::select(vec![1usize, 3, 5, 7]),
        stride in 1usize..4,
        pad in 0usize..3,
        h in 10usize..24,
        seed in 0u64..500,
    ) {
        // Keep geometry valid: padded height must fit the kernel, and
        // enough output rows for the ranks.
        prop_assume!(h + 2 * pad >= kh);
        let params = Conv2dParams { in_c: 2, out_c: 3, kh, kw: kh, stride, pad };
        let (oh, _) = params.out_hw(h, 8);
        prop_assume!(oh >= 1);
        let x = init::uniform_tensor(2, 2, h, 8, -1.0, 1.0, seed);
        let wt = init::uniform(3, params.patch_len(), -0.4, 0.4, seed + 1);
        let y_ref = conv2d_direct(&x, &wt, &params);
        let dy = init::uniform_tensor(2, 3, y_ref.h, y_ref.w, -1.0, 1.0, seed + 2);
        let (dw_ref, dx_ref) = conv2d_backward(&x, &wt, &dy, &params);
        let out = World::run(p_ranks, NetModel::free(), |comm| {
            let ip = part_range(h, p_ranks, comm.rank());
            let op = part_range(oh, p_ranks, comm.rank());
            let strip = x.row_strip(ip.start, ip.end);
            let y = domain_general::conv_forward(comm, &strip, &wt, &params, h).unwrap();
            let dy_strip = dy.row_strip(op.start, op.end);
            let (dw, dx) =
                domain_general::conv_backward(comm, &strip, &wt, &dy_strip, &params, h)
                    .unwrap();
            (y, dw, dx)
        });
        for (r, (y, dw, dx)) in out.iter().enumerate() {
            let op = part_range(oh, p_ranks, r);
            prop_assert!(y.approx_eq(&y_ref.row_strip(op.start, op.end), 1e-9),
                "rank {r} Y (k={kh} s={stride} pad={pad} h={h} P={p_ranks})");
            prop_assert!(dw.approx_eq(&dw_ref, 1e-8), "rank {r} dW");
            let ip = part_range(h, p_ranks, r);
            prop_assert!(dx.approx_eq(&dx_ref.row_strip(ip.start, ip.end), 1e-9),
                "rank {r} dX");
        }
    }

    #[test]
    fn general_pool_matches_serial_for_random_geometry(
        p_ranks in 1usize..5,
        k in 2usize..4,
        stride in 1usize..4,
        h in 8usize..20,
        seed in 0u64..500,
    ) {
        prop_assume!(h >= k);
        let pool = Pool2dParams { k, stride };
        let (oh, _) = pool.out_hw(h, 6);
        prop_assume!(oh >= 1);
        let x = init::uniform_tensor(2, 2, h, 6, -1.0, 1.0, seed);
        let (y_ref, _) = maxpool2d(&x, &pool);
        let out = World::run(p_ranks, NetModel::free(), |comm| {
            let ip = part_range(h, p_ranks, comm.rank());
            let strip = x.row_strip(ip.start, ip.end);
            let (y, _) = domain_general::pool_forward(comm, &strip, &pool, h).unwrap();
            y
        });
        for (r, y) in out.iter().enumerate() {
            let op = part_range(oh, p_ranks, r);
            prop_assert!(
                y.approx_eq(&y_ref.row_strip(op.start, op.end), 1e-12),
                "rank {r} (k={k} s={stride} h={h} P={p_ranks})"
            );
        }
    }
}
