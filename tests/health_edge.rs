//! Edge-case properties of the health/retry layer, exercised through
//! the public simulator API:
//!
//! 1. A jittered exponential-backoff retry schedule is **bit-identical
//!    across reruns of the same fault-plan seed** — the jitter draw is
//!    a pure function of (plan seed, link, retry count), never of real
//!    time or OS scheduling.
//! 2. Every jittered pause stays inside its declared envelope: the
//!    total elapsed virtual time is bounded by the no-jitter schedule
//!    below and the fully-stretched schedule above.

use integrated_parallelism::mpsim::{Error, FaultPlan, NetModel, RetryPolicy, World};
use proptest::prelude::*;

/// Runs a 2-rank world where the only message rank 1 awaits is dropped,
/// so every retry window expires and every backoff pause is charged.
/// Returns (elapsed virtual seconds on rank 1, retries, timeouts).
fn run_retry_schedule(seed: u64, policy: RetryPolicy) -> (f64, u64, u64) {
    let model = NetModel {
        alpha: 1e-6,
        beta: 0.0,
        flops: f64::INFINITY,
    };
    let plan = FaultPlan::new(seed).drop_nth(0, 1, 0);
    let (_, stats) = World::run_with_faults(2, model, plan, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, &[1.0]).unwrap();
        } else {
            let e = comm.recv_retry_policy(0, 3, &policy).unwrap_err();
            assert!(matches!(e, Error::Timeout { .. }));
        }
    });
    (
        stats.clocks[1].now,
        stats.ranks[1].retries,
        stats.ranks[1].timeouts,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jittered_backoff_replays_bit_identically(
        seed in 0u64..1_000_000,
        timeout in 0.1f64..2.0,
        attempts in 2usize..6,
        backoff in 0.05f64..1.0,
        factor in 1.0f64..2.5,
    ) {
        // Fixed full jitter: the draw actually matters on every pause.
        let policy = RetryPolicy::exponential(timeout, attempts, backoff, factor, 1.0);
        let (t_a, retries_a, timeouts_a) = run_retry_schedule(seed, policy);
        let (t_b, retries_b, timeouts_b) = run_retry_schedule(seed, policy);
        prop_assert_eq!(
            t_a.to_bits(),
            t_b.to_bits(),
            "elapsed schedule must replay bitwise: {} vs {}",
            t_a,
            t_b
        );
        prop_assert_eq!(retries_a, retries_b);
        prop_assert_eq!(timeouts_a, timeouts_b);
        prop_assert_eq!(retries_a as usize, attempts - 1);
        prop_assert_eq!(timeouts_a as usize, attempts);
    }

    #[test]
    fn jittered_pauses_stay_inside_their_envelope(
        seed in 0u64..1_000_000,
        timeout in 0.1f64..2.0,
        attempts in 2usize..6,
        backoff in 0.05f64..1.0,
        factor in 1.0f64..2.5,
        jitter in 0.0f64..1.0,
    ) {
        let policy = RetryPolicy::exponential(timeout, attempts, backoff, factor, jitter);
        let (elapsed, _, _) = run_retry_schedule(seed, policy);

        // Deterministic parts: `attempts` expired windows (each also
        // pays the α of the message-loss observation at most once per
        // window — bounded below by the windows alone) plus the pauses.
        let mut pauses_min = 0.0;
        let mut pause = backoff;
        for _ in 1..attempts {
            pauses_min += pause;
            pause *= factor;
        }
        let pauses_max = pauses_min * (1.0 + jitter);
        let windows = attempts as f64 * timeout;
        // Generous α allowance: one latency charge per window.
        let slack = attempts as f64 * 1e-5;
        prop_assert!(
            elapsed >= windows + pauses_min - 1e-12,
            "elapsed {} below no-jitter floor {}",
            elapsed,
            windows + pauses_min
        );
        prop_assert!(
            elapsed <= windows + pauses_max + slack,
            "elapsed {} above fully-stretched ceiling {}",
            elapsed,
            windows + pauses_max + slack
        );
    }
}
