//! Cross-backend equivalence: the discrete-event fiber engine and the
//! thread-per-rank oracle must be **bit-identical** — same results,
//! same traffic counters, same final virtual clocks, same traces —
//! for any workload under any valid fault plan.
//!
//! Both backends share every layer above the transport (matching by
//! `(ctx, src, tag)` with per-sender FIFO, all time from envelope
//! `depart` fields, fault decisions keyed on virtual time), so the
//! only way they can diverge is a scheduling-sensitive bug in one of
//! them. These proptests are the differential harness that pins that
//! down: random ring workloads × random fault scripts, executed on
//! both backends via [`World::run_topo_faults_traced_on`], compared
//! with exact (not approximate) equality.

use proptest::prelude::*;

use integrated_parallelism::collectives::FtConfig;
use integrated_parallelism::dnn::zoo::mlp_tiny;
use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
use integrated_parallelism::integrated::trainer::synthetic_data;
use integrated_parallelism::integrated::MachineModel;
use integrated_parallelism::mpsim::{
    Backend, FaultPlan, NetModel, Span, Topology, TraceConfig, World,
};

/// A ring-exchange workload that tolerates every scripted fault: each
/// rank alternates compute with a timed exchange to its right
/// neighbor, recording the exact outcome (payload bits or the error's
/// debug form) and its clock after every step. The returned value is
/// sensitive to any reordering, loss, corruption, duplication, kill,
/// or partition decision — a one-bit divergence between backends
/// changes it.
fn ring_workload(
    comm: &integrated_parallelism::mpsim::Communicator,
    iters: usize,
    words: usize,
) -> Vec<String> {
    let p = comm.size();
    let r = comm.rank();
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    let mut journal = Vec::with_capacity(iters * 2);
    for it in 0..iters {
        let tag = 100 + it as u64;
        let payload: Vec<f64> = (0..words)
            .map(|w| (r * 1000 + it * 10 + w) as f64 * 0.1)
            .collect();
        let sent = comm.send(right, tag, &payload);
        let got = comm.recv_timeout(left, tag, 25.0);
        journal.push(match (&sent, &got) {
            (Ok(()), Ok(data)) => {
                let bits: Vec<u64> = data.iter().map(|x| x.to_bits()).collect();
                format!("it{it}: ok {bits:?}")
            }
            _ => format!("it{it}: send={sent:?} recv={got:?}"),
        });
        journal.push(format!("it{it}: t={}", comm.now().to_bits()));
        if sent.is_err() && got.is_err() {
            // Dead or cut off: stop like a real program would.
            break;
        }
    }
    journal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random workload × random fault plan ⇒ bit-identical results,
    /// stats, and traces on both backends.
    #[test]
    fn backends_are_bit_identical_under_faults(
        p in 2usize..6,
        iters in 1usize..4,
        words in 1usize..9,
        kill_victim in 0usize..16,
        kill_at in 0.0f64..2.0,
        straggle_extra in 0.0f64..3.0,
        drop_nth in 0u64..3,
        reorder_depth in 1u64..3,
        part_at in 0.0f64..1.5,
        heal_dt in 0.01f64..2.0,
        menu in 0u32..32,
    ) {
        let model = NetModel {
            alpha: 0.5,
            beta: 0.01,
            flops: 1e9,
        };
        // Assemble a valid plan from the drawn ingredients; each menu
        // bit enables one fault class so the cases cover the empty
        // plan, single faults, and compound scripts.
        let mut plan = FaultPlan::new(42).with_default_timeout(25.0);
        if menu & 1 != 0 {
            plan = plan.kill(kill_victim % p, kill_at);
        }
        if menu & 2 != 0 {
            plan = plan.straggle(0, 1 % p, straggle_extra, 0.5, Span::All);
        }
        if menu & 4 != 0 {
            plan = plan.drop_nth(1 % p, 2 % p, drop_nth).corrupt_nth(0, 1 % p, drop_nth + 1);
        }
        if menu & 8 != 0 {
            plan = plan
                .duplicate_nth(2 % p, 3 % p, drop_nth)
                .reorder_nth(0, 1 % p, drop_nth, reorder_depth);
        }
        if menu & 16 != 0 {
            let group: Vec<usize> = (0..p / 2).collect();
            if !group.is_empty() {
                plan = plan
                    .partition_oneway(&group, part_at)
                    .heal(&group, part_at + heal_dt);
            }
        }
        prop_assume!(plan.validate().is_ok());

        let trace = TraceConfig::enabled().with_cap(1 << 12);
        let run = |backend| {
            World::run_topo_faults_traced_on(
                backend,
                p,
                model,
                Topology::flat(),
                plan.clone(),
                trace,
                |comm| ring_workload(comm, iters, words),
            )
        };
        let (out_t, stats_t, trace_t) = run(Backend::Threads);
        let (out_e, stats_e, trace_e) = run(Backend::Events);
        prop_assert_eq!(&out_t, &out_e, "results diverge");
        prop_assert_eq!(&stats_t, &stats_e, "stats diverge");
        prop_assert_eq!(&trace_t, &trace_e, "traces diverge");
    }
}

/// The full fault-tolerant trainer — checkpointing, kill detection,
/// shrink, replay — produces bit-identical loss curves on both
/// backends. This exercises the control plane (death notices, φ-accrual
/// health, revive) far beyond what the raw ring workload reaches.
#[test]
fn ft_trainer_loss_curve_is_backend_invariant() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = FtTrainConfig {
        lr: 0.3,
        iters: 6,
        seed: 7,
        ckpt_every: 2,
        ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
        machine: MachineModel::cori_knl(),
        ..FtTrainConfig::default()
    };
    let run = |backend| {
        // `set_override` is process-global, so scope it tightly; the
        // trainer only consults it when its inner `World` launches.
        Backend::set_override(Some(backend));
        let plan = FaultPlan::new(3).kill(3, 0.4);
        let r = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 2, plan);
        Backend::set_override(None);
        r
    };
    let a = run(Backend::Threads);
    let b = run(Backend::Events);
    assert_eq!(a.stats, b.stats, "world stats diverge across backends");
    assert_eq!(
        a.per_rank.len(),
        b.per_rank.len(),
        "rank counts diverge across backends"
    );
    for (r, (oa, ob)) in a.per_rank.iter().zip(&b.per_rank).enumerate() {
        match (oa, ob) {
            (Ok(sa), Ok(sb)) => {
                let la: Vec<u64> = sa.losses.iter().map(|x| x.to_bits()).collect();
                let lb: Vec<u64> = sb.losses.iter().map(|x| x.to_bits()).collect();
                assert_eq!(la, lb, "rank {r}: loss curves diverge across backends");
                assert_eq!(
                    sa.recoveries.len(),
                    sb.recoveries.len(),
                    "rank {r}: recovery counts diverge"
                );
            }
            (Err(ea), Err(eb)) => {
                assert_eq!(
                    format!("{ea:?}"),
                    format!("{eb:?}"),
                    "rank {r}: failure outcomes diverge"
                );
            }
            _ => panic!("rank {r}: survived on one backend but not the other"),
        }
    }
}
