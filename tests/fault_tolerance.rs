//! End-to-end fault-tolerance validation: the acceptance scenarios for
//! the fault-injection layer and the checkpoint/shrink/replay trainer.
//!
//! 1. A dropped message surfaces as [`Error::Timeout`] after a bounded
//!    virtual wait instead of hanging the receiver.
//! 2. Killing one rank mid-epoch on a 2×4 grid triggers checkpoint
//!    recovery onto a surviving grid (re-planned with Eq. 8) and
//!    training converges to within 1e-6 of the fault-free loss.
//! 3. An injected bit-flip is caught by the collective checksum and
//!    rolled back — it never propagates into ∆W or the weights.

use proptest::prelude::*;

use integrated_parallelism::collectives::ft::{allreduce_ring_ft, FtConfig};
use integrated_parallelism::collectives::ReduceOp;
use integrated_parallelism::dnn::zoo::mlp_tiny;
use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
use integrated_parallelism::integrated::overlap::{FlushSchedule, OverlapPlan};
use integrated_parallelism::integrated::trainer::{
    synthetic_data, train_1p5d_overlap_with_bucket, train_1p5d_scheduled, TrainConfig,
};
use integrated_parallelism::integrated::MachineModel;
use integrated_parallelism::mpsim::{Error, FaultPlan, NetModel, Span, World};

fn ft_cfg(iters: usize) -> FtTrainConfig {
    FtTrainConfig {
        lr: 0.3,
        iters,
        seed: 7,
        ckpt_every: 2,
        ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
        machine: MachineModel::cori_knl(),
        ..FtTrainConfig::default()
    }
}

#[test]
fn dropped_message_times_out_instead_of_hanging() {
    let model = NetModel {
        alpha: 1.0,
        beta: 0.01,
        flops: f64::INFINITY,
    };
    // Drop the first (only) data message from rank 0 to rank 1.
    let plan = FaultPlan::new(1).drop_nth(0, 1, 0);
    let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, &[1.0, 2.0])?;
            Ok(vec![])
        } else {
            comm.recv_timeout(0, 7, 5.0)
        }
    });
    assert!(out[0].is_ok());
    match &out[1] {
        Err(Error::Timeout {
            rank: 0,
            tag: 7,
            waited,
        }) => {
            assert_eq!(*waited, 5.0, "full deadline was waited out");
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
    assert_eq!(stats.total_dropped(), 1);
    assert_eq!(stats.total_timeouts(), 1);
    // The wait was charged on the virtual clock.
    assert!(stats.clocks[1].now >= 5.0);
}

#[test]
fn killing_one_rank_on_2x4_grid_recovers_and_converges() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 32, 5);
    let cfg = ft_cfg(8);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 4, FaultPlan::default());
    assert_eq!(clean.survivors().len(), 8);

    // Kill global rank 5 halfway through the fault-free makespan —
    // mid-epoch, well inside the training loop.
    let t_kill = clean.stats.makespan() * 0.5;
    let plan = FaultPlan::new(11).kill(5, t_kill);
    let faulty = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 4, plan);

    // The dead rank reports its own failure; everyone else survives.
    assert!(matches!(
        faulty.per_rank[5],
        Err(Error::RankFailed { rank: 5 })
    ));
    let survivors = faulty.survivors();
    assert_eq!(survivors.len(), 7);

    // Every survivor committed the same single recovery onto a 7-rank
    // grid, re-planned with Eq. 8.
    for s in &survivors {
        assert_eq!(s.recoveries.len(), 1);
        let r = &s.recoveries[0];
        assert_eq!(r.dead, vec![5]);
        assert_eq!((r.pr, r.pc), (s.pr, s.pc));
        assert_eq!(s.pr * s.pc, 7);
        assert!(
            r.measured_secs > 0.0,
            "recovery cost is on the virtual clock"
        );
        assert!(r.analytic_comm_per_iter > 0.0);
    }

    // Training completed, and the replayed trajectory converges to the
    // fault-free loss within 1e-6 (synchronous SGD replayed from a
    // checkpoint; only reduction order differs on the reshaped grid).
    let clean_losses = clean.losses();
    let faulty_losses = faulty.losses();
    assert_eq!(faulty_losses.len(), cfg.iters);
    for (a, b) in clean_losses.iter().zip(&faulty_losses) {
        assert!((a - b).abs() < 1e-6, "loss diverged: {a} vs {b}");
    }
    let final_diff = (clean_losses.last().unwrap() - faulty_losses.last().unwrap()).abs();
    assert!(final_diff < 1e-6, "final loss differs by {final_diff}");

    // The recovery is visible in the world statistics.
    assert!(faulty.stats.total_failures_detected() > 0);
    assert!(faulty.stats.max_recovery_secs() > 0.0);
    assert!(faulty.stats.total_ckpt_words() > 0);
    assert!(
        faulty.stats.total_aborts() > 0,
        "the fault was propagated group-wide"
    );

    // Degraded-mode cost: the measured per-iteration communication on
    // the shrunk grid is reported alongside the Eq. 8 analytic value.
    let s = survivors[0];
    assert!(s.comm_secs_per_iter > 0.0);
    // Executed ring collectives vs the paper's ⌈log P⌉ closed form:
    // same bandwidth scaling, so they agree within a small factor.
    let ratio = s.comm_secs_per_iter / s.recoveries[0].analytic_comm_per_iter;
    assert!(
        (0.2..5.0).contains(&ratio),
        "measured/analytic degraded cost ratio {ratio} out of range"
    );
}

#[test]
fn killing_one_rank_recovers_with_overlap_enabled() {
    // The same kill-recovery scenario with the bucketed non-blocking
    // ∆W path on: the deadline-bound chunk receives detect the dead
    // peer, the abort cascades, and checkpoint/shrink/replay converges
    // exactly as in the blocking run.
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 32, 5);
    let cfg = FtTrainConfig {
        overlap: true,
        ..ft_cfg(8)
    };

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 4, FaultPlan::default());
    assert_eq!(clean.survivors().len(), 8);

    let t_kill = clean.stats.makespan() * 0.5;
    let plan = FaultPlan::new(11).kill(5, t_kill);
    let faulty = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 4, plan);

    let survivors = faulty.survivors();
    assert_eq!(survivors.len(), 7);
    let faulty_losses = faulty.losses();
    assert_eq!(faulty_losses.len(), cfg.iters);
    for (a, b) in clean.losses().iter().zip(&faulty_losses) {
        assert!((a - b).abs() < 1e-6, "loss diverged: {a} vs {b}");
    }
    let (_, _, nb_ar, _) = faulty.stats.total_collective_calls();
    assert!(nb_ar > 0, "overlap stayed on through the recovery");
    for s in &survivors {
        assert_eq!(s.recoveries.len(), 1);
        let r = &s.recoveries[0];
        assert_eq!(r.dead, vec![5]);
        assert!(r.comm_wait_secs.is_finite() && r.comm_wait_secs >= 0.0);
    }
}

#[test]
fn corruption_is_detected_not_folded_into_weights() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = ft_cfg(6);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    // Flip one mantissa bit in a mid-training data payload on the
    // 1→2 link (a ∆W all-reduce message within grid row 0).
    let plan = FaultPlan::new(23).corrupt_nth(1, 2, 40);
    let faulty = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan);

    assert_eq!(
        faulty.stats.total_corrupt_detected(),
        1,
        "checksum caught the flip"
    );
    assert_eq!(
        faulty.survivors().len(),
        6,
        "a transient fault kills nobody"
    );

    // The corrupted update was discarded and replayed: final weights
    // are bit-identical to the fault-free run, not merely close.
    let wc = clean.weights();
    let wf = faulty.weights();
    let diff: f64 = wc
        .iter()
        .zip(&wf)
        .map(|(a, b)| a.max_abs_diff(b))
        .fold(0.0, f64::max);
    assert_eq!(diff, 0.0, "corruption leaked into the weights");
    assert_eq!(clean.losses(), faulty.losses());
}

#[test]
fn corrupted_allreduce_never_returns_wrong_numbers() {
    // Directly at the collective layer: a corrupted ring all-reduce
    // returns an error on every rank — no rank ever observes a sum
    // built from the flipped payload.
    let plan = FaultPlan::new(5).corrupt_nth(2, 3, 0);
    let (out, stats) = World::run_with_faults(4, NetModel::free(), plan, |comm| {
        let mut data = vec![(comm.rank() + 1) as f64; 8];
        allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &FtConfig::fixed(100.0)).map(|_| data)
    });
    assert!(out.iter().all(Result::is_err), "no rank completed: {out:?}");
    assert_eq!(stats.total_corrupt_detected(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The priority-flush + per-bucket-interleave engine is a pure
    /// *scheduling* change: across random seeds, grids, and bucket
    /// sizes, its final weight shards and per-rank partial losses are
    /// bit-identical to the legacy FIFO launch / barrier drain. (The
    /// one knob excluded is `fwd_prefetch`, which re-associates the
    /// forward row-sum and is covered by a tolerance test instead.)
    #[test]
    fn priority_interleave_is_bit_identical_to_fifo_barrier(
        seed in 0u64..500,
        grid_pick in 0usize..4,
        bucket_pick in 0usize..4,
    ) {
        let (pr, pc) = [(1, 4), (2, 2), (2, 4), (4, 2)][grid_pick];
        let bucket = [64, 1024, 8192, usize::MAX][bucket_pick];
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 16, seed);
        let cfg = TrainConfig { lr: 0.2, iters: 3, seed };
        let model = NetModel::cori_knl();

        let legacy =
            train_1p5d_overlap_with_bucket(&net, &x, &labels, &cfg, pr, pc, model, bucket);
        let plan = OverlapPlan {
            bucket_words: bucket,
            schedule: FlushSchedule::Priority,
            interleave: true,
            ..OverlapPlan::legacy()
        };
        let sched = train_1p5d_scheduled(&net, &x, &labels, &cfg, pr, pc, model, plan);

        for (a, b) in legacy.per_rank.iter().zip(&sched.per_rank) {
            prop_assert_eq!(&a.partial_losses, &b.partial_losses);
            for (wa, wb) in a.weight_shards.iter().zip(&b.weight_shards) {
                prop_assert_eq!(
                    wa.max_abs_diff(wb), 0.0,
                    "weight shard diverged on {}x{} bucket {}", pr, pc, bucket
                );
            }
        }
    }

    /// The same bit-identity holds on the fault-tolerant path while a
    /// random fault plan straggles a link and possibly kills a rank:
    /// checkpoint/shrink/replay under the priority schedule lands on
    /// exactly the weights the FIFO schedule produces, with the same
    /// survivor set.
    #[test]
    fn ft_priority_schedule_matches_fifo_under_kills_and_straggles(
        seed in 0u64..500,
        straggle_link in 0usize..8,
        extra_us in 0u64..40,
        kill_pick in 0usize..12,
    ) {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 16, 5);
        let mut fault = FaultPlan::new(seed).straggle(
            straggle_link,
            (straggle_link + 1) % 8,
            extra_us as f64 * 1e-6,
            1e-6,
            Span::All,
        );
        if (1..8).contains(&kill_pick) {
            fault = fault.kill(kill_pick, 2e-5);
        }

        let base = FtTrainConfig { overlap: true, ..ft_cfg(4) };
        let fifo_cfg = FtTrainConfig {
            plan: OverlapPlan { schedule: FlushSchedule::Fifo, ..base.plan },
            ..base
        };
        let prio_cfg = FtTrainConfig {
            plan: OverlapPlan { schedule: FlushSchedule::Priority, ..base.plan },
            ..base
        };
        let fifo = train_1p5d_ft(&net, &x, &labels, &fifo_cfg, 2, 4, fault.clone());
        let prio = train_1p5d_ft(&net, &x, &labels, &prio_cfg, 2, 4, fault);

        let fs: Vec<usize> = (0..8).filter(|&r| fifo.per_rank[r].is_ok()).collect();
        let ps: Vec<usize> = (0..8).filter(|&r| prio.per_rank[r].is_ok()).collect();
        prop_assert_eq!(&fs, &ps, "survivor sets differ");
        if fs.is_empty() {
            return Ok(());
        }
        prop_assert_eq!(fifo.losses(), prio.losses());
        for (a, b) in fifo.weights().iter().zip(&prio.weights()) {
            prop_assert_eq!(a.max_abs_diff(b), 0.0, "weights diverged under faults");
        }
    }
}
