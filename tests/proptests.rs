//! Property-based tests over the core invariants: distributed = serial
//! for random shapes and grids, cost-model algebraic identities for
//! random networks, and memory-model linearity.

use proptest::prelude::*;

use integrated_parallelism::distmm::dist::{col_shard, part_range, row_shard};
use integrated_parallelism::distmm::onep5d::{backward, forward, Grid};
use integrated_parallelism::dnn::zoo::mlp;
use integrated_parallelism::dnn::{LayerSpec, NetworkBuilder, Shape};
use integrated_parallelism::integrated::cost::{integrated_model_batch, pure_batch, pure_model};
use integrated_parallelism::integrated::memory::footprint;
use integrated_parallelism::integrated::{MachineModel, Strategy};
use integrated_parallelism::mpsim::{NetModel, World};
use integrated_parallelism::tensor::init;
use integrated_parallelism::tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_layer_matches_serial_for_random_grids(
        pr in 1usize..4,
        pc in 1usize..4,
        d_out in 2usize..12,
        d_in in 2usize..10,
        b in 2usize..12,
        seed in 0u64..1000,
    ) {
        let w = init::xavier(d_out, d_in, seed);
        let x = init::uniform(d_in, b, -1.0, 1.0, seed + 1);
        let dy = init::uniform(d_out, b, -1.0, 1.0, seed + 2);
        let y_ref = matmul(&w, &x);
        let dw_ref = matmul_a_bt(&dy, &x);
        let dx_ref = matmul_at_b(&w, &dy);

        let out = World::run(pr * pc, NetModel::free(), |comm| {
            let grid = Grid::new(comm, pr, pc).unwrap();
            let wl = row_shard(&w, pr, grid.i);
            let xl = col_shard(&x, pc, grid.j);
            let dyl = col_shard(&dy, pc, grid.j);
            let y = forward(&grid, &wl, &xl).unwrap();
            let (dw, dx) = backward(&grid, &wl, &xl, &dyl).unwrap();
            (y, dw, dx)
        });
        for (g, (y, dw, dx)) in out.iter().enumerate() {
            let i = g / pc;
            let j = g % pc;
            let cols = part_range(b, pc, j);
            let rows = part_range(d_out, pr, i);
            prop_assert!(y.approx_eq(&y_ref.col_block(cols.start, cols.end), 1e-9));
            prop_assert!(dw.approx_eq(&dw_ref.row_block(rows.start, rows.end), 1e-9));
            prop_assert!(dx.approx_eq(&dx_ref.col_block(cols.start, cols.end), 1e-9));
        }
    }

    #[test]
    fn eq8_degenerates_to_eq3_and_eq4(
        widths in proptest::collection::vec(2usize..64, 2..6),
        b in 1usize..512,
        logp in 1u32..8,
    ) {
        let p = 1usize << logp;
        let mut dims = vec![32usize];
        dims.extend(widths);
        let net = mlp("prop", &dims);
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let batch_direct = pure_batch(&layers, p).seconds(&m);
        let batch_via_eq8 = integrated_model_batch(&layers, b as f64, 1, p).seconds(&m);
        prop_assert!((batch_direct - batch_via_eq8).abs() <= 1e-12 * (1.0 + batch_direct));
        let model_direct = pure_model(&layers, b as f64, p).seconds(&m);
        let model_via_eq8 = integrated_model_batch(&layers, b as f64, p, 1).seconds(&m);
        prop_assert!((model_direct - model_via_eq8).abs() <= 1e-12 * (1.0 + model_direct));
    }

    #[test]
    fn dw_words_scale_inversely_with_pr(
        logpr in 1u32..6,
        b in 64usize..4096,
    ) {
        // Eq. 8: the ∆W all-reduce volume divides by Pr (holding Pc).
        let net = mlp("prop", &[64, 48, 32]);
        let layers = net.weighted_layers();
        let pc = 4usize;
        let pr = 1usize << logpr;
        let base = integrated_model_batch(&layers, b as f64, 1, pc).total.dw_allreduce.words;
        let split = integrated_model_batch(&layers, b as f64, pr, pc).total.dw_allreduce.words;
        prop_assert!((base / split - pr as f64).abs() < 1e-9);
    }

    #[test]
    fn allgather_words_scale_with_local_batch(
        logpc in 0u32..6,
        b in 256usize..4096,
    ) {
        // Eq. 8: the all-gather volume carries B/Pc.
        let net = mlp("prop", &[64, 48, 32]);
        let layers = net.weighted_layers();
        let pr = 4usize;
        let pc = 1usize << logpc;
        if b % pc != 0 { return Ok(()); }
        let full = integrated_model_batch(&layers, b as f64, pr, 1).total.allgather.words;
        let split = integrated_model_batch(&layers, b as f64, pr, pc).total.allgather.words;
        prop_assert!((full / split - pc as f64).abs() < 1e-9);
    }

    #[test]
    fn memory_total_is_conserved_across_grids_when_summed(
        logpr in 0u32..5,
        b in 8usize..256,
    ) {
        // Summed over all P processes, weight memory is |W|·Pc and
        // activation memory is A·Pr·2 — the replication factors of the
        // Discussion. Check weight replication exactly.
        let net = mlp("prop", &[32, 64, 16]);
        let layers = net.weighted_layers();
        let p = 32usize;
        let pr = 1usize << logpr;
        let pc = p / pr;
        let s = Strategy::uniform_grid(pr, pc, layers.len());
        let f = footprint(&s, &layers, b as f64);
        let total_weight_words = f.weights * p as f64;
        let expect = net.total_weights() as f64 * pc as f64;
        prop_assert!((total_weight_words - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn cost_seconds_are_monotone_in_machine_parameters(
        alpha in 0.0f64..1e-4,
        bw in 1e8f64..1e11,
    ) {
        let net = mlp("prop", &[64, 48, 32]);
        let layers = net.weighted_layers();
        let m1 = MachineModel { alpha, bandwidth: bw, word_bytes: 4, flops: 1e12 };
        let m2 = MachineModel { alpha: alpha * 2.0 + 1e-9, bandwidth: bw / 2.0, word_bytes: 4, flops: 1e12 };
        let c = integrated_model_batch(&layers, 128.0, 4, 8);
        prop_assert!(c.seconds(&m2) >= c.seconds(&m1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn conv_shape_inference_matches_eq2(
        in_c in 1usize..8,
        out_c in 1usize..8,
        k in prop::sample::select(vec![1usize, 3, 5]),
        hw in 8usize..32,
        stride in 1usize..3,
    ) {
        let net = NetworkBuilder::new("prop", Shape::new(in_c, hw, hw))
            .layer(LayerSpec::Conv { out_c, kh: k, kw: k, stride, pad: k / 2 })
            .build()
            .unwrap();
        let l = &net.weighted_layers()[0];
        // Eq. 2: |W| = kh·kw·X_C·Y_C; d_i = Y_H·Y_W·Y_C.
        prop_assert_eq!(l.weights, k * k * in_c * out_c);
        let expect_hw = (hw + 2 * (k / 2) - k) / stride + 1;
        prop_assert_eq!(l.d_out(), expect_hw * expect_hw * out_c);
    }
}

// Fault-injection determinism: a FaultPlan is part of the program, so
// two runs with the same plan must agree bit-for-bit — losses, virtual
// clocks, and every recovery decision (rollback point, survivor grid).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn fault_injected_training_replays_bit_identically(
        seed in 0u64..1_000,
        victim in 0usize..6,
        tenths in 3usize..8,
    ) {
        use integrated_parallelism::collectives::FtConfig;
        use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
        use integrated_parallelism::integrated::trainer::synthetic_data;
        use integrated_parallelism::mpsim::{FaultPlan, Span};

        let net = mlp("ft-prop", &[10, 8, 6]);
        let (x, labels) = synthetic_data(&net, 18, seed);
        let cfg = FtTrainConfig {
            lr: 0.2,
            iters: 6,
            seed: seed + 1,
            ckpt_every: 2,
            ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
            machine: MachineModel::cori_knl(),
            ..FtTrainConfig::default()
        };
        let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
        let t_kill = clean.stats.makespan() * tenths as f64 / 10.0;
        let plan = || {
            FaultPlan::new(seed)
                .kill(victim, t_kill)
                .straggle(0, 1, 1e-6, 0.5, Span::All)
                .corrupt_nth(1, 2, 25)
        };
        let a = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan());
        let b = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan());

        // Bit-identical losses and virtual clocks on every rank.
        prop_assert_eq!(a.losses(), b.losses());
        prop_assert_eq!(a.stats.makespan(), b.stats.makespan());
        for (ca, cb) in a.stats.clocks.iter().zip(&b.stats.clocks) {
            prop_assert_eq!(ca.now, cb.now);
            prop_assert_eq!(ca.comm, cb.comm);
        }
        // Identical fault accounting and recovery decisions.
        prop_assert_eq!(a.stats.total_timeouts(), b.stats.total_timeouts());
        prop_assert_eq!(a.stats.total_aborts(), b.stats.total_aborts());
        prop_assert_eq!(
            a.stats.total_failures_detected(),
            b.stats.total_failures_detected()
        );
        let (sa, sb) = (a.survivors(), b.survivors());
        prop_assert_eq!(sa.len(), sb.len());
        for (ra, rb) in sa.iter().zip(&sb) {
            prop_assert_eq!(ra.recoveries.len(), rb.recoveries.len());
            for (qa, qb) in ra.recoveries.iter().zip(&rb.recoveries) {
                prop_assert_eq!(qa.rollback_iter, qb.rollback_iter);
                prop_assert_eq!((qa.pr, qa.pc), (qb.pr, qb.pc));
                prop_assert_eq!(&qa.dead, &qb.dead);
                prop_assert_eq!(qa.measured_secs, qb.measured_secs);
            }
            for (wa, wb) in ra.weight_shards.iter().zip(&rb.weight_shards) {
                prop_assert_eq!(wa.max_abs_diff(wb), 0.0);
            }
        }
    }
}

// ABFT has no false positives: on a fault-free machine the checksummed
// trainer must be bit-identical to the undefended one — same losses,
// same weights — for random workloads, grids, and SGD seeds. (The
// virtual clock is *not* compared: the checksum flops are charged on
// it by design.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn abft_clean_runs_are_bit_identical_to_undefended(
        seed in 0u64..1_000,
        widths in proptest::collection::vec(2usize..24, 2..5),
        grid_pick in 0usize..3,
        iters in 2usize..7,
    ) {
        use integrated_parallelism::collectives::FtConfig;
        use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
        use integrated_parallelism::integrated::trainer::synthetic_data;
        use integrated_parallelism::mpsim::FaultPlan;

        let net = mlp("abft-prop", &widths);
        let (x, labels) = synthetic_data(&net, 12, seed);
        let (pr, pc) = [(1, 3), (2, 2), (2, 3)][grid_pick];
        let cfg = |abft: bool| FtTrainConfig {
            lr: 0.2,
            iters,
            seed: seed + 1,
            ckpt_every: 2,
            abft,
            ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
            machine: MachineModel::cori_knl(),
            ..FtTrainConfig::default()
        };
        let off = train_1p5d_ft(&net, &x, &labels, &cfg(false), pr, pc, FaultPlan::default());
        let on = train_1p5d_ft(&net, &x, &labels, &cfg(true), pr, pc, FaultPlan::default());

        prop_assert_eq!(off.losses(), on.losses());
        prop_assert_eq!(on.stats.total_corrupt_detected(), 0, "no false positives");
        for (wa, wb) in off.weights().iter().zip(&on.weights()) {
            prop_assert_eq!(wa.max_abs_diff(wb), 0.0);
        }
        // The defense is not free: the checksum flops must appear on
        // the virtual clock.
        prop_assert!(on.stats.makespan() > off.stats.makespan());
    }
}
