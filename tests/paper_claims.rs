//! The paper's headline quantitative claims, checked against this
//! reproduction's models. Exact constants cannot match (our compute
//! curve is calibrated, not measured on KNL — see DESIGN.md), so each
//! claim is asserted as the paper states it *qualitatively*, with
//! generous-but-meaningful bands recorded in EXPERIMENTS.md.

use integrated_parallelism::dnn::zoo::alexnet;
use integrated_parallelism::integrated::compute::KnlComputeModel;
use integrated_parallelism::integrated::cost::{crossover_batch, pure_batch, pure_model};
use integrated_parallelism::integrated::optimizer::{
    best, sweep_conv_batch_fc_grids, sweep_domain_strategies, sweep_uniform_grids,
};
use integrated_parallelism::integrated::overlap::fig8_total;
use integrated_parallelism::integrated::MachineModel;

struct Ctx {
    net: dnn::Network,
    machine: MachineModel,
    compute: KnlComputeModel,
}

fn ctx() -> Ctx {
    Ctx {
        net: alexnet(),
        machine: MachineModel::cori_knl(),
        compute: KnlComputeModel::fig4(),
    }
}

#[test]
fn claim_fig6d_integrated_beats_pure_batch_at_512() {
    // Paper: 2.1x total / 5.0x comm at B=2048, P=512 with the best
    // uniform grid (16x32). Band: total speedup in [1.3, 3.5], comm
    // speedup in [1.5, 8], best grid interior.
    let c = ctx();
    let layers = c.net.weighted_layers();
    let evals = sweep_uniform_grids(&c.net, &layers, 2048.0, 512, &c.machine, &c.compute);
    let base = &evals[0]; // pr = 1
    let b = best(&evals);
    let total = base.total_seconds / b.total_seconds;
    let comm = base.comm_seconds / b.comm_seconds;
    assert!((1.3..3.5).contains(&total), "total speedup {total}");
    assert!((1.5..8.0).contains(&comm), "comm speedup {comm}");
    assert_ne!(b.strategy.name, base.strategy.name, "an interior grid wins");
}

#[test]
fn claim_fig7d_conv_batch_fc_grid_improves_on_fig6() {
    // Paper: 2.5x total / 9.7x comm — and strictly better than the
    // Fig. 6 best.
    let c = ctx();
    let layers = c.net.weighted_layers();
    let uniform = sweep_uniform_grids(&c.net, &layers, 2048.0, 512, &c.machine, &c.compute);
    let split = sweep_conv_batch_fc_grids(&c.net, &layers, 2048.0, 512, &c.machine, &c.compute);
    let base = &split[0];
    let b = best(&split);
    let total = base.total_seconds / b.total_seconds;
    let comm = base.comm_seconds / b.comm_seconds;
    assert!((1.6..4.0).contains(&total), "total speedup {total}");
    assert!((3.0..15.0).contains(&comm), "comm speedup {comm}");
    assert!(best(&split).total_seconds < best(&uniform).total_seconds);
}

#[test]
fn claim_fig8_overlap_retains_speedup() {
    // Paper: "even in this setting there is 2.0x speedup". Band:
    // [1.2, 3.0].
    let c = ctx();
    let layers = c.net.weighted_layers();
    let split = sweep_conv_batch_fc_grids(&c.net, &layers, 2048.0, 512, &c.machine, &c.compute);
    let base = &split[0];
    let base_t = fig8_total(base.comm_seconds, base.compute_seconds);
    let best_t = split
        .iter()
        .map(|e| fig8_total(e.comm_seconds, e.compute_seconds))
        .fold(f64::INFINITY, f64::min);
    let speedup = base_t / best_t;
    assert!(
        (1.2..3.0).contains(&speedup),
        "overlapped speedup {speedup}"
    );
}

#[test]
fn claim_fig10_domain_extends_scaling_past_batch_limit() {
    // Paper: with B=512, scaling continues beyond P=512 by splitting
    // images 2/4/8 ways; each doubling of P keeps reducing time.
    let c = ctx();
    let layers = c.net.weighted_layers();
    let mut prev = f64::INFINITY;
    for p in [512usize, 1024, 2048, 4096] {
        let evals = sweep_domain_strategies(&c.net, &layers, 512.0, p, &c.machine, &c.compute);
        let t = best(&evals).total_seconds;
        assert!(t < prev, "P={p}: {t} not faster than {prev}");
        prev = t;
    }
}

#[test]
fn claim_eq5_model_parallel_wins_small_batch_conv() {
    // Paper: for AlexNet's 3x3-on-13x13x384 layer, model parallelism
    // has lower communication volume for B ≤ 12 (our exact constant:
    // 13.6).
    let c = ctx();
    let layers = c.net.weighted_layers();
    let conv4 = &layers[3];
    let b_star = crossover_batch(conv4);
    assert!((12.0..16.0).contains(&b_star), "B* = {b_star}");
}

#[test]
fn claim_batch_beats_model_at_large_batch_network_wide() {
    // Eq. 3 vs Eq. 4 at B = 2048: pure batch communication is far below
    // pure model for AlexNet (activations dominate at large B).
    let c = ctx();
    let layers = c.net.weighted_layers();
    let model = pure_model(&layers, 2048.0, 64).seconds(&c.machine);
    let batch = pure_batch(&layers, 64).seconds(&c.machine);
    assert!(model > 5.0 * batch, "model {model} vs batch {batch}");
}

#[test]
fn claim_fig4_best_workload_is_256() {
    let c = ctx();
    assert_eq!(c.compute.best_batch(), 256.0);
}

#[test]
fn claim_small_p_gains_are_marginal() {
    // Paper Fig. 6(a): "the benefit of the integrated approach is not
    // realized on a relatively small number of processors".
    let c = ctx();
    let layers = c.net.weighted_layers();
    let evals = sweep_uniform_grids(&c.net, &layers, 2048.0, 8, &c.machine, &c.compute);
    let base = &evals[0];
    let b = best(&evals);
    let speedup = base.total_seconds / b.total_seconds;
    assert!(
        speedup < 1.1,
        "P=8 speedup should be marginal, got {speedup}"
    );
}
