//! End-to-end elastic-membership validation: the acceptance scenarios
//! for adaptive failure detection, rank rejoin, and grid regrow.
//!
//! 1. A rank killed mid-epoch with a scripted rejoin is re-admitted at
//!    a fault-epoch boundary; the trainer regrows to the original
//!    Eq. 8 grid, the final loss matches the fault-free run to 1e-6,
//!    and the post-rejoin step time is within 5% of fault-free.
//! 2. The whole kill→shrink→rejoin→regrow history replays
//!    bit-identically under a fixed fault-plan seed.
//! 3. The φ-accrual detector never declares a healthy-but-slow peer
//!    dead while its delay stays below the learned deadline (property
//!    test over random traffic rhythms).
//!
//! The fault-plan seed is taken from `FT_SEED` (default 3) so CI can
//! sweep a seed matrix over the same scenarios.

use integrated_parallelism::collectives::FtConfig;
use integrated_parallelism::dnn::zoo::mlp_tiny;
use integrated_parallelism::integrated::cost::best_grid;
use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
use integrated_parallelism::integrated::trainer::synthetic_data;
use integrated_parallelism::integrated::MachineModel;
use integrated_parallelism::mpsim::{DetectorConfig, FaultPlan, HealthMonitor, NetModel};
use proptest::prelude::*;

fn ft_seed() -> u64 {
    std::env::var("FT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn ecfg(iters: usize) -> FtTrainConfig {
    FtTrainConfig {
        lr: 0.3,
        iters,
        seed: 7,
        ckpt_every: 2,
        ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
        machine: MachineModel::cori_knl(),
        ..FtTrainConfig::default()
    }
}

#[test]
fn kill_rejoin_regrows_to_original_grid_and_matches_fault_free() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = ecfg(10);
    // Start on the Eq. 8 grid for p = 6, so the regrow after the rejoin
    // provably lands back on the same extents (the planner is shared).
    let wl = net.weighted_layers();
    let (pr0, pc0) = best_grid(&wl, 24.0, 6, &cfg.machine);
    assert_eq!(pr0 * pc0, 6);
    assert!(pc0 >= 2, "grid must keep replicated weight rows");

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, pr0, pc0, FaultPlan::default());
    let m = clean.stats.makespan();

    // Kill the last rank mid-run; it rejoins a couple of fault epochs
    // later and training continues to completion on the regrown grid.
    let victim = 5;
    let plan = FaultPlan::new(ft_seed())
        .kill(victim, 0.35 * m)
        .rejoin(victim, 0.55 * m);
    let elastic = train_1p5d_ft(&net, &x, &labels, &cfg, pr0, pc0, plan);

    // Every rank — the killed-and-revived one included — finishes.
    for (r, out) in elastic.per_rank.iter().enumerate() {
        assert!(out.is_ok(), "rank {r} did not finish: {out:?}");
    }
    assert_eq!(elastic.stats.total_rejoins(), 1);
    assert!(elastic.stats.total_failures_detected() > 0);

    // Survivors committed a shrink and then a regrow.
    let s0 = elastic.per_rank[0].as_ref().unwrap();
    assert!(
        s0.recoveries.len() >= 2,
        "expected shrink + regrow, got {:?}",
        s0.recoveries
    );
    let shrink = &s0.recoveries[0];
    assert_eq!(shrink.dead, vec![victim]);
    assert_eq!(shrink.pr * shrink.pc, 5, "degraded grid over 5 survivors");
    let regrow = s0.recoveries.last().unwrap();
    assert!(regrow.rejoined.contains(&victim));
    assert!(regrow.dead.is_empty(), "nobody left excluded after regrow");
    assert_eq!(
        (regrow.pr, regrow.pc),
        (pr0, pc0),
        "regrown to the original Eq. 8 grid"
    );
    for out in &elastic.per_rank {
        let o = out.as_ref().unwrap();
        assert_eq!((o.pr, o.pc), (pr0, pc0), "final grid is the original");
    }

    // The rejoiner observed its own re-admission.
    let joiner = elastic.per_rank[victim].as_ref().unwrap();
    assert!(joiner
        .recoveries
        .iter()
        .any(|r| r.rejoined.contains(&victim)));

    // Replayed synchronous SGD: the trajectory matches fault-free to
    // 1e-6 and is identical on every rank, the rejoiner included.
    let cl = clean.losses();
    let el = elastic.losses();
    assert_eq!(el.len(), cfg.iters);
    for (a, b) in cl.iter().zip(&el) {
        assert!((a - b).abs() < 1e-6, "loss diverged: {a} vs {b}");
    }
    for out in &elastic.per_rank {
        assert_eq!(out.as_ref().unwrap().losses, el);
    }

    // Elasticity leaves no residue: once regrown, the per-iteration
    // step time is within 5% of the fault-free run on the same grid.
    let clean_step = clean.per_rank[0].as_ref().unwrap().step_secs_per_iter;
    let post_step = s0.step_secs_per_iter;
    assert!(clean_step > 0.0);
    assert!(
        (post_step - clean_step).abs() / clean_step < 0.05,
        "post-rejoin step {post_step} vs fault-free {clean_step}"
    );
}

#[test]
fn kill_rejoin_regrow_works_with_overlap_enabled() {
    // Elasticity composes with the executed-overlap backward path:
    // shrink, rejoin, and regrow all happen while ∆W all-reduces run
    // non-blocking, and the trajectory still matches fault-free.
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = FtTrainConfig {
        overlap: true,
        ..ecfg(10)
    };
    let wl = net.weighted_layers();
    let (pr0, pc0) = best_grid(&wl, 24.0, 6, &cfg.machine);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, pr0, pc0, FaultPlan::default());
    let m = clean.stats.makespan();
    let victim = 5;
    let plan = FaultPlan::new(ft_seed())
        .kill(victim, 0.35 * m)
        .rejoin(victim, 0.55 * m);
    let elastic = train_1p5d_ft(&net, &x, &labels, &cfg, pr0, pc0, plan);

    for (r, out) in elastic.per_rank.iter().enumerate() {
        assert!(out.is_ok(), "rank {r} did not finish: {out:?}");
    }
    assert_eq!(elastic.stats.total_rejoins(), 1);
    let s0 = elastic.per_rank[0].as_ref().unwrap();
    let regrow = s0.recoveries.last().unwrap();
    assert_eq!(
        (regrow.pr, regrow.pc),
        (pr0, pc0),
        "regrown to the original Eq. 8 grid"
    );
    let el = elastic.losses();
    assert_eq!(el.len(), cfg.iters);
    for (a, b) in clean.losses().iter().zip(&el) {
        assert!((a - b).abs() < 1e-6, "loss diverged: {a} vs {b}");
    }
    let (_, _, nb_ar, _) = elastic.stats.total_collective_calls();
    assert!(nb_ar > 0, "overlap stayed on through shrink and regrow");
}

#[test]
fn elastic_recovery_replays_bit_identically() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = ecfg(8);
    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    let m = clean.stats.makespan();

    let run = || {
        let plan = FaultPlan::new(ft_seed())
            .kill(4, 0.35 * m)
            .rejoin(4, 0.6 * m);
        train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan)
    };
    let a = run();
    let b = run();

    assert_eq!(a.stats.makespan(), b.stats.makespan());
    assert_eq!(a.stats.ranks, b.stats.ranks, "fault counters replay");
    for (ra, rb) in a.per_rank.iter().zip(&b.per_rank) {
        match (ra, rb) {
            (Ok(oa), Ok(ob)) => {
                assert_eq!(oa.losses, ob.losses, "losses replay bitwise");
                assert_eq!((oa.i, oa.j, oa.pr, oa.pc), (ob.i, ob.j, ob.pr, ob.pc));
                let wdiff: f64 = oa
                    .weight_shards
                    .iter()
                    .zip(&ob.weight_shards)
                    .map(|(x, y)| x.max_abs_diff(y))
                    .fold(0.0, f64::max);
                assert_eq!(wdiff, 0.0, "weights replay bitwise");
                assert_eq!(oa.recoveries.len(), ob.recoveries.len());
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            other => panic!("replay diverged in outcome kind: {other:?}"),
        }
    }
    // The scenario actually exercised the elastic path.
    assert_eq!(a.stats.total_rejoins(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A peer whose delay stays below the learned deadline is by
    /// construction at most `deadline_sigmas` σ past its mean rhythm,
    /// which keeps φ well under the dead threshold — so a slow-but-
    /// alive peer is suspected (speculative re-request territory), but
    /// never written off, whatever its traffic rhythm.
    #[test]
    fn slow_peer_below_learned_deadline_is_never_declared_dead(
        gaps in proptest::collection::vec(0.01f64..5.0, 6..40),
        frac in 0.0f64..0.99,
    ) {
        let model = NetModel { alpha: 1e-3, beta: 1e-9, flops: f64::INFINITY };
        let mut mon = HealthMonitor::new(DetectorConfig::from_model(&model), 2);
        let mut now = 0.0;
        for g in &gaps {
            now += *g;
            mon.heard(1, now);
            mon.observed_wait(1, *g);
        }
        let deadline = mon.deadline(1).expect("enough wait samples");
        let gap_deadline = mon.gap_deadline(1).expect("enough gap samples");
        prop_assert!(deadline > 0.0 && gap_deadline > 0.0);

        let delay = frac * deadline.min(gap_deadline);
        let phi = mon.phi(1, now + delay).expect("detector is warm");
        let dead = mon.config().phi_dead;
        prop_assert!(
            phi < dead,
            "phi {} >= dead threshold {} at delay {} (deadline {})",
            phi, dead, delay, deadline
        );
    }
}
