//! Property-based tests for the trace subsystem: across random fault
//! plans and seeds, every rank's recorded timeline is well-formed —
//! begin/end balanced, timestamps finite and monotone, spans
//! nested-or-disjoint on the main timeline (leaf spans strictly
//! non-overlapping) — and the trace alone reconstructs the simulator's
//! own accounting. A final pair of tests pins the zero-overhead claim:
//! tracing must not move the virtual clock by a single bit.

use proptest::prelude::*;

use integrated_parallelism::collectives::ft::FtConfig;
use integrated_parallelism::dnn::zoo::mlp_tiny;
use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft_traced, FtTrainConfig};
use integrated_parallelism::integrated::trainer::{
    synthetic_data, train_1p5d, train_1p5d_overlap, train_1p5d_overlap_traced, train_1p5d_traced,
    TrainConfig,
};
use integrated_parallelism::integrated::MachineModel;
use integrated_parallelism::mpsim::{
    EventKind, FaultPlan, NetModel, RankTrace, Span, TraceConfig, Track, WorldStats, WorldTrace,
};

/// Slack for interval comparisons. Main-track leaf timestamps are
/// copies of the same clock values, so they compare exactly; channel
/// span starts are reconstructed as `ready_at - transfer` and can land
/// one ulp early.
const EPS: f64 = 1e-12;

/// The per-rank well-formedness invariants from the issue.
fn check_rank(rt: &RankTrace) -> Result<(), TestCaseError> {
    prop_assert_eq!(rt.unclosed, 0, "rank {}: guard span leaked", rt.rank);
    prop_assert_eq!(rt.dropped, 0, "rank {}: ring buffer overflowed", rt.rank);

    for (track, label) in [(Track::Main, "main"), (Track::Channel, "channel")] {
        let evs: Vec<_> = rt.events.iter().filter(|e| e.track == track).collect();

        // Timestamps are finite, spans end after they start, instants
        // are points.
        for e in &evs {
            prop_assert!(
                e.t0.is_finite() && e.t1.is_finite(),
                "rank {} {label}: non-finite time in {}/{}",
                rt.rank,
                e.cat,
                e.name
            );
            prop_assert!(
                e.t1 >= e.t0,
                "rank {} {label}: {}/{} ends before it starts",
                rt.rank,
                e.cat,
                e.name
            );
            if e.kind == EventKind::Instant {
                prop_assert_eq!(e.t0, e.t1, "instant with extent");
            }
        }

        // End times are monotone in record order: events are recorded
        // when they close, and the clock never runs backwards.
        for w in evs.windows(2) {
            prop_assert!(
                w[1].t1 >= w[0].t1 - EPS,
                "rank {} {label}: t1 regressed, {}/{} [{};{}] then {}/{} [{};{}]",
                rt.rank,
                w[0].cat,
                w[0].name,
                w[0].t0,
                w[0].t1,
                w[1].cat,
                w[1].name,
                w[1].t0,
                w[1].t1
            );
        }

        // Any two spans on one track are nested or disjoint — a
        // partial overlap means two code paths both thought they owned
        // the same stretch of the timeline.
        let mut spans: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .copied()
            .collect();
        spans.sort_by(|a, b| a.t0.total_cmp(&b.t0).then(b.t1.total_cmp(&a.t1)));
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                if b.t0 >= a.t1 - EPS {
                    break; // sorted by t0: everything later is disjoint
                }
                prop_assert!(
                    b.t1 <= a.t1 + EPS,
                    "rank {} {label}: partial overlap {}/{} [{};{}] vs {}/{} [{};{}]",
                    rt.rank,
                    a.cat,
                    a.name,
                    a.t0,
                    a.t1,
                    b.cat,
                    b.name,
                    b.t0,
                    b.t1
                );
            }
        }

        // Leaf spans additionally never overlap at all: they partition
        // the stretches where the clock advanced. Zero-duration spans
        // (a drain that found the channel already idle) are points and
        // cannot overlap anything.
        let mut leaves: Vec<_> = spans
            .iter()
            .filter(|e| {
                e.t1 > e.t0
                    && (track == Track::Channel
                        || ["compute", "comm", "drain", "fault"].contains(&e.cat))
            })
            .collect();
        leaves.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        for w in leaves.windows(2) {
            prop_assert!(
                w[1].t0 >= w[0].t1 - EPS,
                "rank {} {label}: leaf overlap {}/{} [{};{}] vs {}/{} [{};{}]",
                rt.rank,
                w[0].cat,
                w[0].name,
                w[0].t0,
                w[0].t1,
                w[1].cat,
                w[1].name,
                w[1].t0,
                w[1].t1
            );
        }
    }
    Ok(())
}

/// Trace-vs-stats agreement (the `trace_analyze` cross-check, as a
/// reusable assertion).
fn check_against_stats(trace: &WorldTrace, stats: &WorldStats) -> Result<(), TestCaseError> {
    for (r, rt) in trace.ranks.iter().enumerate() {
        prop_assert!(
            (rt.comm_wait_secs() - stats.ranks[r].comm_wait_secs).abs() <= 1e-9,
            "rank {r}: trace comm_wait {} vs stats {}",
            rt.comm_wait_secs(),
            stats.ranks[r].comm_wait_secs
        );
        prop_assert!(
            (rt.overlapped_secs() - stats.ranks[r].overlapped_secs).abs() <= 1e-9,
            "rank {r}: trace overlapped {} vs stats {}",
            rt.overlapped_secs(),
            stats.ranks[r].overlapped_secs
        );
        prop_assert!(
            (rt.end_time() - stats.clocks[r].now).abs() <= 1e-9,
            "rank {r}: trace end {} vs clock {}",
            rt.end_time(),
            stats.clocks[r].now
        );
    }
    Ok(())
}

fn ft_cfg(overlap: bool, ckpt_every: usize) -> FtTrainConfig {
    FtTrainConfig {
        lr: 0.3,
        iters: 2,
        seed: 7,
        ckpt_every,
        ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
        machine: MachineModel::cori_knl(),
        overlap,
        ..FtTrainConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole property: whatever the fault plan does — stragglers,
    /// dropped and corrupted messages, even a mid-run kill — every
    /// rank's trace stays well-formed and reconstructs the stats.
    #[test]
    fn trace_wellformed_under_random_fault_plans(
        seed in 0u64..1000,
        straggle_link in 0usize..8,
        extra_us in 0u64..40,
        drop_link in 0usize..8,
        corrupt_link in 0usize..8,
        kill_pick in 0usize..12,
        overlap_pick in 0usize..2,
        ckpt_every in 1usize..3,
    ) {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 16, 5);
        let cfg = ft_cfg(overlap_pick == 1, ckpt_every);

        // Random fault plan over the 2x4 grid's 8 ranks. Links are
        // (src, src+1 mod 8); the kill (when the draw lands on a live
        // rank > 0) happens mid-run relative to typical makespans.
        let mut plan = FaultPlan::new(seed)
            .straggle(
                straggle_link,
                (straggle_link + 1) % 8,
                extra_us as f64 * 1e-6,
                1e-6,
                Span::All,
            )
            .drop_nth(drop_link, (drop_link + 1) % 8, 0)
            .corrupt_nth(corrupt_link, (corrupt_link + 3) % 8, 1);
        if (1..8).contains(&kill_pick) {
            plan = plan.kill(kill_pick, 2e-5);
        }

        let (res, trace) = train_1p5d_ft_traced(
            &net, &x, &labels, &cfg, 2, 4, plan, TraceConfig::enabled(),
        );
        prop_assert_eq!(trace.ranks.len(), 8);
        for rt in &trace.ranks {
            check_rank(rt)?;
        }
        check_against_stats(&trace, &res.stats)?;
        prop_assert!(trace.makespan().is_finite());
    }

    /// The plain and overlapped trainers' traces reconstruct the stats
    /// for arbitrary seeds and grids (no faults: the equality is then
    /// bit-level, but 1e-9 is the contract).
    #[test]
    fn trace_matches_stats_on_clean_runs(
        seed in 0u64..1000,
        grid_pick in 0usize..3,
    ) {
        let (pr, pc) = [(1, 4), (2, 2), (4, 1)][grid_pick];
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 16, seed);
        let cfg = TrainConfig { lr: 0.2, iters: 2, seed };
        let model = NetModel::cori_knl();

        let (ser, st) = train_1p5d_traced(
            &net, &x, &labels, &cfg, pr, pc, model, TraceConfig::enabled(),
        );
        for rt in &st.ranks {
            check_rank(rt)?;
        }
        check_against_stats(&st, &ser.stats)?;

        let (ovl, ot) = train_1p5d_overlap_traced(
            &net, &x, &labels, &cfg, pr, pc, model, TraceConfig::enabled(),
        );
        for rt in &ot.ranks {
            check_rank(rt)?;
        }
        check_against_stats(&ot, &ovl.stats)?;
        // The blocking run attempts no overlap; the traced hidden time
        // must agree.
        let hidden: f64 = st.ranks.iter().map(RankTrace::overlapped_secs).sum();
        prop_assert_eq!(hidden, 0.0);
    }
}

/// Tracing must be invisible to the simulation: identical losses and
/// bit-identical virtual clocks with tracing on, off, and absent.
#[test]
fn tracing_adds_zero_overhead_to_the_virtual_clock() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 16, 9);
    let cfg = TrainConfig {
        lr: 0.2,
        iters: 3,
        seed: 3,
    };
    let model = NetModel::cori_knl();
    for (pr, pc) in [(2usize, 2usize), (1, 4)] {
        let plain = train_1p5d(&net, &x, &labels, &cfg, pr, pc, model);
        let (on, _) = train_1p5d_traced(
            &net,
            &x,
            &labels,
            &cfg,
            pr,
            pc,
            model,
            TraceConfig::enabled(),
        );
        let (off, off_trace) = train_1p5d_traced(
            &net,
            &x,
            &labels,
            &cfg,
            pr,
            pc,
            model,
            TraceConfig::disabled(),
        );
        assert_eq!(off_trace.total_events(), 0, "disabled tracer recorded");
        for (a, b, c) in plain
            .stats
            .clocks
            .iter()
            .zip(&on.stats.clocks)
            .zip(&off.stats.clocks)
            .map(|((a, b), c)| (a, b, c))
        {
            assert_eq!(a.now.to_bits(), b.now.to_bits(), "traced clock moved");
            assert_eq!(a.now.to_bits(), c.now.to_bits(), "disabled clock moved");
            assert_eq!(a.comm.to_bits(), b.comm.to_bits());
            assert_eq!(a.compute.to_bits(), b.compute.to_bits());
        }
        assert_eq!(plain.losses(), on.losses());

        let ovl = train_1p5d_overlap(&net, &x, &labels, &cfg, pr, pc, model);
        let (ovl_on, _) = train_1p5d_overlap_traced(
            &net,
            &x,
            &labels,
            &cfg,
            pr,
            pc,
            model,
            TraceConfig::enabled(),
        );
        assert_eq!(
            ovl.stats.makespan().to_bits(),
            ovl_on.stats.makespan().to_bits(),
            "tracing perturbed the overlapped run"
        );
        assert_eq!(ovl.losses(), ovl_on.losses());
    }
}
