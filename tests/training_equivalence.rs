//! End-to-end training equivalence: the distributed 1.5D trainer on
//! every grid shape reproduces serial SGD (the synchronous-consistency
//! property the paper's framework guarantees), across architectures,
//! learning rates, and batch sizes.

use integrated_parallelism::dnn::zoo::{mlp, rnn_unrolled};
use integrated_parallelism::integrated::trainer::{
    synthetic_data, train_1p5d, train_serial, TrainConfig,
};
use integrated_parallelism::mpsim::NetModel;
use integrated_parallelism::tensor::Matrix;

fn max_diff(a: &[Matrix], b: &[Matrix]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.max_abs_diff(y))
        .fold(0.0, f64::max)
}

#[test]
fn every_grid_of_12_ranks_reproduces_serial() {
    let net = mlp("m", &[32, 24, 18, 6]);
    let (x, labels) = synthetic_data(&net, 36, 17);
    let cfg = TrainConfig {
        lr: 0.25,
        iters: 6,
        seed: 4,
    };
    let serial = train_serial(&net, &x, &labels, &cfg);
    for (pr, pc) in [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)] {
        let dist = train_1p5d(&net, &x, &labels, &cfg, pr, pc, NetModel::free());
        let d = max_diff(&serial.weights, &dist.weights());
        assert!(d < 1e-9, "grid {pr}x{pc}: {d}");
        let losses = dist.losses();
        for (s, g) in serial.losses.iter().zip(&losses) {
            assert!((s - g).abs() < 1e-9, "grid {pr}x{pc}: loss {s} vs {g}");
        }
    }
}

#[test]
fn uneven_batch_and_width_shards_still_match() {
    // 35 samples over 4 column groups, widths 30/22/7 over 3 row
    // groups: nothing divides evenly anywhere.
    let net = mlp("uneven", &[13, 30, 22, 7]);
    let (x, labels) = synthetic_data(&net, 35, 23);
    let cfg = TrainConfig {
        lr: 0.15,
        iters: 5,
        seed: 9,
    };
    let serial = train_serial(&net, &x, &labels, &cfg);
    let dist = train_1p5d(&net, &x, &labels, &cfg, 3, 4, NetModel::free());
    assert!(max_diff(&serial.weights, &dist.weights()) < 1e-9);
}

#[test]
fn rnn_unrolled_trains_identically() {
    let net = rnn_unrolled(16, 20, 4, 5);
    let (x, labels) = synthetic_data(&net, 20, 31);
    let cfg = TrainConfig {
        lr: 0.2,
        iters: 6,
        seed: 12,
    };
    let serial = train_serial(&net, &x, &labels, &cfg);
    for (pr, pc) in [(2, 2), (4, 1), (1, 4)] {
        let dist = train_1p5d(&net, &x, &labels, &cfg, pr, pc, NetModel::free());
        assert!(
            max_diff(&serial.weights, &dist.weights()) < 1e-9,
            "grid {pr}x{pc}"
        );
    }
}

#[test]
fn training_reduces_loss_and_replicas_agree_under_real_network_model() {
    // Run under the Cori model (nonzero α/β) to confirm timing
    // bookkeeping doesn't perturb numerics.
    let net = mlp("m", &[24, 32, 8]);
    let (x, labels) = synthetic_data(&net, 32, 3);
    let cfg = TrainConfig {
        lr: 0.4,
        iters: 20,
        seed: 5,
    };
    let dist = train_1p5d(&net, &x, &labels, &cfg, 2, 4, NetModel::cori_knl());
    let losses = dist.losses();
    assert!(losses.last().unwrap() < &(losses[0] * 0.9), "{losses:?}");
    assert!(dist.replica_divergence() < 1e-12);
    assert!(dist.stats.makespan() > 0.0, "virtual time advanced");
    assert!(dist.stats.max_comm() > 0.0, "communication was charged");
}

#[test]
fn deeper_and_wider_grids_agree_with_each_other() {
    // Transitivity check at a size where f64 noise could differ: all
    // grids must produce the same weights as each other (not just
    // close to serial).
    let net = mlp("m", &[40, 64, 48, 10]);
    let (x, labels) = synthetic_data(&net, 48, 77);
    let cfg = TrainConfig {
        lr: 0.1,
        iters: 4,
        seed: 21,
    };
    let a = train_1p5d(&net, &x, &labels, &cfg, 2, 8, NetModel::free());
    let b = train_1p5d(&net, &x, &labels, &cfg, 8, 2, NetModel::free());
    assert!(max_diff(&a.weights(), &b.weights()) < 1e-9);
}
