//! Property-based tests for the collective algorithms: every
//! implementation agrees with a naive reference for arbitrary rank
//! counts, payload sizes, and operators — and their executed virtual
//! times match their closed forms for arbitrary α/β.

// Rank-indexed loops mirror the formulas; see collectives/src/lib.rs.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use integrated_parallelism::collectives::alltoall::alltoall;
use integrated_parallelism::collectives::cost;
use integrated_parallelism::collectives::ring::{allgather_ring, allreduce_ring};
use integrated_parallelism::collectives::{allgather, bcast, ReduceOp};
use integrated_parallelism::mpsim::{NetModel, World};

fn contribution(rank: usize, n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (((rank as u64 + 1) * 31 + i as u64 * 17 + seed) % 1000) as f64 / 10.0)
        .collect()
}

fn naive_reduce(p: usize, n: usize, seed: u64, op: ReduceOp) -> Vec<f64> {
    let mut acc = contribution(0, n, seed);
    for r in 1..p {
        op.apply(&mut acc, &contribution(r, n, seed));
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ring_allreduce_matches_naive(
        p in 1usize..9,
        n in 1usize..40,
        seed in 0u64..100,
        op_idx in 0usize..3,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_idx];
        let expect = naive_reduce(p, n, seed, op);
        let out = World::run(p, NetModel::free(), |comm| {
            let mut data = contribution(comm.rank(), n, seed);
            allreduce_ring(comm, &mut data, op).unwrap();
            data
        });
        for r in 0..p {
            for (a, b) in out[r].iter().zip(&expect) {
                // The ring reduces in a different association order
                // than the naive fold; sums may differ by rounding.
                prop_assert!((a - b).abs() < 1e-9, "p={} n={} rank={}", p, n, r);
            }
        }
    }

    #[test]
    fn bruck_allgather_matches_concatenation(
        p in 1usize..9,
        m in 1usize..20,
        seed in 0u64..100,
    ) {
        let expect: Vec<f64> =
            (0..p).flat_map(|r| contribution(r, m, seed)).collect();
        let out = World::run(p, NetModel::free(), |comm| {
            allgather(comm, &contribution(comm.rank(), m, seed)).unwrap()
        });
        for r in 0..p {
            prop_assert_eq!(&out[r], &expect);
        }
    }

    #[test]
    fn bcast_from_any_root(
        p in 1usize..9,
        n in 1usize..30,
        root_pick in 0usize..8,
        seed in 0u64..100,
    ) {
        let root = root_pick % p;
        let payload = contribution(root, n, seed);
        let expect = payload.clone();
        let out = World::run(p, NetModel::free(), |comm| {
            let mut data =
                if comm.rank() == root { payload.clone() } else { Vec::new() };
            bcast(comm, &mut data, root).unwrap();
            data
        });
        for r in 0..p {
            prop_assert_eq!(&out[r], &expect);
        }
    }

    #[test]
    fn alltoall_is_a_transpose(p in 1usize..8, m in 1usize..10, seed in 0u64..50) {
        let out = World::run(p, NetModel::free(), |comm| {
            let r = comm.rank();
            let send: Vec<Vec<f64>> =
                (0..p).map(|q| contribution(r * p + q, m, seed)).collect();
            alltoall(comm, send).unwrap()
        });
        for r in 0..p {
            for q in 0..p {
                prop_assert_eq!(&out[r][q], &contribution(q * p + r, m, seed));
            }
        }
    }

    #[test]
    fn ring_times_match_closed_forms_for_random_machines(
        logp in 1u32..4,
        blocks in 1usize..30,
        alpha_us in 1u64..100,
        gbps in 1u64..20,
    ) {
        let p = 1usize << logp;
        let n = blocks * p; // divisible so chunking is exact
        let model = NetModel {
            alpha: alpha_us as f64 * 1e-6,
            beta: 1.0 / (gbps as f64 * 1e9),
            flops: f64::INFINITY,
        };
        let reduce_time = World::run(p, model, |comm| {
            let mut data = vec![1.0; n];
            allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            comm.now()
        })[0];
        let expect = cost::ring_allreduce_exact(p, n as f64).seconds(&model);
        prop_assert!((reduce_time - expect).abs() < 1e-12 * (1.0 + expect));

        let gather_time = World::run(p, model, |comm| {
            allgather_ring(comm, &vec![1.0; blocks]).unwrap();
            comm.now()
        })[0];
        let expect = cost::ring_allgather_exact(p, n as f64).seconds(&model);
        prop_assert!((gather_time - expect).abs() < 1e-12 * (1.0 + expect));
    }
}
