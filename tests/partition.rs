//! End-to-end split-brain-safety validation: the acceptance scenarios
//! for network partitions, quorum parking, and message-level chaos.
//!
//! 1. A symmetric 50/50 partition of a 6-rank grid: the fragment
//!    without quorum parks (no optimizer steps, no Eq. 8 shrink), the
//!    majority fragment shrinks and keeps training, and after the
//!    scripted heal the minority rejoins; the final loss matches the
//!    fault-free run to 1e-6 on every rank.
//! 2. The asymmetric variant: a one-way cut that silences a single
//!    rank's outbound links. The bidirectional-fragment echo round
//!    resolves the same verdict on both sides — the silenced rank
//!    parks even though it can still *hear* the majority.
//! 3. The whole partition→park→heal→rejoin history replays
//!    bit-identically under a fixed fault-plan seed.
//! 4. Message-level chaos (per-link duplication and bounded
//!    reordering) is invisible to training: final weights are
//!    bit-identical to the chaos-free run (property test over random
//!    link/event choices).
//!
//! The fault-plan seed is taken from `FT_SEED` (default 3) so CI can
//! sweep a seed matrix over the same scenarios.

use integrated_parallelism::collectives::FtConfig;
use integrated_parallelism::dnn::zoo::mlp_tiny;
use integrated_parallelism::integrated::ft_trainer::{train_1p5d_ft, FtTrainConfig};
use integrated_parallelism::integrated::trainer::synthetic_data;
use integrated_parallelism::integrated::MachineModel;
use integrated_parallelism::mpsim::FaultPlan;
use proptest::prelude::*;

fn ft_seed() -> u64 {
    std::env::var("FT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn pcfg(iters: usize) -> FtTrainConfig {
    FtTrainConfig {
        lr: 0.3,
        iters,
        seed: 7,
        ckpt_every: 2,
        ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
        machine: MachineModel::cori_knl(),
        ..FtTrainConfig::default()
    }
}

#[test]
fn symmetric_partition_minority_parks_majority_trains_heal_rejoins() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = pcfg(10);
    let (pr0, pc0) = (2, 3);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, pr0, pc0, FaultPlan::default());
    let m = clean.stats.makespan();

    // Cut {1, 3, 5} away mid-run: a 3-vs-3 split of the 2×3 grid. The
    // tie breaks toward the fragment holding rank 0, so {0, 2, 4} —
    // which still covers both weight rows (0,2 on row 0; 4 on row 1) —
    // keeps training while {1, 3, 5} parks.
    let minority = [1usize, 3, 5];
    let plan = FaultPlan::new(ft_seed())
        .partition(&minority, 0.35 * m)
        .heal(&minority, 0.6 * m);
    let part = train_1p5d_ft(&net, &x, &labels, &cfg, pr0, pc0, plan);

    // Every rank — the parked minority included — finishes.
    for (r, out) in part.per_rank.iter().enumerate() {
        assert!(out.is_ok(), "rank {r} did not finish: {out:?}");
    }

    // Exactly the minority parked, once each; the cut was observed.
    assert_eq!(part.stats.total_parks(), minority.len() as u64);
    for &g in &minority {
        assert_eq!(part.stats.ranks[g].parks, 1, "rank {g} parked once");
    }
    assert!(
        part.stats.total_severed() > 0,
        "cut actually severed traffic"
    );
    assert!(part.stats.total_unreachable_detected() > 0);

    // The majority committed a shrink excluding exactly the minority,
    // then regrew to the original grid once the cut healed.
    let s0 = part.per_rank[0].as_ref().unwrap();
    assert!(
        s0.recoveries.len() >= 2,
        "expected shrink + regrow, got {:?}",
        s0.recoveries
    );
    let shrink = &s0.recoveries[0];
    assert_eq!(shrink.dead, minority.to_vec());
    assert_eq!(shrink.pr * shrink.pc, 3, "degraded grid over the majority");
    let regrow = s0.recoveries.last().unwrap();
    assert_eq!(regrow.rejoined, minority.to_vec());
    assert!(regrow.dead.is_empty(), "nobody left excluded after regrow");
    assert_eq!((regrow.pr, regrow.pc), (pr0, pc0));
    for out in &part.per_rank {
        let o = out.as_ref().unwrap();
        assert_eq!((o.pr, o.pc), (pr0, pc0), "final grid is the original");
    }

    // The minority performed zero optimizer steps on its own: there is
    // a single committed loss chain, it matches fault-free to 1e-6,
    // and every rank — parked ones included — reports it verbatim.
    let el = part.losses();
    assert_eq!(el.len(), cfg.iters);
    for (a, b) in clean.losses().iter().zip(&el) {
        assert!((a - b).abs() < 1e-6, "loss diverged: {a} vs {b}");
    }
    for out in &part.per_rank {
        assert_eq!(out.as_ref().unwrap().losses, el);
    }
}

#[test]
fn oneway_partition_parks_the_silenced_rank() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = pcfg(10);

    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    let m = clean.stats.makespan();

    // Silence rank 5's *outbound* links only: it hears the majority
    // perfectly but nobody hears it. The echo round denies it a
    // bidirectional path to anyone, so its fragment is {5} and it
    // parks; the other five shrink and train on.
    let plan = FaultPlan::new(ft_seed())
        .partition_oneway(&[5], 0.35 * m)
        .heal(&[5], 0.6 * m);
    let part = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan);

    for (r, out) in part.per_rank.iter().enumerate() {
        assert!(out.is_ok(), "rank {r} did not finish: {out:?}");
    }
    assert_eq!(part.stats.total_parks(), 1);
    assert_eq!(part.stats.ranks[5].parks, 1, "the silenced rank parked");

    let s0 = part.per_rank[0].as_ref().unwrap();
    let shrink = &s0.recoveries[0];
    assert_eq!(shrink.dead, vec![5]);
    assert_eq!(shrink.pr * shrink.pc, 5, "majority of five trains on");
    let regrow = s0.recoveries.last().unwrap();
    assert_eq!(regrow.rejoined, vec![5]);
    assert_eq!((regrow.pr, regrow.pc), (2, 3));

    let el = part.losses();
    assert_eq!(el.len(), cfg.iters);
    for (a, b) in clean.losses().iter().zip(&el) {
        assert!((a - b).abs() < 1e-6, "loss diverged: {a} vs {b}");
    }
}

#[test]
fn partition_park_heal_rejoin_replays_bit_identically() {
    let net = mlp_tiny();
    let (x, labels) = synthetic_data(&net, 24, 5);
    let cfg = pcfg(8);
    let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());
    let m = clean.stats.makespan();

    let run = || {
        let plan = FaultPlan::new(ft_seed())
            .partition(&[1, 3, 5], 0.35 * m)
            .heal(&[1, 3, 5], 0.6 * m);
        train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan)
    };
    let a = run();
    let b = run();

    assert_eq!(a.stats.makespan(), b.stats.makespan());
    assert_eq!(a.stats.ranks, b.stats.ranks, "fault counters replay");
    for (ra, rb) in a.per_rank.iter().zip(&b.per_rank) {
        match (ra, rb) {
            (Ok(oa), Ok(ob)) => {
                assert_eq!(oa.losses, ob.losses, "losses replay bitwise");
                assert_eq!((oa.i, oa.j, oa.pr, oa.pc), (ob.i, ob.j, ob.pr, ob.pc));
                let wdiff: f64 = oa
                    .weight_shards
                    .iter()
                    .zip(&ob.weight_shards)
                    .map(|(x, y)| x.max_abs_diff(y))
                    .fold(0.0, f64::max);
                assert_eq!(wdiff, 0.0, "weights replay bitwise");
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            other => panic!("replay diverged in outcome kind: {other:?}"),
        }
    }
    assert_eq!(a.stats.total_parks(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Duplicated and reordered messages are transport-level noise:
    /// duplicates are absorbed, reordering preserves per-flow FIFO, so
    /// the final weights and losses are bit-identical to a clean run
    /// whatever links and messages the chaos hits.
    #[test]
    fn duplication_and_reordering_leave_training_bit_identical(
        dup_links in proptest::collection::vec((0usize..6, 0usize..6, 0u64..40), 1..5),
        reo_links in proptest::collection::vec((0usize..6, 0usize..6, 0u64..40, 1u64..4), 1..5),
    ) {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let cfg = pcfg(4);
        let clean = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, FaultPlan::default());

        let mut plan = FaultPlan::new(ft_seed());
        for &(s, d, n) in &dup_links {
            if s != d {
                plan = plan.duplicate_nth(s, d, n);
            }
        }
        for &(s, d, n, k) in &reo_links {
            if s != d {
                plan = plan.reorder_nth(s, d, n, k);
            }
        }
        let noisy = train_1p5d_ft(&net, &x, &labels, &cfg, 2, 3, plan);

        for (rc, rn) in clean.per_rank.iter().zip(&noisy.per_rank) {
            let (oc, on) = (rc.as_ref().unwrap(), on_ok(rn));
            prop_assert_eq!(&oc.losses, &on.losses, "losses bit-identical");
            let wdiff: f64 = oc
                .weight_shards
                .iter()
                .zip(&on.weight_shards)
                .map(|(a, b)| a.max_abs_diff(b))
                .fold(0.0, f64::max);
            prop_assert_eq!(wdiff, 0.0, "weights bit-identical under chaos");
        }
    }
}

fn on_ok<T, E: std::fmt::Debug>(r: &Result<T, E>) -> &T {
    r.as_ref().expect("rank finished under chaos")
}
