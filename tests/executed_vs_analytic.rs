//! Cross-crate validation: the *executed* distributed algorithms on
//! the `mpsim` virtual cluster incur exactly the communication the
//! paper's closed forms charge (bandwidth terms; the paper substitutes
//! `⌈log P⌉` for ring latency, so latency is zeroed here and checked
//! separately against the Thakur-exact forms in `collectives`).

use integrated_parallelism::distmm::dist::{col_shard, row_shard};
use integrated_parallelism::distmm::domain;
use integrated_parallelism::distmm::onep5d::{backward, forward, Grid};
use integrated_parallelism::dnn::{LayerSpec, NetworkBuilder, Shape};
use integrated_parallelism::integrated::cost::integrated::layer_cost;
use integrated_parallelism::integrated::cost::pure_domain;
use integrated_parallelism::integrated::{LayerParallelism, MachineModel};
use integrated_parallelism::mpsim::{NetModel, World};
use integrated_parallelism::tensor::conv::Conv2dParams;
use integrated_parallelism::tensor::init;

/// A bandwidth-only machine: α = 0 so the executed ring latency and
/// the paper's `⌈log P⌉` latency both vanish.
fn bandwidth_only() -> (NetModel, MachineModel) {
    let machine = MachineModel {
        alpha: 0.0,
        bandwidth: 1e6,
        word_bytes: 1,
        flops: 1.0,
    };
    let mut net = machine.net_model();
    net.flops = f64::INFINITY; // isolate communication
    (net, machine)
}

#[test]
fn executed_1p5d_layer_matches_eq8_bandwidth() {
    // Dimensions chosen so every collective splits evenly (ring
    // all-reduce chunks, all-gather blocks) and the executed volume is
    // exactly the closed form.
    let (d_out, d_in, b) = (16usize, 12usize, 24usize);
    let (pr, pc) = (4usize, 6usize);
    let (sim, machine) = bandwidth_only();

    let w = init::xavier(d_out, d_in, 1);
    let x = init::uniform(d_in, b, -1.0, 1.0, 2);
    let dy = init::uniform(d_out, b, -1.0, 1.0, 3);

    let times = World::run(pr * pc, sim, |comm| {
        let grid = Grid::new(comm, pr, pc).unwrap();
        let wl = row_shard(&w, pr, grid.i);
        let xl = col_shard(&x, pc, grid.j);
        let dyl = col_shard(&dy, pc, grid.j);
        let _y = forward(&grid, &wl, &xl).unwrap();
        let (_dw, _dx) = backward(&grid, &wl, &xl, &dyl).unwrap();
        comm.clock().comm
    });

    // The matching Eq. 8 per-layer cost (not the first layer, so the
    // ∆X all-reduce is included).
    let net = NetworkBuilder::new("one-layer", Shape::flat(d_in))
        .layer(LayerSpec::FullyConnected { out: d_out })
        .build()
        .unwrap();
    let layer = &net.weighted_layers()[0];
    let expect = layer_cost(
        layer,
        LayerParallelism::ModelBatch { pr, pc },
        b as f64,
        false,
    );
    let expect_secs = expect.total().words * machine.beta();
    for (r, &t) in times.iter().enumerate() {
        assert!(
            (t - expect_secs).abs() < 1e-12,
            "rank {r}: executed {t} vs Eq. 8 {expect_secs}"
        );
    }
}

#[test]
fn executed_pure_batch_and_model_match_eq8_degenerations() {
    let (d_out, d_in, b) = (16usize, 8usize, 16usize);
    let (sim, machine) = bandwidth_only();
    let w = init::xavier(d_out, d_in, 1);
    let x = init::uniform(d_in, b, -1.0, 1.0, 2);
    let dy = init::uniform(d_out, b, -1.0, 1.0, 3);

    let net = NetworkBuilder::new("one-layer", Shape::flat(d_in))
        .layer(LayerSpec::FullyConnected { out: d_out })
        .build()
        .unwrap();
    let layer = &net.weighted_layers()[0];

    for (pr, pc) in [(1usize, 8usize), (8, 1)] {
        let times = World::run(pr * pc, sim, |comm| {
            let grid = Grid::new(comm, pr, pc).unwrap();
            let wl = row_shard(&w, pr, grid.i);
            let xl = col_shard(&x, pc, grid.j);
            let dyl = col_shard(&dy, pc, grid.j);
            let _y = forward(&grid, &wl, &xl).unwrap();
            let (_dw, _dx) = backward(&grid, &wl, &xl, &dyl).unwrap();
            comm.clock().comm
        });
        let expect = layer_cost(
            layer,
            LayerParallelism::ModelBatch { pr, pc },
            b as f64,
            false,
        );
        let expect_secs = expect.total().words * machine.beta();
        for &t in &times {
            assert!(
                (t - expect_secs).abs() < 1e-12,
                "grid {pr}x{pc}: executed {t} vs analytic {expect_secs}"
            );
        }
    }
}

#[test]
fn executed_halo_forward_matches_eq7_term() {
    // An interior rank's exposed forward-halo time equals Eq. 7's
    // `α + β·B·X_W·X_C·⌊kh/2⌋` when nothing overlaps it.
    let params = Conv2dParams {
        in_c: 3,
        out_c: 4,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let (b, h, w) = (4usize, 16usize, 5usize);
    let machine = MachineModel {
        alpha: 1e-3,
        bandwidth: 1e6,
        word_bytes: 1,
        flops: 1.0,
    };
    let mut sim = machine.net_model();
    sim.flops = f64::INFINITY; // no interior compute to hide the halo
    let p_ranks = 4;

    let x = init::uniform_tensor(b, 3, h, w, -1.0, 1.0, 5);
    let wts = init::uniform(4, params.patch_len(), -0.5, 0.5, 6);
    let times = World::run(p_ranks, sim, |comm| {
        let rng = domain::strip_range(h, p_ranks, comm.rank());
        let strip = x.row_strip(rng.start, rng.end);
        let _ = domain::forward(comm, &strip, &wts, &params).unwrap();
        comm.clock().comm
    });

    // Eq. 7 forward halo volume for this layer.
    let volume = (b * w * 3) as f64 * (params.kh / 2) as f64;
    let expect = machine.alpha + volume * machine.beta();
    for (r, &t) in times.iter().enumerate() {
        if r > 0 && r + 1 < p_ranks {
            assert!(
                (t - expect).abs() < 1e-12,
                "interior rank {r}: {t} vs Eq. 7 term {expect}"
            );
        } else {
            // Boundary ranks exchange with one neighbour only; the two
            // directions overlap, so the time is still one transfer.
            assert!(t <= expect + 1e-12, "boundary rank {r}: {t}");
        }
    }
}

#[test]
fn executed_domain_backward_weight_allreduce_matches_eq7_batch_term() {
    // With a 1x1 kernel the halo vanishes and domain backward's only
    // collective is the ∆W ring all-reduce — Eq. 7's third sum.
    let params = Conv2dParams {
        in_c: 4,
        out_c: 4,
        kh: 1,
        kw: 1,
        stride: 1,
        pad: 0,
    };
    let (b, h, w) = (2usize, 8usize, 4usize);
    let (sim, machine) = bandwidth_only();
    let p_ranks = 4;

    let x = init::uniform_tensor(b, 4, h, w, -1.0, 1.0, 7);
    let wts = init::uniform(4, params.patch_len(), -0.5, 0.5, 8);
    let dy = init::uniform_tensor(b, 4, h, w, -1.0, 1.0, 9);
    let times = World::run(p_ranks, sim, |comm| {
        let rng = domain::strip_range(h, p_ranks, comm.rank());
        let _ = domain::backward(
            comm,
            &x.row_strip(rng.start, rng.end),
            &wts,
            &dy.row_strip(rng.start, rng.end),
            &params,
        )
        .unwrap();
        comm.clock().comm
    });

    let net = NetworkBuilder::new("one-conv", Shape::new(4, h, w))
        .layer(LayerSpec::Conv {
            out_c: 4,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        })
        .build()
        .unwrap();
    let layers = net.weighted_layers();
    let analytic = pure_domain(&layers, b as f64, p_ranks);
    let expect = analytic.total.dw_allreduce.words * machine.beta();
    for &t in &times {
        assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
    }
}

#[test]
fn single_straggler_link_inflates_ring_allreduce_by_exactly_the_delay() {
    use integrated_parallelism::collectives::ring::allreduce_ring;
    use integrated_parallelism::collectives::ReduceOp;
    use integrated_parallelism::mpsim::{FaultPlan, Span};

    // Bandwidth-only, evenly dividing blocks: the fault-free ring
    // all-reduce runs in perfect lockstep with zero slack, so a single
    // delayed message cannot be absorbed — it must shift every rank's
    // completion by exactly the injected delay.
    let (sim, _machine) = bandwidth_only();
    let p = 6usize;
    let n = 24usize;
    let run = |plan: FaultPlan| {
        World::run_with_faults(p, sim, plan, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; n];
            allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            (data, comm.now())
        })
    };
    let (clean, _) = run(FaultPlan::default());

    let delay = 0.375;
    let plan = FaultPlan::new(1).straggle(2, 3, delay, 0.0, Span::Once(0));
    let (slow, stats) = run(plan);

    for (r, ((dc, tc), (ds, ts))) in clean.iter().zip(&slow).enumerate() {
        assert_eq!(dc, ds, "rank {r}: numbers unaffected by the straggler");
        let inflation = ts - tc;
        assert!(
            (inflation - delay).abs() < 1e-12,
            "rank {r}: inflated by {inflation}, injected {delay}"
        );
    }
    // The injected wait is attributed to the receiving rank's stats.
    assert!((stats.total_straggler_wait() - delay).abs() < 1e-12);
    assert!((stats.ranks[3].straggler_wait - delay).abs() < 1e-12);
}
