//! Strength-reduced unsigned division by a runtime-invariant divisor.
//!
//! The implicit-GEMM convolution packs panels straight out of the NCHW
//! input, which means every packed element decomposes its `(m, k)` GEMM
//! coordinates as `m → (n, oh, ow)` and `k → (c, kh, kw)` — four
//! div/mods per element on the innermost packing path. Hardware integer
//! division is 20–40 cycles and not pipelined; this replaces it with
//! the classic round-up magic-number scheme (Granlund & Montgomery,
//! also Hacker's Delight §10-8): precompute `magic = ⌈2^(32+s)/d⌉` with
//! `s = ⌈log₂ d⌉`, then `x / d == (x · magic) >> (32+s)` — one widening
//! multiply and a shift.
//!
//! The round-up method is exact for every `x < 2³²` because the magic
//! error `e = magic·d − 2^(32+s)` satisfies `0 ≤ e < d ≤ 2^s`. Divisors
//! are capped at `2³¹` (tensor extents are far below that), which keeps
//! `magic ≤ 2³³` and the `x · magic` product inside `u64` for the
//! `x < 2³¹` indices the kernels produce.

/// Precomputed magic-number divisor: `div`/`div_mod` by a fixed `d`
/// without a hardware divide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDivmod {
    d: u32,
    magic: u64,
    shift: u32,
}

impl FastDivmod {
    /// Precomputes the magic pair for divisor `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or exceeds `2³¹`.
    pub fn new(d: u32) -> Self {
        assert!(d > 0, "FastDivmod divisor must be positive");
        assert!(d <= 1 << 31, "FastDivmod divisor must be <= 2^31");
        // s = ⌈log₂ d⌉; for d = 1 this is 0 and magic = 2³² exactly.
        let shift = 32 - (d - 1).leading_zeros();
        let pow = 1u128 << (32 + shift);
        let magic = pow.div_ceil(d as u128) as u64;
        FastDivmod { d, magic, shift }
    }

    /// The divisor this was built for.
    #[inline]
    pub fn divisor(self) -> u32 {
        self.d
    }

    /// `x / d` via multiply-shift.
    // Named like the operation it strength-reduces; not an ops::Div
    // impl because the divisor is `self`, not the right-hand side.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn div(self, x: u32) -> u32 {
        debug_assert!(x < 1 << 31, "FastDivmod dividend must be < 2^31");
        ((x as u64 * self.magic) >> (32 + self.shift)) as u32
    }

    /// `(x / d, x % d)` with a single multiply-shift and one multiply
    /// for the remainder.
    #[inline]
    pub fn div_mod(self, x: u32) -> (u32, u32) {
        let q = self.div(x);
        (q, x - q * self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_for_edge_divisors() {
        for d in [
            1u32,
            2,
            3,
            5,
            7,
            11,
            25,
            27,
            121,
            729,
            1 << 10,
            (1 << 10) + 1,
            (1 << 20) - 1,
            1 << 31,
        ] {
            let f = FastDivmod::new(d);
            for x in [
                0u32,
                1,
                d.saturating_sub(1),
                d,
                d.saturating_add(1),
                12345,
                (1 << 31) - 1,
            ] {
                if x >= 1 << 31 {
                    // Outside the documented dividend domain (only hit
                    // when d itself is the 2³¹ cap).
                    continue;
                }
                let (q, r) = f.div_mod(x);
                assert_eq!((q, r), (x / d, x % d), "x={x} d={d}");
            }
        }
    }

    #[test]
    fn conv_sized_divisors_are_exhaustively_exact_on_small_ranges() {
        // The divisors the im2col map actually uses: kh·kw, kw, oh·ow, ow.
        for d in [3u32, 5, 9, 11, 25, 27 * 27, 55 * 55, 121] {
            let f = FastDivmod::new(d);
            for x in 0..10_000u32 {
                assert_eq!(f.div_mod(x), (x / d, x % d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_divisor_panics() {
        let _ = FastDivmod::new(0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn matches_hardware_division(x in 0u32..(1 << 31), d in 1u32..(1 << 31)) {
            let f = FastDivmod::new(d);
            prop_assert_eq!(f.div_mod(x), (x / d, x % d));
        }
    }
}
