//! Deterministic random initialization.
//!
//! Distributed-vs-serial verification needs every rank to start from
//! *identical* weights, so all initializers take explicit seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::conv::Tensor4;
use crate::matrix::Matrix;

/// Xavier/Glorot-uniform matrix: entries in `±sqrt(6/(fan_in+fan_out))`
/// where `fan_in = cols`, `fan_out = rows`.
pub fn xavier(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let bound = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-bound..bound))
}

/// Uniform matrix in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Uniform NCHW tensor in `[lo, hi)`.
pub fn uniform_tensor(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> Tensor4 {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor4::from_fn(n, c, h, w, |_, _, _, _| rng.random_range(lo..hi))
}

/// Random class labels in `0..classes`.
pub fn labels(count: usize, classes: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.random_range(0..classes)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        assert_eq!(xavier(4, 5, 42), xavier(4, 5, 42));
        assert_ne!(xavier(4, 5, 42), xavier(4, 5, 43));
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier(10, 20, 7);
        let bound = (6.0 / 30.0f64).sqrt();
        for &v in m.as_slice() {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn uniform_in_range() {
        let m = uniform(5, 5, -2.0, 3.0, 1);
        for &v in m.as_slice() {
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn labels_in_range_and_deterministic() {
        let l = labels(100, 10, 3);
        assert_eq!(l, labels(100, 10, 3));
        assert!(l.iter().all(|&x| x < 10));
    }
}
