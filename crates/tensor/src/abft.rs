//! Algorithm-based fault tolerance (ABFT) for the three GEMM shapes.
//!
//! Huang–Abraham checksums adapted to the paper's layer products
//! (`Y = W·X`, `∆W = ∆Y·Xᵀ`, `∆X = Wᵀ·∆Y`): writing the product as
//! `C = M·N` (with `M`/`N` the possibly-transposed operands, never
//! materialized), the row sums of `C` must equal `M·(N·e)` and the
//! column sums must equal `(eᵀ·M)·N`, where `e` is the all-ones vector.
//! Both sides cost `O(mk + kn + mn)` — asymptotically free next to the
//! `O(mkn)` product — and a single corrupted element shows up as
//! exactly one inconsistent row *and* one inconsistent column, which
//! locates it.
//!
//! Correction is **bit-exact recomputation**, not checksum subtraction:
//! the located element is re-derived in the owning kernel's exact
//! accumulation order — the [`crate::gemm`] determinism contract, an
//! ascending-`k` `f64::mul_add` fold from `0.0`, identical for all
//! three product shapes and for every dispatch path (small/packed,
//! scalar/AVX2) — so a corrected product is indistinguishable, to the
//! last bit, from one that was never corrupted. That is what lets the
//! fault-tolerant trainer keep its bit-parity guarantees with ABFT
//! enabled: verification only reads, and correction restores the exact
//! kernel output.
//!
//! Residuals are judged against a per-row/per-column tolerance derived
//! from `|M|·|N|` — the worst-case rounding envelope of the float sums
//! — so clean products never trip the check (no false positives), at
//! the cost of missing flips in the lowest mantissa bits, whose effect
//! is below numerical noise anyway. The `bench/abft_sweep` binary
//! measures that detection-coverage curve per bit.

use crate::matrix::Matrix;

/// Rounding-envelope safety factor for the residual tolerances.
const SAFETY: f64 = 32.0;

/// Outcome of an ABFT verification pass over one GEMM output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every row and column checksum is consistent.
    Clean,
    /// Exactly one element was inconsistent; it has been recomputed
    /// bit-exactly in place.
    Corrected {
        /// Row of the corrected element.
        row: usize,
        /// Column of the corrected element.
        col: usize,
    },
    /// The inconsistency pattern does not locate a single element
    /// (multi-element corruption, or a detection too marginal to
    /// localize); the caller must escalate to rollback.
    Uncorrectable {
        /// Rows whose checksum is inconsistent.
        bad_rows: usize,
        /// Columns whose checksum is inconsistent.
        bad_cols: usize,
    },
}

/// FLOPs charged for one ABFT verification of an `m×k · k×n` product
/// (checksum vectors on both operands and the output, plus their
/// absolute-value tolerance twins). Used by the distributed wrappers to
/// put the overhead on the virtual clock, so measured ABFT cost is real
/// under the α–β/FLOP model.
pub fn abft_flops(m: usize, k: usize, n: usize) -> f64 {
    4.0 * (m * k + k * n + m * n) as f64
}

/// Row sums of `c` (length `rows`).
fn row_sums(c: &Matrix) -> Vec<f64> {
    (0..c.rows()).map(|i| c.row(i).iter().sum()).collect()
}

/// Column sums of `c` (length `cols`).
fn col_sums(c: &Matrix) -> Vec<f64> {
    let mut s = vec![0.0; c.cols()];
    for i in 0..c.rows() {
        for (sj, &v) in s.iter_mut().zip(c.row(i)) {
            *sj += v;
        }
    }
    s
}

/// Shared verification core. `exp_row`/`exp_col` are the checksum-side
/// expectations `M·(N·e)` and `(eᵀ·M)·N`; `tol_row`/`tol_col` their
/// `|M|·|N|`-scaled rounding envelopes; `recompute(i, j)` re-derives
/// one element in the kernel's exact accumulation order.
// The negated `<=` comparisons below are deliberate, not a style slip:
// see the comment at the residual filters.
#[allow(clippy::too_many_arguments, clippy::neg_cmp_op_on_partial_ord)]
fn verify_core(
    c: &mut Matrix,
    exp_row: &[f64],
    tol_row: &[f64],
    exp_col: &[f64],
    tol_col: &[f64],
    recompute: impl Fn(usize, usize) -> f64,
) -> Verdict {
    let rs = row_sums(c);
    let cs = col_sums(c);
    // Negated `<=` so a NaN residual (an exponent flip can turn an
    // element into Inf/NaN, whose sums poison the checks) counts as bad
    // instead of silently failing every `>` comparison.
    let bad_rows: Vec<usize> = (0..c.rows())
        .filter(|&i| !((rs[i] - exp_row[i]).abs() <= tol_row[i]))
        .collect();
    let bad_cols: Vec<usize> = (0..c.cols())
        .filter(|&j| !((cs[j] - exp_col[j]).abs() <= tol_col[j]))
        .collect();
    match (bad_rows.as_slice(), bad_cols.as_slice()) {
        ([], []) => Verdict::Clean,
        ([i], [j]) => {
            c.set(*i, *j, recompute(*i, *j));
            Verdict::Corrected { row: *i, col: *j }
        }
        _ => Verdict::Uncorrectable {
            bad_rows: bad_rows.len(),
            bad_cols: bad_cols.len(),
        },
    }
}

/// `tol[i] = SAFETY · scale · ε · magnitude[i]`, with a tiny absolute
/// floor so an all-zero row/column never flags on `-0.0` noise.
fn tolerances(magnitudes: &[f64], scale: usize) -> Vec<f64> {
    let rel = SAFETY * scale as f64 * f64::EPSILON;
    magnitudes.iter().map(|&m| rel * m + 1e-300).collect()
}

/// Verifies (and, for a single bad element, repairs) `c = a·b`
/// as computed by [`crate::matmul::matmul`].
pub fn verify_matmul(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Verdict {
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    if m == 0 || n == 0 || k == 0 {
        return Verdict::Clean;
    }
    // N·e and |N|·e: row sums of B.
    let mut ne = vec![0.0; k];
    let mut ne_abs = vec![0.0; k];
    for kk in 0..k {
        for &v in b.row(kk) {
            ne[kk] += v;
            ne_abs[kk] += v.abs();
        }
    }
    // exp_row = A·(N·e); magnitude = |A|·(|N|·e).
    let mut exp_row = vec![0.0; m];
    let mut mag_row = vec![0.0; m];
    for i in 0..m {
        for (kk, &aik) in a.row(i).iter().enumerate() {
            exp_row[i] += aik * ne[kk];
            mag_row[i] += aik.abs() * ne_abs[kk];
        }
    }
    // eᵀ·M and eᵀ·|M|: column sums of A.
    let em = col_sums(a);
    let em_abs = {
        let mut s = vec![0.0; k];
        for i in 0..m {
            for (sk, &v) in s.iter_mut().zip(a.row(i)) {
                *sk += v.abs();
            }
        }
        s
    };
    // exp_col = (eᵀ·M)·B; magnitude analogue.
    let mut exp_col = vec![0.0; n];
    let mut mag_col = vec![0.0; n];
    for kk in 0..k {
        for (j, &bkj) in b.row(kk).iter().enumerate() {
            exp_col[j] += em[kk] * bkj;
            mag_col[j] += em_abs[kk] * bkj.abs();
        }
    }
    let tol_row = tolerances(&mag_row, k + n);
    let tol_col = tolerances(&mag_col, k + m);
    verify_core(c, &exp_row, &tol_row, &exp_col, &tol_col, |i, j| {
        // The gemm contract: ascending-k fused multiply-add from 0.0
        // (KC panels load/store the C tile, so the chain is continuous).
        let mut acc = 0.0;
        for (kk, &aik) in a.row(i).iter().enumerate() {
            acc = aik.mul_add(b.get(kk, j), acc);
        }
        acc
    })
}

/// Verifies/repairs `c = a·bᵀ` as computed by
/// [`crate::matmul::matmul_a_bt`] (`b` is `n×k`, untransposed).
pub fn verify_a_bt(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Verdict {
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    if m == 0 || n == 0 || k == 0 {
        return Verdict::Clean;
    }
    // N = Bᵀ: N·e is the column sums of B.
    let ne = col_sums(b);
    let ne_abs = {
        let mut s = vec![0.0; k];
        for j in 0..n {
            for (sk, &v) in s.iter_mut().zip(b.row(j)) {
                *sk += v.abs();
            }
        }
        s
    };
    let mut exp_row = vec![0.0; m];
    let mut mag_row = vec![0.0; m];
    for i in 0..m {
        for (kk, &aik) in a.row(i).iter().enumerate() {
            exp_row[i] += aik * ne[kk];
            mag_row[i] += aik.abs() * ne_abs[kk];
        }
    }
    let em = col_sums(a);
    let em_abs = {
        let mut s = vec![0.0; k];
        for i in 0..m {
            for (sk, &v) in s.iter_mut().zip(a.row(i)) {
                *sk += v.abs();
            }
        }
        s
    };
    // exp_col[j] = Σ_k (eᵀM)[k]·B[j][k].
    let mut exp_col = vec![0.0; n];
    let mut mag_col = vec![0.0; n];
    for j in 0..n {
        for (kk, &bjk) in b.row(j).iter().enumerate() {
            exp_col[j] += em[kk] * bjk;
            mag_col[j] += em_abs[kk] * bjk.abs();
        }
    }
    let tol_row = tolerances(&mag_row, k + n);
    let tol_col = tolerances(&mag_col, k + m);
    verify_core(c, &exp_row, &tol_row, &exp_col, &tol_col, |i, j| {
        // Same gemm contract; B is read transposed but the fold over
        // ascending k is unchanged.
        let mut acc = 0.0;
        for (&ak, &bk) in a.row(i).iter().zip(b.row(j)) {
            acc = ak.mul_add(bk, acc);
        }
        acc
    })
}

/// Verifies/repairs `c = aᵀ·b` as computed by
/// [`crate::matmul::matmul_at_b`] (`a` is `k×m`, untransposed).
pub fn verify_at_b(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Verdict {
    let (m, n) = (c.rows(), c.cols());
    let k = a.rows();
    if m == 0 || n == 0 || k == 0 {
        return Verdict::Clean;
    }
    // N = B: N·e is the row sums of B.
    let mut ne = vec![0.0; k];
    let mut ne_abs = vec![0.0; k];
    for kk in 0..k {
        for &v in b.row(kk) {
            ne[kk] += v;
            ne_abs[kk] += v.abs();
        }
    }
    // M = Aᵀ: row i of M is column i of A; eᵀ·M is the row sums of A.
    let mut exp_row = vec![0.0; m];
    let mut mag_row = vec![0.0; m];
    let mut em = vec![0.0; k];
    let mut em_abs = vec![0.0; k];
    for kk in 0..k {
        for (i, &aki) in a.row(kk).iter().enumerate() {
            exp_row[i] += aki * ne[kk];
            mag_row[i] += aki.abs() * ne_abs[kk];
            em[kk] += aki;
            em_abs[kk] += aki.abs();
        }
    }
    let mut exp_col = vec![0.0; n];
    let mut mag_col = vec![0.0; n];
    for kk in 0..k {
        for (j, &bkj) in b.row(kk).iter().enumerate() {
            exp_col[j] += em[kk] * bkj;
            mag_col[j] += em_abs[kk] * bkj.abs();
        }
    }
    let tol_row = tolerances(&mag_row, k + n);
    let tol_col = tolerances(&mag_col, k + m);
    verify_core(c, &exp_row, &tol_row, &exp_col, &tol_col, |i, j| {
        // Same gemm contract; A is read transposed. The old kernel's
        // zero-skip is gone — the packed kernel multiplies through
        // zeros, and `fma(±0, b, acc)` is exact, so the blind fold is
        // the bit-exact mirror.
        let mut acc = 0.0;
        for kk in 0..k {
            acc = a.get(kk, i).mul_add(b.get(kk, j), acc);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, matmul_a_bt, matmul_at_b};
    use proptest::prelude::*;

    fn test_matrix(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 17) as f64 * 0.01 + seed).sin()
        })
    }

    fn flip_bit(c: &mut Matrix, i: usize, j: usize, bit: u32) {
        let v = c.get(i, j);
        c.set(i, j, f64::from_bits(v.to_bits() ^ (1u64 << bit)));
    }

    /// Each shape as (product, verifier) so every test covers all three.
    type Product = fn(&Matrix, &Matrix) -> Matrix;
    type Verifier = fn(&Matrix, &Matrix, &mut Matrix) -> Verdict;

    type Shape = (
        &'static str,
        Product,
        Verifier,
        (usize, usize),
        (usize, usize),
    );

    fn shapes() -> Vec<Shape> {
        // (name, product, verify, a_shape, b_shape) with C = 9×7.
        vec![
            (
                "matmul",
                matmul as Product,
                verify_matmul as Verifier,
                (9, 13),
                (13, 7),
            ),
            (
                "a_bt",
                matmul_a_bt as Product,
                verify_a_bt as Verifier,
                (9, 13),
                (7, 13),
            ),
            (
                "at_b",
                matmul_at_b as Product,
                verify_at_b as Verifier,
                (13, 9),
                (13, 7),
            ),
        ]
    }

    #[test]
    fn clean_products_verify_clean_and_are_untouched() {
        for (name, product, verify, ash, bsh) in shapes() {
            let a = test_matrix(ash.0, ash.1, 0.3);
            let b = test_matrix(bsh.0, bsh.1, 0.7);
            let mut c = product(&a, &b);
            let orig = c.clone();
            assert_eq!(verify(&a, &b, &mut c), Verdict::Clean, "{name}");
            assert_eq!(
                c, orig,
                "{name}: verification must not modify a clean product"
            );
        }
    }

    #[test]
    fn single_high_bit_flip_is_located_and_repaired_bit_exactly() {
        for (name, product, verify, ash, bsh) in shapes() {
            let a = test_matrix(ash.0, ash.1, 0.4);
            let b = test_matrix(bsh.0, bsh.1, 0.9);
            let clean = product(&a, &b);
            for bit in [44u32, 51, 55, 62] {
                let mut c = clean.clone();
                flip_bit(&mut c, 3, 5, bit);
                match verify(&a, &b, &mut c) {
                    Verdict::Corrected { row: 3, col: 5 } => {}
                    other => panic!("{name} bit {bit}: {other:?}"),
                }
                assert_eq!(c, clean, "{name} bit {bit}: repair is bit-exact");
            }
        }
    }

    #[test]
    fn multi_element_corruption_is_uncorrectable() {
        for (name, product, verify, ash, bsh) in shapes() {
            let a = test_matrix(ash.0, ash.1, 0.2);
            let b = test_matrix(bsh.0, bsh.1, 0.5);
            let mut c = product(&a, &b);
            flip_bit(&mut c, 1, 2, 51);
            flip_bit(&mut c, 6, 4, 51);
            match verify(&a, &b, &mut c) {
                Verdict::Uncorrectable {
                    bad_rows: 2,
                    bad_cols: 2,
                } => {}
                other => panic!("{name}: {other:?}"),
            }
        }
    }

    #[test]
    fn same_row_corruption_is_uncorrectable_not_misrepaired() {
        let (_, product, verify, ash, bsh) = shapes().remove(0);
        let a = test_matrix(ash.0, ash.1, 0.2);
        let b = test_matrix(bsh.0, bsh.1, 0.5);
        let mut c = product(&a, &b);
        flip_bit(&mut c, 4, 1, 50);
        flip_bit(&mut c, 4, 6, 50);
        match verify(&a, &b, &mut c) {
            Verdict::Uncorrectable {
                bad_rows: 1,
                bad_cols: 2,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repair_is_bit_exact_across_kc_panel_boundaries() {
        // k > KC forces the packed kernel through multiple K panels
        // (C tile loaded/stored per panel); the recompute closure's
        // single continuous mul_add fold must still match bit-exactly.
        let k = crate::gemm::KC + 37;
        let a = test_matrix(40, k, 0.4);
        let b = test_matrix(k, 24, 0.9);
        let clean = matmul(&a, &b);
        let mut c = clean.clone();
        flip_bit(&mut c, 17, 11, 52);
        match verify_matmul(&a, &b, &mut c) {
            Verdict::Corrected { row: 17, col: 11 } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(c, clean, "panel-crossing repair must be bit-exact");

        let at = test_matrix(k, 40, 0.2);
        let clean_t = matmul_at_b(&at, &b);
        let mut ct = clean_t.clone();
        flip_bit(&mut ct, 9, 3, 55);
        match verify_at_b(&at, &b, &mut ct) {
            Verdict::Corrected { row: 9, col: 3 } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(ct, clean_t);

        let bt = test_matrix(24, k, 0.6);
        let clean_b = matmul_a_bt(&a, &bt);
        let mut cb = clean_b.clone();
        flip_bit(&mut cb, 5, 20, 49);
        match verify_a_bt(&a, &bt, &mut cb) {
            Verdict::Corrected { row: 5, col: 20 } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(cb, clean_b);
    }

    #[test]
    fn degenerate_shapes_are_clean() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let mut c = matmul(&a, &b);
        assert_eq!(verify_matmul(&a, &b, &mut c), Verdict::Clean);
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = matmul(&a, &b);
        assert_eq!(verify_matmul(&a, &b, &mut c), Verdict::Clean);
    }

    #[test]
    fn flops_are_low_order() {
        // The checksum cost must be asymptotically below the product.
        assert!(abft_flops(64, 64, 64) < crate::matmul::matmul_flops(64, 64, 64));
        assert_eq!(abft_flops(2, 3, 4), 4.0 * (6 + 12 + 8) as f64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// No false positives: clean products of any size verify Clean
        /// for every shape, and the buffer is bit-identical afterwards.
        #[test]
        fn clean_runs_never_flag(
            m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0.0f64..10.0
        ) {
            let a = test_matrix(m, k, seed);
            let b = test_matrix(k, n, seed + 1.0);
            let mut c = matmul(&a, &b);
            let orig = c.clone();
            prop_assert_eq!(verify_matmul(&a, &b, &mut c), Verdict::Clean);
            prop_assert_eq!(&c, &orig);

            let bt = test_matrix(n, k, seed + 2.0);
            let mut cb = matmul_a_bt(&a, &bt);
            let origb = cb.clone();
            prop_assert_eq!(verify_a_bt(&a, &bt, &mut cb), Verdict::Clean);
            prop_assert_eq!(&cb, &origb);

            let at = test_matrix(k, m, seed + 3.0);
            let bb = test_matrix(k, n, seed + 4.0);
            let mut ct = matmul_at_b(&at, &bb);
            let origt = ct.clone();
            prop_assert_eq!(verify_at_b(&at, &bb, &mut ct), Verdict::Clean);
            prop_assert_eq!(&ct, &origt);
        }

        /// Any single exponent-region flip anywhere is repaired to the
        /// bit-exact clean product.
        #[test]
        fn high_bit_flips_always_repair(
            m in 2usize..12, k in 2usize..12, n in 2usize..12,
            seed in 0.0f64..10.0, ei in 0usize..100, bit in 48u32..63
        ) {
            let a = test_matrix(m, k, seed);
            let b = test_matrix(k, n, seed + 1.0);
            let clean = matmul(&a, &b);
            let mut c = clean.clone();
            let (i, j) = (ei % m, (ei / m) % n);
            flip_bit(&mut c, i, j, bit);
            match verify_matmul(&a, &b, &mut c) {
                Verdict::Corrected { row, col } => {
                    prop_assert_eq!((row, col), (i, j));
                    prop_assert_eq!(&c, &clean);
                }
                other => prop_assert!(false, "expected correction, got {:?}", other),
            }
        }
    }
}
