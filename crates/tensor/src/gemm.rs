//! Panel-packed, cache-blocked GEMM core with a register-tiled
//! microkernel — the engine behind [`crate::matmul`] and the
//! implicit-GEMM convolution in [`crate::conv`].
//!
//! ## Structure (the classic Goto/BLIS loop nest)
//!
//! ```text
//! for j0 in steps of NC:                    // C column panels
//!   for k0 in steps of KC:                  // K panels
//!     pack B[k0.., j0..]  → B̃  (KC×NC, NR-column slivers)
//!     for i0 in steps of MC:                // parallel over row blocks
//!       pack A[i0.., k0..] → Ã  (MC×KC, MR-row slivers)
//!       for each (MR×NR) tile: microkernel(Ã sliver, B̃ sliver, C tile)
//! ```
//!
//! Operands are supplied as *element closures* `(i, k) → a` and
//! `(k, j) → b`, so the same core serves plain row-major matrices, the
//! transposed operand shapes (`AᵀB`, `ABᵀ`), and the fused im2col
//! layout that packs convolution panels straight out of an NCHW tensor
//! without materializing the column matrix. Packing touches each
//! operand element exactly once per panel pass; all floating-point
//! arithmetic lives in the microkernels.
//!
//! ## Determinism contract
//!
//! Every output element is the fold, over **ascending k**, of a fused
//! multiply-add: `c ← fma(a_ik, b_kj, c)` starting from `0.0`. The
//! microkernel loads the C tile into registers at the start of each KC
//! panel and stores it after, so panel boundaries do not break the
//! chain, and IEEE-754 `fusedMultiplyAdd` is exactly rounded, so the
//! hardware-FMA fast path, the scalar `f64::mul_add` fallback, and the
//! small-matrix path all produce **bit-identical** results — on any
//! machine, any thread count, every run. ABFT recomputation
//! ([`crate::abft`]) relies on this: re-deriving one element as a plain
//! ascending-k `mul_add` dot reproduces the kernel's bits exactly.
//! Deliberately absent: split accumulators (k-unrolled partial sums)
//! and non-fused mul+add paths, both of which would tie the numerical
//! result to the dispatch decision.
//!
//! The AVX2+FMA microkernel is selected by runtime feature detection
//! (`is_x86_feature_detected!`); everything else goes through the same
//! `mul_add` source, which on FMA-less hardware falls back to libm's
//! correctly-rounded software `fma` — slow, but bit-identical.

use std::cell::RefCell;

use rayon::prelude::*;

/// Microkernel tile rows (register blocking in M).
pub const MR: usize = 6;
/// Microkernel tile columns (register blocking in N); two AVX2 f64
/// vectors wide.
pub const NR: usize = 8;
/// K-panel depth: one Ã sliver column block of KC f64 (2 KB) streams
/// from L1 while B̃ slivers stream from L2.
pub const KC: usize = 256;
/// Row-block height (multiple of MR): Ã is MC×KC ≈ 96 KB, sized to L2.
pub const MC: usize = 48;
/// Column-panel width (multiple of NR): B̃ is KC×NC ≈ 1 MB, sized to
/// L2/L3.
pub const NC: usize = 512;

/// Below this many multiply-adds (`m·n·k`), skip packing *and* the
/// parallel runtime entirely: a tiny layer-shard GEMM at large P costs
/// more in rayon dispatch and panel setup than the arithmetic itself.
/// Tuned on the criterion suite; a 32³ product sits right at the
/// crossover.
pub const SMALL_GEMM_MNK: usize = 32 * 32 * 32;

/// Minimum multiply-adds (`m·n·k`) before row blocks are fanned out to
/// worker threads; below this a single core finishes before the spawn
/// overhead is paid back.
const PAR_MIN_MNK: usize = 1 << 23;

/// Whether the AVX2+FMA microkernel is available (runtime-detected,
/// cached). The fallback path is bit-identical, so this only ever
/// changes speed.
#[inline]
pub fn fma_kernel_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether a `m×k · k×n` product takes the small-matrix path (serial,
/// unpacked). Exposed so the fast-path threshold is pinnable by tests.
#[inline]
pub fn is_small_gemm(m: usize, n: usize, k: usize) -> bool {
    // Saturating: enormous dims must not wrap into "small".
    m.saturating_mul(n).saturating_mul(k) <= SMALL_GEMM_MNK
}

/// Words of packing scratch a `m×k · k×n` product allocates: one B̃
/// panel plus one Ã block per worker thread. Bounded by the cache
/// blocking — never by the operand sizes — which is what lets the
/// implicit-GEMM convolution run without a materialized im2col matrix.
pub fn packing_scratch_words(m: usize, n: usize, k: usize) -> usize {
    if is_small_gemm(m, n, k) || m == 0 || n == 0 || k == 0 {
        return 0;
    }
    let kc = KC.min(k);
    let b_panel = kc * NC.min(n.next_multiple_of(NR));
    let a_block = MC.min(m.next_multiple_of(MR)) * kc;
    b_panel + a_block
}

thread_local! {
    /// Per-thread Ã block, reused across panels and GEMM calls.
    static A_PANEL: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Portable microkernel: loads the `mr_eff × nr_eff` C tile, folds the
/// packed slivers over ascending k with `mul_add`, stores it back.
/// Padded sliver lanes (zero-filled by packing) accumulate into
/// discarded tile entries, so the loop body is branch-free.
#[inline(always)]
fn micro_body(
    kc: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr_eff) {
        row[..nr_eff].copy_from_slice(&c[r * ldc..r * ldc + nr_eff]);
    }
    for kk in 0..kc {
        let av = &a[kk * MR..kk * MR + MR];
        let bv = &b[kk * NR..kk * NR + NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (cc, accv) in row.iter_mut().enumerate() {
                *accv = ar.mul_add(bv[cc], *accv);
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr_eff) {
        c[r * ldc..r * ldc + nr_eff].copy_from_slice(&row[..nr_eff]);
    }
}

/// `micro_body` compiled with FMA enabled so `mul_add` inlines to
/// hardware `vfmadd` (bit-identical to the libm fallback — fma is
/// exactly rounded either way).
///
/// # Safety
///
/// Caller must have verified FMA support via [`fma_kernel_available`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_edge_fma(
    kc: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    micro_body(kc, a, b, c, ldc, mr_eff, nr_eff);
}

/// Full-tile AVX2+FMA microkernel: 6×8 register tile (12 accumulator
/// ymm, 2 B vectors, 1 broadcast — 15 of 16 registers), `vfmadd` per
/// lane, which per element is exactly the ascending-k `mul_add` fold of
/// the determinism contract.
///
/// # Safety
///
/// Caller must have verified AVX2+FMA support via
/// [`fma_kernel_available`], and `c` must have `MR` rows of `ldc`
/// with at least `NR` valid columns at the tile origin.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_6x8_fma(kc: usize, a: &[f64], b: &[f64], c: &mut [f64], ldc: usize) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    let mut acc = [[_mm256_setzero_pd(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_pd(cp.add(r * ldc));
        row[1] = _mm256_loadu_pd(cp.add(r * ldc + 4));
    }
    for kk in 0..kc {
        let b0 = _mm256_loadu_pd(bp.add(kk * NR));
        let b1 = _mm256_loadu_pd(bp.add(kk * NR + 4));
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = _mm256_set1_pd(*ap.add(kk * MR + r));
            row[0] = _mm256_fmadd_pd(ar, b0, row[0]);
            row[1] = _mm256_fmadd_pd(ar, b1, row[1]);
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_pd(cp.add(r * ldc), row[0]);
        _mm256_storeu_pd(cp.add(r * ldc + 4), row[1]);
    }
}

/// Dispatches one tile to the best available microkernel.
// The argument list mirrors the microkernel ABI; bundling it into a
// struct would just move the field list.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_dispatch(
    fma: bool,
    kc: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if fma {
        // SAFETY: `fma` is only true after runtime AVX2+FMA detection.
        unsafe {
            if mr_eff == MR && nr_eff == NR {
                micro_6x8_fma(kc, a, b, c, ldc);
            } else {
                micro_edge_fma(kc, a, b, c, ldc, mr_eff, nr_eff);
            }
        }
        return;
    }
    let _ = fma;
    micro_body(kc, a, b, c, ldc, mr_eff, nr_eff);
}

/// The shape of a small-path product over dense row-major buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallShape {
    /// `C = A·B` with `A` m×k, `B` k×n.
    Nn,
    /// `C = Aᵀ·B` with `A` k×m (untransposed), `B` k×n.
    Tn,
    /// `C = A·Bᵀ` with `A` m×k, `B` n×k (untransposed).
    Nt,
}

/// Small-matrix body: unpacked loops, one `mul_add` chain per element
/// over ascending k — the same contract as the packed path, so the two
/// paths are bit-identical and the threshold is purely a speed knob.
#[inline(always)]
fn small_body(
    shape: SmallShape,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    match shape {
        SmallShape::Nn => {
            // i-k-j: the inner loop streams contiguous B and C rows.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cj, &bkj) in c_row.iter_mut().zip(b_row) {
                        *cj = aik.mul_add(bkj, *cj);
                    }
                }
            }
        }
        SmallShape::Tn => {
            // Rank-1 updates over ascending k; contiguous A and B rows.
            for kk in 0..k {
                let a_row = &a[kk * m..(kk + 1) * m];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (i, &aki) in a_row.iter().enumerate() {
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cj, &bkj) in c_row.iter_mut().zip(b_row) {
                        *cj = aki.mul_add(bkj, *cj);
                    }
                }
            }
        }
        SmallShape::Nt => {
            // Plain dot products; both operand rows contiguous.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, cij) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = *cij;
                    for (&ak, &bk) in a_row.iter().zip(b_row) {
                        acc = ak.mul_add(bk, acc);
                    }
                    *cij = acc;
                }
            }
        }
    }
}

/// `small_body` compiled with FMA enabled (hardware `vfmadd`,
/// bit-identical to the fallback).
///
/// # Safety
///
/// Caller must have verified FMA support via [`fma_kernel_available`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn small_fma(
    shape: SmallShape,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    small_body(shape, m, n, k, a, b, c);
}

/// Serial, unpacked product for sub-threshold shapes; accumulates into
/// `c` (callers pass a zeroed buffer).
pub fn gemm_small(
    shape: SmallShape,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if fma_kernel_available() {
        // SAFETY: runtime-detected.
        unsafe { small_fma(shape, m, n, k, a, b, c) };
        return;
    }
    small_body(shape, m, n, k, a, b, c);
}

/// Panel-packed GEMM: `C += op(A)·op(B)` where the operands are
/// presented as element closures `fill_a(i, kk)` (an `m×k` view) and
/// `fill_b(kk, j)` (a `k×n` view). `c` is row-major `m×n` and is
/// normally zero-initialized by the caller.
///
/// Row blocks fan out over rayon when the product is large enough to
/// amortize the dispatch; the result is bit-identical either way.
pub fn gemm_packed<FA, FB>(m: usize, n: usize, k: usize, fill_a: FA, fill_b: FB, c: &mut [f64])
where
    FA: Fn(usize, usize) -> f64 + Sync,
    FB: Fn(usize, usize) -> f64 + Sync,
{
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let fma = fma_kernel_available();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let parallel = threads > 1 && m > MC && m.saturating_mul(n).saturating_mul(k) >= PAR_MIN_MNK;

    let mut b_panel = vec![0.0; KC.min(k) * NC.min(n.next_multiple_of(NR))];
    let mut j0 = 0;
    while j0 < n {
        let jeff = NC.min(n - j0);
        let jsl = jeff.div_ceil(NR);
        let mut k0 = 0;
        while k0 < k {
            let keff = KC.min(k - k0);
            // Pack B̃: NR-column slivers, k-major within a sliver, tail
            // lanes zero-filled so the microkernel is branch-free.
            for t in 0..jsl {
                let sliver = &mut b_panel[t * keff * NR..(t + 1) * keff * NR];
                for kk in 0..keff {
                    for cc in 0..NR {
                        let j = j0 + t * NR + cc;
                        sliver[kk * NR + cc] = if j < j0 + jeff {
                            fill_b(k0 + kk, j)
                        } else {
                            0.0
                        };
                    }
                }
            }
            let b_ref = &b_panel;
            let fill_a = &fill_a;
            let process = |blk: usize, c_chunk: &mut [f64]| {
                let i0 = blk * MC;
                let ieff = MC.min(m - i0);
                let isl = ieff.div_ceil(MR);
                A_PANEL.with(|cell| {
                    let mut ap = cell.borrow_mut();
                    ap.clear();
                    ap.resize(isl * MR * keff, 0.0);
                    // Pack Ã: MR-row slivers, k-major, tail rows zeroed.
                    for s in 0..isl {
                        let sliver = &mut ap[s * keff * MR..(s + 1) * keff * MR];
                        for kk in 0..keff {
                            for r in 0..MR {
                                let i = i0 + s * MR + r;
                                sliver[kk * MR + r] = if i < i0 + ieff {
                                    fill_a(i, k0 + kk)
                                } else {
                                    0.0
                                };
                            }
                        }
                    }
                    for t in 0..jsl {
                        let nr_eff = NR.min(jeff - t * NR);
                        let b_sliver = &b_ref[t * keff * NR..(t + 1) * keff * NR];
                        for s in 0..isl {
                            let mr_eff = MR.min(ieff - s * MR);
                            let a_sliver = &ap[s * keff * MR..(s + 1) * keff * MR];
                            let c_off = (s * MR) * n + j0 + t * NR;
                            micro_dispatch(
                                fma,
                                keff,
                                a_sliver,
                                b_sliver,
                                &mut c_chunk[c_off..],
                                n,
                                mr_eff,
                                nr_eff,
                            );
                        }
                    }
                });
            };
            if parallel {
                c.par_chunks_mut(MC * n)
                    .enumerate()
                    .for_each(|(blk, chunk)| process(blk, chunk));
            } else {
                for (blk, chunk) in c.chunks_mut(MC * n).enumerate() {
                    process(blk, chunk);
                }
            }
            k0 += keff;
        }
        j0 += jeff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: usize, k: usize, seed: f64) -> Vec<f64> {
        (0..m * k)
            .map(|i| ((i * 31) as f64 * 0.01 + seed).sin())
            .collect()
    }

    /// Reference: per-element ascending-k `mul_add` fold — the contract.
    fn fma_dot(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn packed_matches_contract_bitwise_across_panel_boundaries() {
        // Sizes straddle MR/NR/KC/MC/NC edges, including k > KC so the
        // C-tile load/store chain across panels is exercised.
        for (m, n, k) in [
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 3, KC + 7),
            (MC + 5, NR * 3 + 2, KC * 2 + 3),
            (2 * MC, NC + 9, 40),
        ] {
            let a = dense(m, k, 0.3);
            let b = dense(k, n, 0.7);
            let mut c = vec![0.0; m * n];
            gemm_packed(
                m,
                n,
                k,
                |i, kk| a[i * k + kk],
                |kk, j| b[kk * n + j],
                &mut c,
            );
            let expect = fma_dot(m, n, k, &a, &b);
            assert_eq!(c, expect, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn small_path_is_bit_identical_to_packed() {
        let (m, n, k) = (7, 9, 11);
        let a = dense(m, k, 0.1);
        let b = dense(k, n, 0.9);
        let mut small = vec![0.0; m * n];
        gemm_small(SmallShape::Nn, m, n, k, &a, &b, &mut small);
        let mut packed = vec![0.0; m * n];
        gemm_packed(
            m,
            n,
            k,
            |i, kk| a[i * k + kk],
            |kk, j| b[kk * n + j],
            &mut packed,
        );
        assert_eq!(small, packed);
    }

    #[test]
    fn small_transposed_shapes_match_contract() {
        let (m, n, k) = (6, 5, 8);
        // Tn: a is k×m.
        let at = dense(k, m, 0.2);
        let b = dense(k, n, 0.4);
        let mut c = vec![0.0; m * n];
        gemm_small(SmallShape::Tn, m, n, k, &at, &b, &mut c);
        let mut a_mat = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                a_mat[i * k + kk] = at[kk * m + i];
            }
        }
        assert_eq!(c, fma_dot(m, n, k, &a_mat, &b));
        // Nt: b is n×k.
        let a = dense(m, k, 0.5);
        let bt = dense(n, k, 0.6);
        let mut c2 = vec![0.0; m * n];
        gemm_small(SmallShape::Nt, m, n, k, &a, &bt, &mut c2);
        let mut b_mat = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                b_mat[kk * n + j] = bt[j * k + kk];
            }
        }
        assert_eq!(c2, fma_dot(m, n, k, &a, &b_mat));
    }

    #[test]
    fn scratch_is_bounded_by_blocking_not_operands() {
        let huge = packing_scratch_words(10_000, 1_000_000, 5_000);
        assert!(huge <= KC * NC + MC * KC);
        // And independent of n once past the panel cap.
        assert_eq!(
            packing_scratch_words(256, 10_000, 512),
            packing_scratch_words(256, 1_000_000, 512)
        );
        assert_eq!(packing_scratch_words(4, 4, 4), 0);
    }

    #[test]
    fn small_threshold_pins_tiny_products() {
        assert!(is_small_gemm(4, 4, 4));
        assert!(is_small_gemm(32, 32, 32));
        assert!(!is_small_gemm(64, 64, 64));
        assert!(!is_small_gemm(usize::MAX, usize::MAX, 2));
    }
}
