//! Non-linearities and the softmax cross-entropy head.
//!
//! The forward phase of the paper is "affine transform `Y_i = W_i·X_i`
//! followed by nonlinear transform `X_{i+1} = f(Y_i)`"; these are the
//! `f`s. All operate on the `d × B` column-per-sample layout.

use crate::matrix::Matrix;

/// Element-wise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Backward ReLU: `dx = dy ⊙ [x > 0]` where `x` is the pre-activation.
pub fn relu_backward(pre: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(pre.shape(), dy.shape(), "relu backward shape mismatch");
    let mut dx = dy.clone();
    for (g, &x) in dx.as_mut_slice().iter_mut().zip(pre.as_slice()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    dx
}

/// Element-wise ReLU on an NCHW tensor.
pub fn relu_tensor(x: &crate::conv::Tensor4) -> crate::conv::Tensor4 {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Backward ReLU on an NCHW tensor: `dx = dy ⊙ [pre > 0]`.
pub fn relu_backward_tensor(
    pre: &crate::conv::Tensor4,
    dy: &crate::conv::Tensor4,
) -> crate::conv::Tensor4 {
    assert_eq!(pre.len(), dy.len(), "relu tensor backward shape mismatch");
    let mut dx = dy.clone();
    for (g, &x) in dx.as_mut_slice().iter_mut().zip(pre.as_slice()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    dx
}

/// Element-wise tanh.
pub fn tanh(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        *v = v.tanh();
    }
    out
}

/// Backward tanh given the *activated* output `y = tanh(pre)`:
/// `dx = dy ⊙ (1 − y²)`.
pub fn tanh_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "tanh backward shape mismatch");
    let mut dx = dy.clone();
    for (g, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
        *g *= 1.0 - yv * yv;
    }
    dx
}

/// Softmax cross-entropy over columns (one sample per column).
/// `labels[b]` is the true class of sample `b`. Returns
/// `(mean loss, gradient w.r.t. logits)` where the gradient is
/// `(softmax − onehot)/B` — the `1/B` matching the paper's Eq. 1
/// mini-batch averaging.
pub fn softmax_xent(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    let (classes, b) = logits.shape();
    assert_eq!(labels.len(), b, "one label per column");
    let mut grad = Matrix::zeros(classes, b);
    let mut loss = 0.0;
    for col in 0..b {
        let mut maxv = f64::NEG_INFINITY;
        for row in 0..classes {
            maxv = maxv.max(logits.get(row, col));
        }
        let mut denom = 0.0;
        for row in 0..classes {
            denom += (logits.get(row, col) - maxv).exp();
        }
        let label = labels[col];
        assert!(label < classes, "label {label} out of {classes} classes");
        let logp = logits.get(label, col) - maxv - denom.ln();
        loss -= logp;
        for row in 0..classes {
            let p = (logits.get(row, col) - maxv).exp() / denom;
            let onehot = if row == label { 1.0 } else { 0.0 };
            grad.set(row, col, (p - onehot) / b as f64);
        }
    }
    (loss / b as f64, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let pre = Matrix::from_vec(1, 3, vec![-1.0, 1.0, 0.0]);
        let dy = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        assert_eq!(relu_backward(&pre, &dy).as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn relu_tensor_matches_matrix_semantics() {
        use crate::conv::Tensor4;
        let x = Tensor4::from_fn(1, 2, 2, 2, |_, c, h, w| {
            (c as f64 - 0.5) * (h as f64 + w as f64 - 1.0)
        });
        let y = relu_tensor(&x);
        for (a, &b) in y.as_slice().iter().zip(x.as_slice()) {
            assert_eq!(*a, b.max(0.0));
        }
        let dy = Tensor4::from_fn(1, 2, 2, 2, |_, _, _, _| 1.0);
        let dx = relu_backward_tensor(&x, &dy);
        for (g, &b) in dx.as_slice().iter().zip(x.as_slice()) {
            assert_eq!(*g, if b > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn softmax_uniform_logits_give_log_classes() {
        let logits = Matrix::zeros(4, 2);
        let (loss, grad) = softmax_xent(&logits, &[0, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-12);
        // Gradient sums to zero per column.
        for col in 0..2 {
            let s: f64 = (0..4).map(|r| grad.get(r, col)).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let logits = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f64 * 0.9).sin());
        let labels = [2, 0];
        let (base, grad) = softmax_xent(&logits, &labels);
        let eps = 1e-7;
        for i in 0..3 {
            for j in 0..2 {
                let mut lp = logits.clone();
                lp.set(i, j, logits.get(i, j) + eps);
                let (lplus, _) = softmax_xent(&lp, &labels);
                let num = (lplus - base) / eps;
                assert!(
                    (num - grad.get(i, j)).abs() < 1e-5,
                    "({i},{j}) fd={num} g={}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn tanh_backward_matches_finite_difference() {
        let pre = Matrix::from_fn(2, 2, |i, j| (i as f64 - j as f64) * 0.7);
        let y = tanh(&pre);
        let dy = Matrix::from_fn(2, 2, |_, _| 1.0);
        let dx = tanh_backward(&y, &dy);
        let eps = 1e-7;
        for i in 0..2 {
            for j in 0..2 {
                let mut pp = pre.clone();
                pp.set(i, j, pre.get(i, j) + eps);
                let num = (tanh(&pp).as_slice().iter().sum::<f64>()
                    - y.as_slice().iter().sum::<f64>())
                    / eps;
                assert!((num - dx.get(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_fn(3, 1, |i, _| i as f64);
        let b = Matrix::from_fn(3, 1, |i, _| i as f64 + 1000.0);
        let (la, ga) = softmax_xent(&a, &[1]);
        let (lb, gb) = softmax_xent(&b, &[1]);
        assert!((la - lb).abs() < 1e-9);
        assert!(ga.approx_eq(&gb, 1e-9));
    }
}
