//! Row-major dense matrix.

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The transpose (materialized copy).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Copies rows `r0..r1` into a new `(r1-r0) × cols` matrix.
    pub fn row_block(&self, r0: usize, r1: usize) -> Matrix {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row block {r0}..{r1} out of {}",
            self.rows
        );
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Copies columns `c0..c1` into a new `rows × (c1-c0)` matrix.
    pub fn col_block(&self, c0: usize, c1: usize) -> Matrix {
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "col block {c0}..{c1} out of {}",
            self.cols
        );
        let w = c1 - c0;
        let mut data = Vec::with_capacity(self.rows * w);
        for i in 0..self.rows {
            data.extend_from_slice(&self.row(i)[c0..c1]);
        }
        Matrix {
            rows: self.rows,
            cols: w,
            data,
        }
    }

    /// Writes `block` into rows `r0..` of `self`.
    pub fn set_row_block(&mut self, r0: usize, block: &Matrix) {
        assert_eq!(block.cols, self.cols, "column count mismatch");
        assert!(r0 + block.rows <= self.rows, "row block overflows target");
        self.data[r0 * self.cols..(r0 + block.rows) * self.cols].copy_from_slice(&block.data);
    }

    /// Writes `block` into columns `c0..` of `self`.
    pub fn set_col_block(&mut self, c0: usize, block: &Matrix) {
        assert_eq!(block.rows, self.rows, "row count mismatch");
        assert!(c0 + block.cols <= self.cols, "col block overflows target");
        for i in 0..self.rows {
            let dst = &mut self.data[i * self.cols + c0..i * self.cols + c0 + block.cols];
            dst.copy_from_slice(block.row(i));
        }
    }

    /// Concatenates matrices vertically (equal column counts).
    pub fn vcat(blocks: &[Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "vcat of zero blocks");
        let cols = blocks[0].cols;
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r = 0;
        for b in blocks {
            out.set_row_block(r, b);
            r += b.rows;
        }
        out
    }

    /// Concatenates matrices horizontally (equal row counts).
    pub fn hcat(blocks: &[Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "hcat of zero blocks");
        let rows = blocks[0].rows;
        let cols = blocks.iter().map(|b| b.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c = 0;
        for b in blocks {
            out.set_col_block(c, b);
            c += b.cols;
        }
        out
    }

    /// Largest absolute element-wise difference from `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether all elements are within `tol` of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            let ell = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_and_col_blocks() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let rb = m.row_block(1, 3);
        assert_eq!(rb.shape(), (2, 4));
        assert_eq!(rb.get(0, 0), 4.0);
        let cb = m.col_block(2, 4);
        assert_eq!(cb.shape(), (4, 2));
        assert_eq!(cb.get(0, 0), 2.0);
        assert_eq!(cb.get(3, 1), 15.0);
    }

    #[test]
    fn cat_inverts_blocking() {
        let m = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64);
        let v = Matrix::vcat(&[m.row_block(0, 2), m.row_block(2, 4)]);
        assert_eq!(v, m);
        let h = Matrix::hcat(&[m.col_block(0, 1), m.col_block(1, 4), m.col_block(4, 6)]);
        assert_eq!(h, m);
    }

    #[test]
    fn set_blocks_write_back() {
        let mut m = Matrix::zeros(3, 3);
        m.set_row_block(1, &Matrix::from_fn(1, 3, |_, j| j as f64 + 1.0));
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        m.set_col_block(2, &Matrix::from_fn(3, 1, |i, _| i as f64));
        assert_eq!(m.get(2, 2), 2.0);
    }

    #[test]
    fn eye_is_identity_under_get() {
        let m = Matrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
