//! Max pooling (forward + backward), as used between AlexNet stages.

use crate::conv::Tensor4;

/// Max-pool hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dParams {
    /// Window size (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
}

impl Pool2dParams {
    /// Output spatial size: `⌊(x − k)/stride⌋ + 1`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.k) / self.stride + 1,
            (w - self.k) / self.stride + 1,
        )
    }
}

/// Forward max pooling; also returns the argmax index per output cell
/// (flattened input `h*W + w`) for the backward pass.
pub fn maxpool2d(input: &Tensor4, p: &Pool2dParams) -> (Tensor4, Vec<usize>) {
    let (oh, ow) = p.out_hw(input.h, input.w);
    let mut out = Tensor4::zeros(input.n, input.c, oh, ow);
    let mut argmax = vec![0usize; input.n * input.c * oh * ow];
    let mut ai = 0;
    for n in 0..input.n {
        for c in 0..input.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..p.k {
                        for kx in 0..p.k {
                            let iy = oy * p.stride + ky;
                            let ix = ox * p.stride + kx;
                            let v = input.get(n, c, iy, ix);
                            if v > best {
                                best = v;
                                best_idx = iy * input.w + ix;
                            }
                        }
                    }
                    out.set(n, c, oy, ox, best);
                    argmax[ai] = best_idx;
                    ai += 1;
                }
            }
        }
    }
    (out, argmax)
}

/// Backward max pooling: routes each output gradient to its argmax
/// input position.
pub fn maxpool2d_backward(dy: &Tensor4, argmax: &[usize], in_h: usize, in_w: usize) -> Tensor4 {
    let mut dx = Tensor4::zeros(dy.n, dy.c, in_h, in_w);
    let mut ai = 0;
    for n in 0..dy.n {
        for c in 0..dy.c {
            for oy in 0..dy.h {
                for ox in 0..dy.w {
                    let flat = argmax[ai];
                    ai += 1;
                    dx.add_at(n, c, flat / in_w, flat % in_w, dy.get(n, c, oy, ox));
                }
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_pool_shapes() {
        let p = Pool2dParams { k: 3, stride: 2 };
        assert_eq!(p.out_hw(55, 55), (27, 27));
        assert_eq!(p.out_hw(27, 27), (13, 13));
        assert_eq!(p.out_hw(13, 13), (6, 6));
    }

    #[test]
    fn picks_window_maximum() {
        let x = Tensor4::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f64);
        let p = Pool2dParams { k: 2, stride: 2 };
        let (y, _) = maxpool2d(&x, &p);
        assert_eq!(y.get(0, 0, 0, 0), 5.0);
        assert_eq!(y.get(0, 0, 1, 1), 15.0);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Tensor4::from_fn(
            1,
            1,
            2,
            2,
            |_, _, h, w| if (h, w) == (1, 0) { 9.0 } else { 0.0 },
        );
        let p = Pool2dParams { k: 2, stride: 2 };
        let (_, argmax) = maxpool2d(&x, &p);
        let dy = Tensor4::from_fn(1, 1, 1, 1, |_, _, _, _| 3.0);
        let dx = maxpool2d_backward(&dy, &argmax, 2, 2);
        assert_eq!(dx.get(0, 0, 1, 0), 3.0);
        assert_eq!(dx.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let x = Tensor4::from_fn(1, 2, 4, 4, |_, c, h, w| {
            ((c * 16 + h * 4 + w) as f64 * 0.37).sin()
        });
        let p = Pool2dParams { k: 2, stride: 2 };
        let (y, argmax) = maxpool2d(&x, &p);
        let dy = Tensor4::from_fn(1, 2, 2, 2, |_, _, _, _| 1.0);
        let dx = maxpool2d_backward(&dy, &argmax, 4, 4);
        let loss = |x: &Tensor4| maxpool2d(x, &p).0.as_slice().iter().sum::<f64>();
        let base = loss(&x);
        let _ = y;
        let eps = 1e-7;
        for &(c, h, w) in &[(0, 0, 0), (1, 3, 3), (0, 2, 1)] {
            let mut xp = x.clone();
            xp.set(0, c, h, w, x.get(0, c, h, w) + eps);
            let num = (loss(&xp) - base) / eps;
            assert!((num - dx.get(0, c, h, w)).abs() < 1e-5, "({c},{h},{w})");
        }
    }
}
