//! # tensor — dense linear-algebra and convolution substrate
//!
//! The paper views DNN training as three matrix products per layer
//! (`Y = W·X`, `∆W = ∆Y·Xᵀ`, `∆X = Wᵀ·∆Y`) plus convolutions that can
//! be lowered to matrix products via im2col. This crate provides those
//! kernels — a row-major [`Matrix`] driven by a panel-packed,
//! cache-blocked GEMM with a register-tiled microkernel ([`gemm`]), an
//! NCHW [`Tensor4`] with direct and implicit-GEMM convolution, pooling,
//! and activations — so the distributed algorithms in `distmm` and the
//! trainer in `integrated` operate on real numbers and can be verified
//! against serial references.
//!
//! Everything is `f64`, and every kernel follows one deterministic
//! accumulation order (ascending-k fused multiply-add; see [`gemm`]):
//! results are bit-reproducible run-to-run and across the scalar/SIMD
//! dispatch, which is what lets [`abft`] repair corrupted elements
//! bit-exactly.

// Index-based loops are the clearest way to write rank/block index
// arithmetic; the clippy suggestions (iterators, is_multiple_of) obscure
// the correspondence with the paper's formulas.
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]
pub mod abft;
pub mod activation;
pub mod conv;
pub mod fastdiv;
pub mod gemm;
pub mod init;
pub mod lrn;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod pool;

pub use conv::{Conv2dParams, Tensor4};
pub use matrix::Matrix;
