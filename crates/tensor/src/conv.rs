//! NCHW tensors and 2-D convolution: direct, im2col-lowered, and
//! implicit-GEMM.
//!
//! The paper treats convolutions as matrix multiplications "for
//! simplicity and connection to high performance computing literature"
//! (its footnote 1); im2col is the lowering that makes this literal.
//! The executed kernel here is [`conv2d`], an *implicit*-GEMM: the
//! panel-packed GEMM core ([`crate::gemm`]) reads the column matrix
//! through [`Im2colMap`] — a fused index mapping
//! `(k, m) → ((ic, ky, kx), (n, oy, ox))` built on strength-reduced
//! div/mod ([`crate::fastdiv`]) — so receptive-field patches are packed
//! straight out of the NCHW input and **no `(in_c·kh·kw) × (n·oh·ow)`
//! column matrix is ever materialized** (see [`conv_scratch_words`]).
//! The backward pass gets the adjoint treatment: `∆W` contracts the
//! output gradient against implicit im2col panels, and `∆X` runs a
//! column-blocked `Wᵀ·∆Y` GEMM fused with col2im scatter-accumulation.
//!
//! [`conv2d_direct`] remains the independent reference the GEMM paths
//! cross-check against (and the kernel `distmm::domain` historically
//! ran on sub-strips); [`conv2d_im2col`] keeps the materialized
//! lowering for verification, and [`conv2d_im2col_ref`] freezes the
//! pre-packing executed path (materialized im2col + the frozen blocked
//! matmul) as the benchmark baseline.

use crate::fastdiv::FastDivmod;
use crate::gemm;
use crate::matmul::{matmul, matmul_at_b, matmul_ref};
use crate::matrix::Matrix;

/// A dense NCHW tensor: `n` samples × `c` channels × `h` × `w`, with
/// width running fastest in memory — the layout the paper's Fig. 3
/// discusses (and why domain decomposition slices along height).
#[derive(Clone, PartialEq, Debug)]
pub struct Tensor4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// An all-zeros tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Builds a tensor element-wise.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(n * c * h * w);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        data.push(f(ni, ci, hi, wi));
                    }
                }
            }
        }
        Tensor4 { n, c, h, w, data }
    }

    #[inline]
    fn idx(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f64 {
        self.data[self.idx(n, c, h, w)]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f64) {
        let i = self.idx(n, c, h, w);
        self.data[i] = v;
    }

    /// Adds `v` at an element.
    #[inline]
    pub fn add_at(&mut self, n: usize, c: usize, h: usize, w: usize, v: f64) {
        let i = self.idx(n, c, h, w);
        self.data[i] += v;
    }

    /// Raw buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies rows `h0..h1` (all samples, channels, widths) into a new
    /// tensor — the strip a domain-parallel rank owns.
    pub fn row_strip(&self, h0: usize, h1: usize) -> Tensor4 {
        assert!(
            h0 <= h1 && h1 <= self.h,
            "row strip {h0}..{h1} out of {}",
            self.h
        );
        Tensor4::from_fn(self.n, self.c, h1 - h0, self.w, |n, c, h, w| {
            self.get(n, c, h0 + h, w)
        })
    }

    /// Writes `strip` back into rows `h0..`.
    pub fn set_row_strip(&mut self, h0: usize, strip: &Tensor4) {
        assert_eq!((strip.n, strip.c, strip.w), (self.n, self.c, self.w));
        assert!(h0 + strip.h <= self.h, "strip overflows tensor height");
        for n in 0..strip.n {
            for c in 0..strip.c {
                for h in 0..strip.h {
                    for w in 0..strip.w {
                        self.set(n, c, h0 + h, w, strip.get(n, c, h, w));
                    }
                }
            }
        }
    }

    /// Flattens into a matrix with one *column* per sample (the `d × B`
    /// layout of the paper's activation matrices `X_i`).
    pub fn to_columns(&self) -> Matrix {
        let d = self.c * self.h * self.w;
        Matrix::from_fn(d, self.n, |row, col| self.data[col * d + row])
    }

    /// Inverse of [`Tensor4::to_columns`].
    pub fn from_columns(m: &Matrix, c: usize, h: usize, w: usize) -> Tensor4 {
        assert_eq!(m.rows(), c * h * w, "column layout mismatch");
        let n = m.cols();
        let d = c * h * w;
        let mut t = Tensor4::zeros(n, c, h, w);
        for col in 0..n {
            for row in 0..d {
                t.data[col * d + row] = m.get(row, col);
            }
        }
        t
    }

    /// Largest absolute element-wise difference.
    pub fn max_abs_diff(&self, other: &Tensor4) -> f64 {
        assert_eq!(
            (self.n, self.c, self.h, self.w),
            (other.n, other.c, other.h, other.w),
            "tensor shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether all elements are within `tol`.
    pub fn approx_eq(&self, other: &Tensor4, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

/// Convolution hyper-parameters. Weights are stored as a
/// `out_c × (in_c·kh·kw)` [`Matrix`], which is exactly the `W_i` of the
/// paper's Eq. 2: `|W_i| = (kh·kw·X_C)·Y_C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input channels `X_C`.
    pub in_c: usize,
    /// Output channels `Y_C` (number of filters).
    pub out_c: usize,
    /// Kernel height `k_h`.
    pub kh: usize,
    /// Kernel width `k_w`.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dParams {
    /// Output spatial size for an `h × w` input:
    /// `⌊(x + 2·pad − k)/stride⌋ + 1`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kh) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kw) / self.stride + 1;
        (oh, ow)
    }

    /// Number of weights, `(kh·kw·in_c)·out_c` (Eq. 2).
    pub fn weight_count(&self) -> usize {
        self.kh * self.kw * self.in_c * self.out_c
    }

    /// The im2col patch length `in_c·kh·kw`.
    pub fn patch_len(&self) -> usize {
        self.in_c * self.kh * self.kw
    }
}

/// Direct convolution: `out[n][oc][oh][ow] = Σ w[oc][ic,kh,kw] · in[…]`.
pub fn conv2d_direct(input: &Tensor4, weights: &Matrix, p: &Conv2dParams) -> Tensor4 {
    assert_eq!(input.c, p.in_c, "input channel mismatch");
    assert_eq!(weights.rows(), p.out_c, "weight rows must be out_c");
    assert_eq!(
        weights.cols(),
        p.patch_len(),
        "weight cols must be in_c*kh*kw"
    );
    let (oh, ow) = p.out_hw(input.h, input.w);
    let mut out = Tensor4::zeros(input.n, p.out_c, oh, ow);
    for n in 0..input.n {
        for oc in 0..p.out_c {
            let wrow = weights.row(oc);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ic in 0..p.in_c {
                        for ky in 0..p.kh {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            if iy < 0 || iy >= input.h as isize {
                                continue;
                            }
                            for kx in 0..p.kw {
                                let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                if ix < 0 || ix >= input.w as isize {
                                    continue;
                                }
                                let widx = (ic * p.kh + ky) * p.kw + kx;
                                acc += wrow[widx] * input.get(n, ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(n, oc, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// im2col: unrolls all receptive fields into a
/// `(in_c·kh·kw) × (n·oh·ow)` matrix so convolution becomes `W · cols`.
pub fn im2col(input: &Tensor4, p: &Conv2dParams) -> Matrix {
    let (oh, ow) = p.out_hw(input.h, input.w);
    let cols = input.n * oh * ow;
    let mut m = Matrix::zeros(p.patch_len(), cols);
    for n in 0..input.n {
        for oy in 0..oh {
            for ox in 0..ow {
                let col = (n * oh + oy) * ow + ox;
                for ic in 0..p.in_c {
                    for ky in 0..p.kh {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= input.h as isize {
                            continue;
                        }
                        for kx in 0..p.kw {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= input.w as isize {
                                continue;
                            }
                            let row = (ic * p.kh + ky) * p.kw + kx;
                            m.set(row, col, input.get(n, ic, iy as usize, ix as usize));
                        }
                    }
                }
            }
        }
    }
    m
}

/// col2im: scatter-adds a `(in_c·kh·kw) × (n·oh·ow)` gradient matrix
/// back onto input coordinates (the adjoint of [`im2col`]).
pub fn col2im(cols: &Matrix, n: usize, h: usize, w: usize, p: &Conv2dParams) -> Tensor4 {
    let (oh, ow) = p.out_hw(h, w);
    assert_eq!(cols.rows(), p.patch_len(), "col2im row mismatch");
    assert_eq!(cols.cols(), n * oh * ow, "col2im col mismatch");
    let mut out = Tensor4::zeros(n, p.in_c, h, w);
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let col = (ni * oh + oy) * ow + ox;
                for ic in 0..p.in_c {
                    for ky in 0..p.kh {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..p.kw {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let row = (ic * p.kh + ky) * p.kw + kx;
                            out.add_at(ni, ic, iy as usize, ix as usize, cols.get(row, col));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Convolution via im2col + matmul. Must agree with
/// [`conv2d_direct`] to rounding error.
pub fn conv2d_im2col(input: &Tensor4, weights: &Matrix, p: &Conv2dParams) -> Tensor4 {
    let (oh, ow) = p.out_hw(input.h, input.w);
    let cols = im2col(input, p);
    let y = matmul(weights, &cols); // out_c × (n·oh·ow)
    let mut out = Tensor4::zeros(input.n, p.out_c, oh, ow);
    for oc in 0..p.out_c {
        let yrow = y.row(oc);
        for n in 0..input.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    out.set(n, oc, oy, ox, yrow[(n * oh + oy) * ow + ox]);
                }
            }
        }
    }
    out
}

/// The pre-packing executed convolution (materialized im2col + the
/// frozen blocked [`matmul_ref`]), kept as the measured baseline for
/// kernel speedups. Not used by any compute path; benchmarks only.
pub fn conv2d_im2col_ref(input: &Tensor4, weights: &Matrix, p: &Conv2dParams) -> Tensor4 {
    let (oh, ow) = p.out_hw(input.h, input.w);
    let cols = im2col(input, p);
    let y = matmul_ref(weights, &cols);
    let mut out = Tensor4::zeros(input.n, p.out_c, oh, ow);
    for oc in 0..p.out_c {
        let yrow = y.row(oc);
        for n in 0..input.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    out.set(n, oc, oy, ox, yrow[(n * oh + oy) * ow + ox]);
                }
            }
        }
    }
    out
}

/// Fused im2col index mapping for implicit-GEMM convolution.
///
/// The virtual column matrix element at `(kidx, col)` — with
/// `kidx = (ic·kh + ky)·kw + kx` matching the weight-column layout and
/// `col = (n·oh + oy)·ow + ox` matching the output layout — is
/// decomposed on the fly with precomputed magic-number div/mod and
/// gathered from the NCHW buffer (out-of-bounds taps read the implicit
/// zero padding). Four `FastDivmod`s per element on the packing path,
/// no hardware divides, no materialized matrix.
pub struct Im2colMap {
    ohw: FastDivmod,
    ow: FastDivmod,
    khw: FastDivmod,
    kw: FastDivmod,
    stride: usize,
    pad: usize,
    in_c: usize,
    h: usize,
    w: usize,
}

impl Im2colMap {
    /// Builds the mapping for an `h × w` input under `p`. All spatial
    /// extents must be nonzero (callers early-out on empty shapes).
    pub fn new(p: &Conv2dParams, h: usize, w: usize) -> Self {
        let (oh, ow) = p.out_hw(h, w);
        Im2colMap {
            ohw: FastDivmod::new((oh * ow) as u32),
            ow: FastDivmod::new(ow as u32),
            khw: FastDivmod::new((p.kh * p.kw) as u32),
            kw: FastDivmod::new(p.kw as u32),
            stride: p.stride,
            pad: p.pad,
            in_c: p.in_c,
            h,
            w,
        }
    }

    /// Flat NCHW index of the input element behind column-matrix
    /// coordinate `(kidx, col)`, or `None` for a padding tap.
    #[inline]
    pub fn input_index(&self, kidx: u32, col: u32) -> Option<usize> {
        let (n, rem) = self.ohw.div_mod(col);
        let (oy, ox) = self.ow.div_mod(rem);
        let (ic, krem) = self.khw.div_mod(kidx);
        let (ky, kx) = self.kw.div_mod(krem);
        let iy = (oy as usize * self.stride + ky as usize) as isize - self.pad as isize;
        let ix = (ox as usize * self.stride + kx as usize) as isize - self.pad as isize;
        if iy < 0 || iy >= self.h as isize || ix < 0 || ix >= self.w as isize {
            return None;
        }
        Some(((n as usize * self.in_c + ic as usize) * self.h + iy as usize) * self.w + ix as usize)
    }

    /// The column-matrix element at `(kidx, col)` gathered from `data`
    /// (padding taps read as `0.0`).
    #[inline]
    pub fn gather(&self, data: &[f64], kidx: u32, col: u32) -> f64 {
        match self.input_index(kidx, col) {
            Some(i) => data[i],
            None => 0.0,
        }
    }
}

/// Transient words the implicit-GEMM forward allocates beyond its
/// output: the `out_c × (n·oh·ow)` GEMM staging buffer plus the
/// cache-blocking packing scratch — bounded by the output size and the
/// blocking constants, never by the `(in_c·kh·kw) × (n·oh·ow)` column
/// matrix that [`im2col`] would materialize.
pub fn conv_scratch_words(batch: usize, h: usize, w: usize, p: &Conv2dParams) -> usize {
    let (oh, ow) = p.out_hw(h, w);
    let m = batch * oh * ow;
    p.out_c * m + gemm::packing_scratch_words(p.out_c, m, p.patch_len())
}

/// Implicit-GEMM convolution: `Y = W · im2col(X)` where the column
/// matrix is read through [`Im2colMap`] during panel packing — the
/// executed forward kernel. Agrees with [`conv2d_direct`] to rounding
/// error and is bit-reproducible run-to-run ([`crate::gemm`]'s
/// determinism contract).
pub fn conv2d(input: &Tensor4, weights: &Matrix, p: &Conv2dParams) -> Tensor4 {
    assert_eq!(input.c, p.in_c, "input channel mismatch");
    assert_eq!(weights.rows(), p.out_c, "weight rows must be out_c");
    assert_eq!(
        weights.cols(),
        p.patch_len(),
        "weight cols must be in_c*kh*kw"
    );
    let (oh, ow) = p.out_hw(input.h, input.w);
    let m = input.n * oh * ow;
    let k = p.patch_len();
    let mut out = Tensor4::zeros(input.n, p.out_c, oh, ow);
    if m == 0 || k == 0 || p.out_c == 0 {
        return out;
    }
    assert!(m < 1 << 31 && k < 1 << 31, "conv extents overflow u32");
    let map = Im2colMap::new(p, input.h, input.w);
    let (wv, xv) = (weights.as_slice(), input.as_slice());
    // GEMM lands in W-major staging (out_c × m); the output wants
    // sample-major NCHW, so rows are scattered as contiguous oh·ow runs.
    let mut y = vec![0.0; p.out_c * m];
    gemm::gemm_packed(
        p.out_c,
        m,
        k,
        |i, kk| wv[i * k + kk],
        |kk, j| map.gather(xv, kk as u32, j as u32),
        &mut y,
    );
    let hw = oh * ow;
    let od = out.as_mut_slice();
    for oc in 0..p.out_c {
        for n in 0..input.n {
            od[(n * p.out_c + oc) * hw..][..hw].copy_from_slice(&y[oc * m + n * hw..][..hw]);
        }
    }
    out
}

/// Column block width for the backward `∆X` pass: the `Wᵀ·∆Y` product
/// is computed `COL_BLOCK` columns at a time and immediately
/// scatter-added into `∆X`, so the transient is `patch_len × COL_BLOCK`
/// words instead of the full column-gradient matrix.
const COL_BLOCK: usize = 256;

/// Gathers `dy` into the `out_c × (n·oh·ow)` row-major layout the GEMM
/// contracts over (contiguous `oh·ow` runs per `(oc, n)`).
fn dy_rows(dy: &Tensor4, oc: usize, hw: usize) -> Vec<f64> {
    let m = dy.n * hw;
    let mut dy_m = vec![0.0; oc * m];
    let src = dy.as_slice();
    for o in 0..oc {
        for n in 0..dy.n {
            dy_m[o * m + n * hw..][..hw].copy_from_slice(&src[(n * oc + o) * hw..][..hw]);
        }
    }
    dy_m
}

/// Backward pass of a convolution given the output gradient `dy`
/// (shaped like the forward output). Returns `(dW, dX)`:
/// `dW = ∆Y · im2col(X)ᵀ` and `dX = col2im(Wᵀ · ∆Y)` — the conv
/// instantiation of the paper's §7.2 derivation — both computed
/// implicitly: `dW` packs im2col panels through [`Im2colMap`], and
/// `dX` fuses the col2im scatter with a column-blocked GEMM so neither
/// direction materializes a `patch_len × (n·oh·ow)` matrix.
pub fn conv2d_backward(
    input: &Tensor4,
    weights: &Matrix,
    dy: &Tensor4,
    p: &Conv2dParams,
) -> (Matrix, Tensor4) {
    let (oh, ow) = p.out_hw(input.h, input.w);
    assert_eq!((dy.c, dy.h, dy.w), (p.out_c, oh, ow), "dy shape mismatch");
    let m = input.n * oh * ow;
    let k = p.patch_len();
    let oc = p.out_c;
    let mut dw = Matrix::zeros(oc, k);
    let mut dx = Tensor4::zeros(input.n, p.in_c, input.h, input.w);
    if m == 0 || k == 0 || oc == 0 {
        return (dw, dx);
    }
    assert!(m < 1 << 31 && k < 1 << 31, "conv extents overflow u32");
    let map = Im2colMap::new(p, input.h, input.w);
    let xv = input.as_slice();
    let dy_m = dy_rows(dy, oc, oh * ow);
    // dW = ∆Y · colsᵀ: contract over the n·oh·ow columns, reading the
    // column matrix transposed through the same implicit mapping.
    gemm::gemm_packed(
        oc,
        k,
        m,
        |i, kk| dy_m[i * m + kk],
        |kk, j| map.gather(xv, j as u32, kk as u32),
        dw.as_mut_slice(),
    );
    // dX: per column block, dcols = Wᵀ·∆Y (patch_len × cb) via the
    // packed GEMM, then a serial fused col2im scatter. Blocks ascend
    // and the scatter runs column-outer / k-inner, reproducing the
    // accumulation order of materialized col2im exactly.
    let wv = weights.as_slice();
    let dxs = dx.as_mut_slice();
    let mut dcols = vec![0.0; k * COL_BLOCK.min(m)];
    let mut c0 = 0;
    while c0 < m {
        let cb = COL_BLOCK.min(m - c0);
        let blk = &mut dcols[..k * cb];
        blk.fill(0.0);
        gemm::gemm_packed(
            k,
            cb,
            oc,
            |i, kk| wv[kk * k + i],
            |kk, j| dy_m[kk * m + c0 + j],
            blk,
        );
        for j in 0..cb {
            let col = (c0 + j) as u32;
            for kidx in 0..k {
                if let Some(idx) = map.input_index(kidx as u32, col) {
                    dxs[idx] += blk[kidx * cb + j];
                }
            }
        }
        c0 += cb;
    }
    (dw, dx)
}

/// The materialized-lowering backward (im2col + matmul variants +
/// col2im), kept for cross-checking and as the benchmark baseline for
/// the implicit path. Not used by any compute path.
pub fn conv2d_backward_ref(
    input: &Tensor4,
    weights: &Matrix,
    dy: &Tensor4,
    p: &Conv2dParams,
) -> (Matrix, Tensor4) {
    let (oh, ow) = p.out_hw(input.h, input.w);
    assert_eq!((dy.c, dy.h, dy.w), (p.out_c, oh, ow), "dy shape mismatch");
    let cols = im2col(input, p);
    // Reshape dy into out_c × (n·oh·ow).
    let dy_m = Matrix::from_fn(p.out_c, input.n * oh * ow, |oc, col| {
        let n = col / (oh * ow);
        let rem = col % (oh * ow);
        dy.get(n, oc, rem / ow, rem % ow)
    });
    let dw = crate::matmul::matmul_a_bt(&dy_m, &cols);
    let dcols = matmul_at_b(weights, &dy_m);
    let dx = col2im(&dcols, input.n, input.h, input.w, p);
    (dw, dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_input(n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        Tensor4::from_fn(n, c, h, w, |a, b, y, x| {
            ((a * 7 + b * 5 + y * 3 + x) as f64 * 0.1).sin()
        })
    }

    fn test_weights(p: &Conv2dParams) -> Matrix {
        Matrix::from_fn(p.out_c, p.patch_len(), |i, j| {
            ((i * 13 + j) as f64 * 0.07).cos()
        })
    }

    #[test]
    fn out_shape_formula() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 96,
            kh: 11,
            kw: 11,
            stride: 4,
            pad: 0,
        };
        assert_eq!(p.out_hw(227, 227), (55, 55)); // AlexNet conv1
        let p2 = Conv2dParams {
            in_c: 96,
            out_c: 256,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        assert_eq!(p2.out_hw(27, 27), (27, 27)); // AlexNet conv2 (same-pad)
    }

    #[test]
    fn weight_count_matches_eq2() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 96,
            kh: 11,
            kw: 11,
            stride: 4,
            pad: 0,
        };
        assert_eq!(p.weight_count(), 11 * 11 * 3 * 96);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv with identity channel mixing.
        let p = Conv2dParams {
            in_c: 2,
            out_c: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let w = Matrix::eye(2);
        let x = test_input(1, 2, 4, 4);
        let y = conv2d_direct(&x, &w, &p);
        assert!(y.approx_eq(&x, 1e-15));
    }

    #[test]
    fn im2col_path_matches_direct() {
        for (stride, pad) in [(1, 0), (1, 1), (2, 0), (2, 1)] {
            let p = Conv2dParams {
                in_c: 3,
                out_c: 4,
                kh: 3,
                kw: 3,
                stride,
                pad,
            };
            let x = test_input(2, 3, 7, 6);
            let w = test_weights(&p);
            let direct = conv2d_direct(&x, &w, &p);
            let lowered = conv2d_im2col(&x, &w, &p);
            assert!(
                direct.approx_eq(&lowered, 1e-12),
                "stride={stride} pad={pad}: {}",
                direct.max_abs_diff(&lowered)
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let p = Conv2dParams {
            in_c: 2,
            out_c: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let x = test_input(1, 2, 5, 5);
        let w = test_weights(&p);
        // Loss = sum(conv(x, w)); dy = ones.
        let (oh, ow) = p.out_hw(x.h, x.w);
        let dy = Tensor4::from_fn(1, 3, oh, ow, |_, _, _, _| 1.0);
        let (dw, dx) = conv2d_backward(&x, &w, &dy, &p);
        let loss =
            |w: &Matrix, x: &Tensor4| -> f64 { conv2d_direct(x, w, &p).as_slice().iter().sum() };
        let eps = 1e-6;
        // Check a few weight gradients.
        for &(i, j) in &[(0, 0), (1, 5), (2, 17)] {
            let mut wp = w.clone();
            wp.set(i, j, w.get(i, j) + eps);
            let num = (loss(&wp, &x) - loss(&w, &x)) / eps;
            assert!(
                (num - dw.get(i, j)).abs() < 1e-4,
                "dW[{i}][{j}]: fd={num} analytic={}",
                dw.get(i, j)
            );
        }
        // Check a few input gradients.
        for &(c, h, ww) in &[(0, 0, 0), (1, 2, 3), (0, 4, 4)] {
            let mut xp = x.clone();
            xp.set(0, c, h, ww, x.get(0, c, h, ww) + eps);
            let num = (loss(&w, &xp) - loss(&w, &x)) / eps;
            assert!(
                (num - dx.get(0, c, h, ww)).abs() < 1e-4,
                "dX[{c}][{h}][{ww}]: fd={num} analytic={}",
                dx.get(0, c, h, ww)
            );
        }
    }

    #[test]
    fn implicit_gemm_matches_direct() {
        for (stride, pad) in [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)] {
            let p = Conv2dParams {
                in_c: 3,
                out_c: 4,
                kh: 3,
                kw: 3,
                stride,
                pad,
            };
            let x = test_input(2, 3, 7, 6);
            let w = test_weights(&p);
            let direct = conv2d_direct(&x, &w, &p);
            let implicit = conv2d(&x, &w, &p);
            assert!(
                direct.approx_eq(&implicit, 1e-12),
                "stride={stride} pad={pad}: {}",
                direct.max_abs_diff(&implicit)
            );
        }
    }

    #[test]
    fn implicit_backward_matches_materialized_reference() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 5,
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        let x = test_input(2, 3, 9, 8);
        let w = test_weights(&p);
        let (oh, ow) = p.out_hw(x.h, x.w);
        let dy = Tensor4::from_fn(2, 5, oh, ow, |a, b, y, xx| {
            ((a + b * 3 + y * 2 + xx) as f64 * 0.05).cos()
        });
        let (dw_i, dx_i) = conv2d_backward(&x, &w, &dy, &p);
        let (dw_r, dx_r) = conv2d_backward_ref(&x, &w, &dy, &p);
        assert!(dw_i.approx_eq(&dw_r, 1e-11));
        assert!(dx_i.approx_eq(&dx_r, 1e-11));
    }

    #[test]
    fn implicit_forward_and_backward_are_bit_reproducible() {
        // AlexNet-conv2-flavored shape, shrunk: big enough that the
        // GEMM crosses KC panels and multiple column blocks.
        let p = Conv2dParams {
            in_c: 24,
            out_c: 16,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        let x = test_input(2, 24, 13, 13);
        let w = test_weights(&p);
        let y1 = conv2d(&x, &w, &p);
        let y2 = conv2d(&x, &w, &p);
        assert_eq!(y1.as_slice(), y2.as_slice());
        let (oh, ow) = p.out_hw(x.h, x.w);
        let dy = Tensor4::from_fn(2, 16, oh, ow, |a, b, yy, xx| {
            ((a * 11 + b * 7 + yy * 3 + xx) as f64 * 0.03).sin()
        });
        let (dw1, dx1) = conv2d_backward(&x, &w, &dy, &p);
        let (dw2, dx2) = conv2d_backward(&x, &w, &dy, &p);
        assert_eq!(dw1.as_slice(), dw2.as_slice());
        assert_eq!(dx1.as_slice(), dx2.as_slice());
    }

    #[test]
    fn implicit_conv_never_materializes_the_column_matrix() {
        // AlexNet conv2 at batch 8: the im2col matrix would be
        // patch_len × n·oh·ow words; the implicit path's transient
        // scratch must stay well under it and be bounded by the
        // output-staging + blocking terms.
        let p = Conv2dParams {
            in_c: 96,
            out_c: 256,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        let (batch, h, w) = (8, 27, 27);
        let (oh, ow) = p.out_hw(h, w);
        let m = batch * oh * ow;
        let col_matrix_words = p.patch_len() * m;
        let scratch = conv_scratch_words(batch, h, w, &p);
        assert!(
            scratch <= p.out_c * m + gemm::KC * gemm::NC + gemm::MC * gemm::KC,
            "scratch {scratch} exceeds staging + blocking bound"
        );
        assert!(
            scratch * 3 < col_matrix_words,
            "scratch {scratch} is not well under the {col_matrix_words}-word column matrix"
        );
    }

    #[test]
    fn im2col_map_agrees_with_materialized_im2col() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 2,
            kh: 3,
            kw: 2,
            stride: 2,
            pad: 1,
        };
        let x = test_input(2, 3, 6, 5);
        let cols = im2col(&x, &p);
        let map = Im2colMap::new(&p, x.h, x.w);
        for kidx in 0..cols.rows() {
            for col in 0..cols.cols() {
                assert_eq!(
                    map.gather(x.as_slice(), kidx as u32, col as u32),
                    cols.get(kidx, col),
                    "({kidx}, {col})"
                );
            }
        }
    }

    #[test]
    fn row_strip_roundtrip() {
        let x = test_input(2, 3, 8, 5);
        let strip = x.row_strip(2, 6);
        assert_eq!((strip.n, strip.c, strip.h, strip.w), (2, 3, 4, 5));
        let mut y = Tensor4::zeros(2, 3, 8, 5);
        y.set_row_strip(2, &strip);
        assert_eq!(y.get(0, 1, 3, 2), x.get(0, 1, 3, 2));
        assert_eq!(y.get(0, 1, 0, 2), 0.0);
    }

    #[test]
    fn to_columns_roundtrip() {
        let x = test_input(3, 2, 4, 5);
        let m = x.to_columns();
        assert_eq!(m.shape(), (2 * 4 * 5, 3));
        let back = Tensor4::from_columns(&m, 2, 4, 5);
        assert!(back.approx_eq(&x, 0.0));
    }

    #[test]
    fn one_by_one_conv_needs_no_padding_rows() {
        // The paper notes 1x1 convolutions need no halo; sanity-check
        // that their receptive field is a single pixel.
        let p = Conv2dParams {
            in_c: 4,
            out_c: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let x = test_input(1, 4, 6, 6);
        let w = test_weights(&p);
        let full = conv2d_direct(&x, &w, &p);
        let top = conv2d_direct(&x.row_strip(0, 3), &w, &p);
        let bottom = conv2d_direct(&x.row_strip(3, 6), &w, &p);
        let mut stitched = Tensor4::zeros(1, 2, 6, 6);
        stitched.set_row_strip(0, &top);
        stitched.set_row_strip(3, &bottom);
        assert!(stitched.approx_eq(&full, 1e-14));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn implicit_forward_matches_direct_on_random_shapes(
            n in 1usize..3, in_c in 1usize..4, out_c in 1usize..5,
            kh in 1usize..4, kw in 1usize..4,
            stride in 1usize..3, pad in 0usize..3,
            extra_h in 0usize..5, extra_w in 0usize..5,
        ) {
            // Input at least as big as the kernel so out_hw stays valid.
            let h = kh + extra_h;
            let w = kw + extra_w;
            prop_assume!(h + 2 * pad >= kh && w + 2 * pad >= kw);
            let p = Conv2dParams { in_c, out_c, kh, kw, stride, pad };
            let x = test_input(n, in_c, h, w);
            let wt = test_weights(&p);
            let direct = conv2d_direct(&x, &wt, &p);
            let implicit = conv2d(&x, &wt, &p);
            prop_assert!(
                direct.approx_eq(&implicit, 1e-12),
                "diff {}", direct.max_abs_diff(&implicit)
            );
        }

        #[test]
        fn implicit_backward_matches_reference_on_random_shapes(
            n in 1usize..3, in_c in 1usize..4, out_c in 1usize..4,
            kh in 1usize..4, kw in 1usize..4,
            stride in 1usize..3, pad in 0usize..2,
            extra_h in 0usize..4, extra_w in 0usize..4,
        ) {
            let h = kh + extra_h;
            let w = kw + extra_w;
            prop_assume!(h + 2 * pad >= kh && w + 2 * pad >= kw);
            let p = Conv2dParams { in_c, out_c, kh, kw, stride, pad };
            let x = test_input(n, in_c, h, w);
            let wt = test_weights(&p);
            let (oh, ow) = p.out_hw(h, w);
            let dy = Tensor4::from_fn(n, out_c, oh, ow, |a, b, y, xx| {
                ((a * 5 + b * 3 + y * 2 + xx) as f64 * 0.04).sin()
            });
            let (dw_i, dx_i) = conv2d_backward(&x, &wt, &dy, &p);
            let (dw_r, dx_r) = conv2d_backward_ref(&x, &wt, &dy, &p);
            prop_assert!(dw_i.approx_eq(&dw_r, 1e-11));
            prop_assert!(dx_i.approx_eq(&dx_r, 1e-11));
        }
    }
}
