//! Local response normalization (Krizhevsky et al.) — the
//! cross-channel normalization AlexNet interleaves with its first two
//! conv stages:
//!
//! ```text
//! y[c] = x[c] / (k + (a/n)·Σ_{c' ∈ window(c)} x[c']²)^β
//! ```
//!
//! LRN is per-pixel across channels, so under the paper's domain
//! decomposition (strips of *rows*) it needs **no communication at
//! all** — every output element depends only on co-located inputs.
//! That is why the cost model ignores it (like ReLU/dropout) and why
//! the executable domain trainer can apply it locally on strips.

use crate::conv::Tensor4;

/// LRN hyper-parameters. AlexNet's published values are `n = 5`,
/// `k = 2`, `alpha = 1e-4`, `beta = 0.75`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrnParams {
    /// Window size `n` (channels, centered).
    pub n: usize,
    /// Additive constant `k`.
    pub k: f64,
    /// Scale `alpha`.
    pub alpha: f64,
    /// Exponent `beta`.
    pub beta: f64,
}

impl LrnParams {
    /// AlexNet's published constants.
    pub fn alexnet() -> Self {
        LrnParams {
            n: 5,
            k: 2.0,
            alpha: 1e-4,
            beta: 0.75,
        }
    }
}

fn window(c: usize, channels: usize, n: usize) -> (usize, usize) {
    let half = n / 2;
    (c.saturating_sub(half), (c + half + 1).min(channels))
}

/// The per-element scale `s[c] = k + (a/n)·Σ x[c']²`.
fn scales(x: &Tensor4, p: &LrnParams) -> Tensor4 {
    let mut s = Tensor4::zeros(x.n, x.c, x.h, x.w);
    for ni in 0..x.n {
        for ci in 0..x.c {
            let (lo, hi) = window(ci, x.c, p.n);
            for hi_ in 0..x.h {
                for wi in 0..x.w {
                    let mut acc = 0.0;
                    for cj in lo..hi {
                        let v = x.get(ni, cj, hi_, wi);
                        acc += v * v;
                    }
                    s.set(ni, ci, hi_, wi, p.k + p.alpha / p.n as f64 * acc);
                }
            }
        }
    }
    s
}

/// LRN forward: `y = x · s^{−β}`.
pub fn lrn_forward(x: &Tensor4, p: &LrnParams) -> Tensor4 {
    let s = scales(x, p);
    let mut y = x.clone();
    for (yv, &sv) in y.as_mut_slice().iter_mut().zip(s.as_slice()) {
        *yv *= sv.powf(-p.beta);
    }
    y
}

/// LRN backward: given `x` and the output gradient `dy`,
///
/// ```text
/// dx[c] = dy[c]·s[c]^{−β}
///       − (2αβ/n)·x[c]·Σ_{c': c ∈ window(c')} dy[c']·x[c']·s[c']^{−β−1}
/// ```
pub fn lrn_backward(x: &Tensor4, dy: &Tensor4, p: &LrnParams) -> Tensor4 {
    let s = scales(x, p);
    let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
    let coeff = 2.0 * p.alpha * p.beta / p.n as f64;
    for ni in 0..x.n {
        for hi_ in 0..x.h {
            for wi in 0..x.w {
                // Direct term.
                for ci in 0..x.c {
                    let sv = s.get(ni, ci, hi_, wi);
                    dx.add_at(ni, ci, hi_, wi, dy.get(ni, ci, hi_, wi) * sv.powf(-p.beta));
                }
                // Cross terms: each source channel cj contributes to all
                // channels in its window.
                for cj in 0..x.c {
                    let sv = s.get(ni, cj, hi_, wi);
                    let g =
                        dy.get(ni, cj, hi_, wi) * x.get(ni, cj, hi_, wi) * sv.powf(-p.beta - 1.0);
                    let (lo, hi) = window(cj, x.c, p.n);
                    for ci in lo..hi {
                        dx.add_at(ni, ci, hi_, wi, -coeff * x.get(ni, ci, hi_, wi) * g);
                    }
                }
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn identity_when_alpha_is_zero_and_k_one() {
        let p = LrnParams {
            n: 5,
            k: 1.0,
            alpha: 0.0,
            beta: 0.75,
        };
        let x = init::uniform_tensor(2, 6, 3, 3, -1.0, 1.0, 1);
        assert!(lrn_forward(&x, &p).approx_eq(&x, 1e-15));
    }

    #[test]
    fn suppresses_large_activations() {
        let p = LrnParams {
            n: 3,
            k: 1.0,
            alpha: 1.0,
            beta: 1.0,
        };
        let x = Tensor4::from_fn(1, 3, 1, 1, |_, c, _, _| if c == 1 { 10.0 } else { 0.1 });
        let y = lrn_forward(&x, &p);
        // The large channel is divided by ~(1 + 100/3) ≈ 34.
        assert!(y.get(0, 1, 0, 0) < 0.5, "{}", y.get(0, 1, 0, 0));
    }

    #[test]
    fn window_clamps_at_channel_edges() {
        assert_eq!(window(0, 8, 5), (0, 3));
        assert_eq!(window(4, 8, 5), (2, 7));
        assert_eq!(window(7, 8, 5), (5, 8));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let p = LrnParams::alexnet();
        let x = init::uniform_tensor(1, 6, 2, 2, 0.1, 1.0, 7);
        let dy = init::uniform_tensor(1, 6, 2, 2, -1.0, 1.0, 8);
        let dx = lrn_backward(&x, &dy, &p);
        let loss = |x: &Tensor4| -> f64 {
            lrn_forward(x, &p)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(y, g)| y * g)
                .sum()
        };
        let base = loss(&x);
        let eps = 1e-6;
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (3, 1, 1), (5, 0, 1)] {
            let mut xp = x.clone();
            xp.set(0, c, h, w, x.get(0, c, h, w) + eps);
            let num = (loss(&xp) - base) / eps;
            assert!(
                (num - dx.get(0, c, h, w)).abs() < 1e-5,
                "({c},{h},{w}): fd {num} vs {}",
                dx.get(0, c, h, w)
            );
        }
    }

    #[test]
    fn lrn_is_rowwise_local() {
        // The domain-parallel claim: applying LRN to strips and
        // stitching equals applying it to the whole tensor.
        let p = LrnParams::alexnet();
        let x = init::uniform_tensor(2, 8, 6, 4, -1.0, 1.0, 9);
        let full = lrn_forward(&x, &p);
        let top = lrn_forward(&x.row_strip(0, 3), &p);
        let bottom = lrn_forward(&x.row_strip(3, 6), &p);
        let mut stitched = Tensor4::zeros(2, 8, 6, 4);
        stitched.set_row_strip(0, &top);
        stitched.set_row_strip(3, &bottom);
        assert!(stitched.approx_eq(&full, 1e-14));
    }
}
