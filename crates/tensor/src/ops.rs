//! Element-wise vector/matrix operations used by SGD.

use crate::matrix::Matrix;

/// `y ← y + a·x` over raw slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise matrix sum.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let mut out = a.clone();
    axpy(1.0, b.as_slice(), out.as_mut_slice());
    out
}

/// Element-wise matrix difference `a − b`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    let mut out = a.clone();
    axpy(-1.0, b.as_slice(), out.as_mut_slice());
    out
}

/// Frobenius norm.
pub fn fro_norm(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Element-wise (Hadamard) product.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    let mut out = a.clone();
    for (o, &bv) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= bv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_multiplies() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (i * j) as f64 + 1.0);
        let s = add(&a, &b);
        assert!(sub(&s, &b).approx_eq(&a, 1e-15));
    }

    #[test]
    fn fro_norm_of_unit_vectors() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        assert!((fro_norm(&m) - 2.0).abs() < 1e-15);
        assert_eq!(fro_norm(&Matrix::zeros(3, 3)), 0.0);
    }

    #[test]
    fn hadamard_is_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[4.0, 10.0, 18.0]);
    }
}
