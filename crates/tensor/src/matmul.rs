//! Matrix products: `C = A·B`, `C = Aᵀ·B`, `C = A·Bᵀ`.
//!
//! All three run on the panel-packed GEMM core in [`crate::gemm`]: the
//! transposed variants feed the packer transposed element accessors
//! instead of materializing `Aᵀ`/`Bᵀ`, so packing cost is identical for
//! every operand orientation. Products below
//! [`gemm::SMALL_GEMM_MNK`] multiply-adds take a serial unpacked path
//! that skips rayon dispatch and panel setup entirely — tiny
//! layer-shard GEMMs at large P are latency-bound, not bandwidth-bound.
//!
//! Every element of every variant is an ascending-k `mul_add` fold (the
//! [`crate::gemm`] determinism contract), so results are bit-identical
//! across the small/packed/AVX2 paths and run-to-run, and
//! [`crate::abft`] can recompute single elements bit-exactly.
//!
//! The previous executed kernel (i-k-j blocked loops) is frozen as
//! [`matmul_ref`] — the benchmark baseline that `kernel_sweep` and CI
//! measure speedups against.

use rayon::prelude::*;

use crate::gemm::{self, SmallShape};
use crate::matrix::Matrix;

/// Row-block size for the frozen reference kernel's parallel loop.
const ROW_BLOCK: usize = 32;
/// K-panel size for the frozen reference kernel's cache blocking.
const K_BLOCK: usize = 256;

/// FLOPs of a `m×k · k×n` product (2 per multiply-add), as used by the
/// compute-time models.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

fn gemm_rows(c_rows: &mut [f64], row0: usize, nrows: usize, a: &Matrix, b: &Matrix) {
    let n = b.cols();
    let k_total = a.cols();
    let mut k0 = 0;
    while k0 < k_total {
        let k1 = (k0 + K_BLOCK).min(k_total);
        for (di, i) in (row0..row0 + nrows).enumerate() {
            let a_row = a.row(i);
            let c_row = &mut c_rows[di * n..(di + 1) * n];
            for k in k0..k1 {
                let aik = a_row[k];
                let b_row = b.row(k);
                for (cj, &bkj) in c_row.iter_mut().zip(b_row) {
                    *cj += aik * bkj;
                }
            }
        }
        k0 = k1;
    }
}

/// The pre-packing executed kernel (blocked i-k-j, rayon over row
/// blocks), frozen as the measured baseline for kernel speedups. Not
/// used by any compute path; benchmarks only.
pub fn matmul_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || a.cols() == 0 {
        return c;
    }
    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            let row0 = blk * ROW_BLOCK;
            let nrows = ROW_BLOCK.min(m - row0);
            gemm_rows(c_rows, row0, nrows, a, b);
        });
    c
}

/// `C = A·B`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    if gemm::is_small_gemm(m, n, k) {
        gemm::gemm_small(SmallShape::Nn, m, n, k, av, bv, c.as_mut_slice());
    } else {
        gemm::gemm_packed(
            m,
            n,
            k,
            |i, kk| av[i * k + kk],
            |kk, j| bv[kk * n + j],
            c.as_mut_slice(),
        );
    }
    c
}

/// `C = Aᵀ·B` without materializing `Aᵀ` (used for `∆X = Wᵀ·∆Y`).
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "AᵀB dimension mismatch");
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    if gemm::is_small_gemm(m, n, k) {
        gemm::gemm_small(SmallShape::Tn, m, n, k, av, bv, c.as_mut_slice());
    } else {
        // A is stored k×m; the packer reads it through the transposed
        // accessor, strided but touched once per panel pass.
        gemm::gemm_packed(
            m,
            n,
            k,
            |i, kk| av[kk * m + i],
            |kk, j| bv[kk * n + j],
            c.as_mut_slice(),
        );
    }
    c
}

/// `C = A·Bᵀ` without materializing `Bᵀ` (used for `∆W = ∆Y·Xᵀ`).
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "ABᵀ dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    if gemm::is_small_gemm(m, n, k) {
        gemm::gemm_small(SmallShape::Nt, m, n, k, av, bv, c.as_mut_slice());
    } else {
        // B is stored n×k; transposed accessor, same packing cost.
        gemm::gemm_packed(
            m,
            n,
            k,
            |i, kk| av[i * k + kk],
            |kk, j| bv[j * k + kk],
            c.as_mut_slice(),
        );
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn test_matrix(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 17) as f64 * 0.01 + seed).sin()
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(5, 5, 0.3);
        assert!(matmul(&a, &Matrix::eye(5)).approx_eq(&a, 1e-14));
        assert!(matmul(&Matrix::eye(5), &a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn matches_naive_nonsquare() {
        let a = test_matrix(7, 13, 0.1);
        let b = test_matrix(13, 5, 0.2);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-12));
    }

    #[test]
    fn large_enough_to_exercise_blocking() {
        let a = test_matrix(100, 300, 0.1);
        let b = test_matrix(300, 70, 0.2);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-10));
    }

    #[test]
    fn packed_path_matches_reference_kernel() {
        // Big enough to take the packed path; the frozen baseline and
        // the new kernel agree to rounding.
        let a = test_matrix(70, 90, 0.1);
        let b = test_matrix(90, 50, 0.2);
        assert!(matmul(&a, &b).approx_eq(&matmul_ref(&a, &b), 1e-10));
    }

    #[test]
    fn small_path_taken_and_exact_on_4x4() {
        // Satellite pin: a 4×4·4×4 product stays below the small-GEMM
        // threshold (no rayon dispatch, no packing) and is still exact.
        assert!(crate::gemm::is_small_gemm(4, 4, 4));
        let a = test_matrix(4, 4, 0.4);
        let b = test_matrix(4, 4, 0.8);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-13));
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        // Determinism contract: same inputs → same bits, every run,
        // on a shape large enough to use packing and panel boundaries.
        let a = test_matrix(130, 520, 0.6);
        let b = test_matrix(520, 90, 0.9);
        let c1 = matmul(&a, &b);
        let c2 = matmul(&a, &b);
        assert_eq!(c1.as_slice(), c2.as_slice());
        let at = test_matrix(520, 130, 0.6);
        let d1 = matmul_at_b(&at, &b);
        let d2 = matmul_at_b(&at, &b);
        assert_eq!(d1.as_slice(), d2.as_slice());
    }

    #[test]
    fn transposed_variants_are_bit_identical_to_plain_matmul() {
        // All orientations share one accumulation order, so AᵀB and ABᵀ
        // agree with materialized-transpose matmul to the bit — both on
        // the small path and the packed path.
        for (m, k, n) in [(9, 6, 4), (80, 300, 64)] {
            let a = test_matrix(k, m, 0.5);
            let b = test_matrix(k, n, 0.7);
            assert_eq!(
                matmul_at_b(&a, &b).as_slice(),
                matmul(&a.transpose(), &b).as_slice()
            );
            let a2 = test_matrix(m, k, 0.5);
            let b2 = test_matrix(n, k, 0.7);
            assert_eq!(
                matmul_a_bt(&a2, &b2).as_slice(),
                matmul(&a2, &b2.transpose()).as_slice()
            );
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = test_matrix(9, 6, 0.5);
        let b = test_matrix(9, 4, 0.7);
        assert!(matmul_at_b(&a, &b).approx_eq(&matmul(&a.transpose(), &b), 1e-12));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = test_matrix(6, 9, 0.5);
        let b = test_matrix(4, 9, 0.7);
        assert!(matmul_a_bt(&a, &b).approx_eq(&matmul(&a, &b.transpose()), 1e-12));
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(matmul(&a, &b), Matrix::zeros(2, 4));
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matmul_matches_naive(
            m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0.0f64..10.0
        ) {
            let a = test_matrix(m, k, seed);
            let b = test_matrix(k, n, seed + 1.0);
            prop_assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-11));
        }

        #[test]
        fn transpose_variants_consistent(
            m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0.0f64..10.0
        ) {
            let a = test_matrix(k, m, seed);
            let b = test_matrix(k, n, seed + 2.0);
            prop_assert!(matmul_at_b(&a, &b).approx_eq(&matmul(&a.transpose(), &b), 1e-11));
            let a2 = test_matrix(m, k, seed);
            let b2 = test_matrix(n, k, seed + 3.0);
            prop_assert!(matmul_a_bt(&a2, &b2).approx_eq(&matmul(&a2, &b2.transpose()), 1e-11));
        }

        #[test]
        fn packed_and_ref_agree_across_threshold(
            m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0.0f64..10.0
        ) {
            // Shapes straddle the small-GEMM threshold; both sides of
            // the dispatch agree with the frozen baseline to rounding.
            let a = test_matrix(m, k, seed);
            let b = test_matrix(k, n, seed + 1.0);
            prop_assert!(matmul(&a, &b).approx_eq(&matmul_ref(&a, &b), 1e-11));
        }
    }
}
