//! Matrix products: `C = A·B`, `C = Aᵀ·B`, `C = A·Bᵀ`.
//!
//! The inner kernel is cache-blocked (i-k-j loop order so the innermost
//! loop streams contiguous rows) and the outer loop over row blocks is
//! parallelized with rayon, following the data-parallel iterator idiom
//! of the hpc-parallel guides. Sizes here are small enough (layer-shard
//! matrices) that this simple scheme is within a small factor of a
//! tuned GEMM while staying easy to audit.

use rayon::prelude::*;

use crate::matrix::Matrix;

/// Row-block size for the parallel outer loop.
const ROW_BLOCK: usize = 32;
/// K-panel size for cache blocking.
const K_BLOCK: usize = 256;

/// FLOPs of a `m×k · k×n` product (2 per multiply-add), as used by the
/// compute-time models.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

fn gemm_rows(c_rows: &mut [f64], row0: usize, nrows: usize, a: &Matrix, b: &Matrix) {
    let n = b.cols();
    let k_total = a.cols();
    let mut k0 = 0;
    while k0 < k_total {
        let k1 = (k0 + K_BLOCK).min(k_total);
        for (di, i) in (row0..row0 + nrows).enumerate() {
            let a_row = a.row(i);
            let c_row = &mut c_rows[di * n..(di + 1) * n];
            for k in k0..k1 {
                let aik = a_row[k];
                let b_row = b.row(k);
                for (cj, &bkj) in c_row.iter_mut().zip(b_row) {
                    *cj += aik * bkj;
                }
            }
        }
        k0 = k1;
    }
}

/// `C = A·B`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || a.cols() == 0 {
        return c;
    }
    // Parallelize over disjoint row blocks of C.
    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            let row0 = blk * ROW_BLOCK;
            let nrows = ROW_BLOCK.min(m - row0);
            gemm_rows(c_rows, row0, nrows, a, b);
        });
    c
}

/// `C = Aᵀ·B` without materializing `Aᵀ` (used for `∆X = Wᵀ·∆Y`).
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "AᵀB dimension mismatch");
    let (m, n) = (a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || a.rows() == 0 {
        return c;
    }
    // C[i][j] = Σ_k A[k][i]·B[k][j]: accumulate rank-1 updates per k.
    // Parallelize over row blocks of C by splitting the i range.
    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            let i0 = blk * ROW_BLOCK;
            let ilen = ROW_BLOCK.min(m - i0);
            for k in 0..a.rows() {
                let a_row = a.row(k);
                let b_row = b.row(k);
                for di in 0..ilen {
                    let aki = a_row[i0 + di];
                    if aki == 0.0 {
                        continue;
                    }
                    let c_row = &mut c_rows[di * n..(di + 1) * n];
                    for (cj, &bkj) in c_row.iter_mut().zip(b_row) {
                        *cj += aki * bkj;
                    }
                }
            }
        });
    c
}

/// `C = A·Bᵀ` without materializing `Bᵀ` (used for `∆W = ∆Y·Xᵀ`).
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "ABᵀ dimension mismatch");
    let (m, n) = (a.rows(), b.rows());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || a.cols() == 0 {
        return c;
    }
    c.as_mut_slice()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            let i0 = blk * ROW_BLOCK;
            let ilen = ROW_BLOCK.min(m - i0);
            for di in 0..ilen {
                let a_row = a.row(i0 + di);
                let c_row = &mut c_rows[di * n..(di + 1) * n];
                for (j, cij) in c_row.iter_mut().enumerate() {
                    let b_row = b.row(j);
                    let mut acc = 0.0;
                    for (ak, bk) in a_row.iter().zip(b_row) {
                        acc += ak * bk;
                    }
                    *cij += acc;
                }
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn test_matrix(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 17) as f64 * 0.01 + seed).sin()
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(5, 5, 0.3);
        assert!(matmul(&a, &Matrix::eye(5)).approx_eq(&a, 1e-14));
        assert!(matmul(&Matrix::eye(5), &a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn matches_naive_nonsquare() {
        let a = test_matrix(7, 13, 0.1);
        let b = test_matrix(13, 5, 0.2);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-12));
    }

    #[test]
    fn large_enough_to_exercise_blocking() {
        let a = test_matrix(100, 300, 0.1);
        let b = test_matrix(300, 70, 0.2);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-10));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = test_matrix(9, 6, 0.5);
        let b = test_matrix(9, 4, 0.7);
        assert!(matmul_at_b(&a, &b).approx_eq(&matmul(&a.transpose(), &b), 1e-12));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = test_matrix(6, 9, 0.5);
        let b = test_matrix(4, 9, 0.7);
        assert!(matmul_a_bt(&a, &b).approx_eq(&matmul(&a, &b.transpose()), 1e-12));
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(matmul(&a, &b), Matrix::zeros(2, 4));
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matmul_matches_naive(
            m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0.0f64..10.0
        ) {
            let a = test_matrix(m, k, seed);
            let b = test_matrix(k, n, seed + 1.0);
            prop_assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-11));
        }

        #[test]
        fn transpose_variants_consistent(
            m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0.0f64..10.0
        ) {
            let a = test_matrix(k, m, seed);
            let b = test_matrix(k, n, seed + 2.0);
            prop_assert!(matmul_at_b(&a, &b).approx_eq(&matmul(&a.transpose(), &b), 1e-11));
            let a2 = test_matrix(m, k, seed);
            let b2 = test_matrix(n, k, seed + 3.0);
            prop_assert!(matmul_a_bt(&a2, &b2).approx_eq(&matmul(&a2, &b2.transpose()), 1e-11));
        }
    }
}
