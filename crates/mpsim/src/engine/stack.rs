//! Slab-allocated fiber stacks.
//!
//! At P = 65536 we cannot afford one `mmap` (plus one guard-page
//! `mprotect`) per rank: each distinct protection range costs a kernel
//! VMA and `vm.max_map_count` defaults to ~65530. Instead stacks are
//! carved out of large slabs — one `mmap` per slab, `MAP_NORESERVE` so
//! untouched pages cost nothing — with a single `PROT_NONE` guard page
//! at the *low* end of the slab (stacks grow down, so the first stack
//! in the slab is hard-guarded) and a software canary word at the base
//! of every stack that the scheduler checks on each suspend/finish.
//!
//! This trades per-stack hardware guards for: (a) a canary that catches
//! overflow at the next fiber switch, and (b) generous default stack
//! sizes (virtual memory is free under `MAP_NORESERVE`). A stack that
//! blows through its canary *and* its neighbour silently is possible in
//! principle but requires skipping >1 MiB in a single frame without
//! touching it — rank closures here are shallow (no recursion in the
//! collectives or trainers).

use std::cell::Cell;

/// Bytes per fiber stack (virtual; physical pages are faulted lazily).
/// Overridable via `MPSIM_STACK_KB` (see [`StackPool::new`]).
const DEFAULT_STACK_BYTES: usize = 1 << 20; // 1 MiB

/// Stacks per mmap'd slab. 64 stacks × 1 MiB + 1 guard page per slab
/// keeps the VMA count at P/64 + small change.
const STACKS_PER_SLAB: usize = 64;

const PAGE: usize = 4096;

/// Canary pattern written at the low end of each stack.
const CANARY: u64 = 0x5ee7_ab1e_dead_57ac;
const CANARY_WORDS: usize = 8;

#[cfg(target_os = "linux")]
mod sys {
    use std::arch::asm;

    const SYS_MMAP: usize = 9;
    const SYS_MPROTECT: usize = 10;
    const SYS_MUNMAP: usize = 11;

    pub const PROT_NONE: usize = 0;
    pub const PROT_READ_WRITE: usize = 3;
    const MAP_PRIVATE_ANON_NORESERVE: usize = 0x2 | 0x20 | 0x4000;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> usize {
        let ret;
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn is_err(ret: usize) -> bool {
        ret > usize::MAX - 4096
    }

    /// Anonymous private no-reserve mapping, readable+writable.
    pub unsafe fn map_anon(len: usize) -> Option<*mut u8> {
        let ret = syscall6(
            SYS_MMAP,
            0,
            len,
            PROT_READ_WRITE,
            MAP_PRIVATE_ANON_NORESERVE,
            usize::MAX, // fd = -1
            0,
        );
        if is_err(ret) {
            None
        } else {
            Some(ret as *mut u8)
        }
    }

    pub unsafe fn protect(addr: *mut u8, len: usize, prot: usize) -> bool {
        !is_err(syscall6(SYS_MPROTECT, addr as usize, len, prot, 0, 0, 0))
    }

    pub unsafe fn unmap(addr: *mut u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, addr as usize, len, 0, 0, 0, 0);
    }
}

/// One carved-out stack. `base` is the lowest address (canary lives
/// here); the usable top is `base + len`, 16-byte aligned.
#[derive(Clone, Copy)]
pub struct StackSlot {
    base: *mut u8,
    len: usize,
}

impl StackSlot {
    /// Highest usable address (stacks grow down from here).
    pub fn top(&self) -> usize {
        (self.base as usize + self.len) & !15
    }

    /// Write the canary pattern at the low end.
    pub fn arm_canary(&self) {
        unsafe {
            let words = self.base as *mut u64;
            for i in 0..CANARY_WORDS {
                words.add(i).write(CANARY);
            }
        }
    }

    /// True iff the canary is intact.
    pub fn canary_ok(&self) -> bool {
        unsafe {
            let words = self.base as *const u64;
            (0..CANARY_WORDS).all(|i| words.add(i).read() == CANARY)
        }
    }
}

struct Slab {
    addr: *mut u8,
    len: usize,
}

impl Drop for Slab {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        unsafe {
            sys::unmap(self.addr, self.len);
        }
        #[cfg(not(target_os = "linux"))]
        unsafe {
            // Fallback path allocates via Vec; reconstitute and drop.
            drop(Vec::from_raw_parts(self.addr, 0, self.len));
        }
    }
}

/// Owns every slab for one engine run; individual stacks are never
/// freed early (fibers live as long as the engine), so there is no
/// free-list — just a bump cursor over slabs.
pub struct StackPool {
    slabs: Vec<Slab>,
    stack_bytes: usize,
    cursor: Cell<usize>, // index of next unallocated stack in last slab
}

impl Default for StackPool {
    fn default() -> Self {
        Self::new()
    }
}

impl StackPool {
    pub fn new() -> Self {
        let stack_bytes = std::env::var("MPSIM_STACK_KB")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|kb| (kb.max(64) * 1024).next_multiple_of(PAGE))
            .unwrap_or(DEFAULT_STACK_BYTES);
        StackPool {
            slabs: Vec::new(),
            stack_bytes,
            cursor: Cell::new(STACKS_PER_SLAB),
        }
    }

    fn grow(&mut self) {
        let len = PAGE + STACKS_PER_SLAB * self.stack_bytes;
        #[cfg(target_os = "linux")]
        let addr = unsafe {
            let a = sys::map_anon(len).expect("mpsim: mmap for fiber stacks failed");
            // Hard guard page at the low end of the slab.
            assert!(
                sys::protect(a, PAGE, sys::PROT_NONE),
                "mpsim: mprotect guard page failed"
            );
            a
        };
        #[cfg(not(target_os = "linux"))]
        let addr = {
            let mut v = vec![0u8; len];
            let a = v.as_mut_ptr();
            std::mem::forget(v);
            a
        };
        self.slabs.push(Slab { addr, len });
        self.cursor.set(0);
    }

    /// Hand out the next stack slot; canary is armed.
    pub fn alloc(&mut self) -> StackSlot {
        if self.cursor.get() >= STACKS_PER_SLAB {
            self.grow();
        }
        let i = self.cursor.get();
        self.cursor.set(i + 1);
        let slab = self.slabs.last().expect("slab just grown");
        let base = unsafe { slab.addr.add(PAGE + i * self.stack_bytes) };
        let slot = StackSlot {
            base,
            len: self.stack_bytes,
        };
        slot.arm_canary();
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_aligned() {
        let mut pool = StackPool::new();
        let a = pool.alloc();
        let b = pool.alloc();
        assert_eq!(a.top() % 16, 0);
        assert_eq!(b.top() % 16, 0);
        assert!(a.top() <= b.base as usize || b.top() <= a.base as usize);
        assert!(a.canary_ok() && b.canary_ok());
    }

    #[test]
    fn canary_detects_clobber() {
        let mut pool = StackPool::new();
        let s = pool.alloc();
        assert!(s.canary_ok());
        unsafe { (s.base as *mut u64).write(0) };
        assert!(!s.canary_ok());
    }

    #[test]
    fn pool_spans_multiple_slabs() {
        let mut pool = StackPool::new();
        let slots: Vec<StackSlot> = (0..STACKS_PER_SLAB + 3).map(|_| pool.alloc()).collect();
        assert!(pool.slabs.len() >= 2);
        for s in &slots {
            assert!(s.canary_ok());
        }
    }
}
