//! Discrete-event execution engine: ranks as fibers on a virtual-time
//! scheduler, replacing one-OS-thread-per-rank.
//!
//! ## Why this is bit-identical to the threaded backend
//!
//! The threaded simulator blocks in exactly one way: a rank waiting on
//! its (empty) mailbox. Message *matching* is by `(context, src, tag)`
//! with per-sender FIFO, every timestamp is computed from envelope
//! `depart` fields and the receiver's own virtual clock, and no
//! real-time timeouts exist anywhere. Consequently **any** schedule
//! that (a) only suspends a rank when its mailbox is empty and it asked
//! to receive, and (b) delivers each sender's envelopes in send order,
//! produces the same numbers, stats, and traces as free-running OS
//! threads. The event engine is one such schedule: fibers run until
//! they block on `recv`, a send to a blocked rank makes it runnable,
//! and the scheduler always resumes the runnable rank with the
//! smallest `(blocked-at virtual time, rank)` key — a deterministic
//! discrete-event order that also keeps co-temporal ranks in lockstep
//! so per-rank progress (and memory held in mailboxes) stays balanced.
//!
//! ## Termination and the disconnect rule
//!
//! A threaded rank's `recv` fails once every peer endpoint has been
//! dropped. The event engine generalises this: when *no* fiber is
//! runnable and at least one is blocked, the system can provably never
//! make progress (sends only happen from running fibers), so the
//! engine sets a `disconnected` flag and wakes every blocked fiber.
//! A woken fiber first drains its mailbox (buffered envelopes are
//! always delivered, as with the channel backend); only an empty
//! mailbox surfaces `Err` → [`crate::Error::Disconnected`]. Any
//! subsequent send clears the flag, so a program that recovers from
//! the error and restores traffic keeps running. Programs that never
//! deadlock never observe the flag; programs that *would* hang the
//! threaded backend get a clean error instead.
//!
//! ## Panics
//!
//! A panicking rank closure is caught at the fiber boundary and
//! re-thrown by the scheduler **after** all other fibers have run to
//! completion (they observe the dead rank exactly as the threaded
//! backend would: via fault notices or, at exhaustion, the disconnect
//! rule). Payloads are re-thrown in rank order, matching the threaded
//! backend's join-in-rank-order propagation.

pub mod fiber;
pub mod stack;

use std::cell::Cell;
use std::collections::{BinaryHeap, VecDeque};
use std::panic;
use std::ptr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::router::Envelope;
use fiber::{Fiber, FiberState, Resume};
use stack::StackPool;

thread_local! {
    /// The fiber currently running on this thread (null outside the
    /// engine). Saved/restored around every resume so nested engines
    /// (a `World` run from inside a rank closure) compose.
    static CURRENT: Cell<*const FiberState> = const { Cell::new(ptr::null()) };
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum RankState {
    Ready,
    Running,
    /// Blocked on an empty mailbox; payload = virtual time at block.
    Blocked(f64),
    Done,
}

/// Min-heap entry: earlier blocked-time first, then lower rank.
struct ReadyEntry {
    t: f64,
    rank: usize,
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t.total_cmp(&other.t).is_eq() && self.rank == other.rank
    }
}
impl Eq for ReadyEntry {}
impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

struct Sched {
    state: Vec<RankState>,
    ready: BinaryHeap<ReadyEntry>,
    /// Set when the engine found no runnable fiber; cleared by any send.
    disconnected: bool,
}

/// The shared message fabric: one mailbox per rank plus the scheduler
/// state. O(P) memory — unlike the threaded router's P² cloned senders.
pub struct Fabric {
    boxes: Vec<Mutex<VecDeque<Envelope>>>,
    alive: Vec<AtomicBool>,
    sched: Mutex<Sched>,
}

impl Fabric {
    pub fn new(size: usize) -> Arc<Fabric> {
        Arc::new(Fabric {
            boxes: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
            alive: (0..size).map(|_| AtomicBool::new(true)).collect(),
            sched: Mutex::new(Sched {
                state: vec![RankState::Ready; size],
                ready: BinaryHeap::new(),
                disconnected: false,
            }),
        })
    }

    /// The endpoint for `rank`. Take each rank's endpoint exactly once.
    pub fn endpoint(self: &Arc<Fabric>, rank: usize) -> EventEndpoint {
        EventEndpoint {
            fabric: Arc::clone(self),
            rank,
        }
    }
}

/// A rank's handle on the fabric — the event-engine counterpart of the
/// threaded `(Receiver, Vec<Sender>)` endpoint, with matching failure
/// semantics: `send` fails iff the destination endpoint was dropped,
/// `recv` fails iff no envelope is buffered and none can ever arrive.
pub struct EventEndpoint {
    fabric: Arc<Fabric>,
    rank: usize,
}

impl EventEndpoint {
    // The `()` errors mirror `std::sync::mpsc`'s send/recv failures,
    // which the threaded endpoint exposes verbatim; both carry exactly
    // one bit ("peer gone") and are mapped to `Error` one layer up.
    #[allow(clippy::result_unit_err)]
    pub fn send(&self, dst: usize, env: Envelope) -> Result<(), ()> {
        if !self.fabric.alive[dst].load(Ordering::Relaxed) {
            return Err(());
        }
        self.fabric.boxes[dst].lock().unwrap().push_back(env);
        let mut s = self.fabric.sched.lock().unwrap();
        s.disconnected = false;
        if let RankState::Blocked(t) = s.state[dst] {
            s.state[dst] = RankState::Ready;
            s.ready.push(ReadyEntry { t, rank: dst });
        }
        Ok(())
    }

    /// Pop the next envelope, suspending the calling fiber while the
    /// mailbox is empty. `now` is the caller's virtual clock, used as
    /// the scheduling key while blocked.
    #[allow(clippy::result_unit_err)]
    pub fn recv(&self, now: f64) -> Result<Envelope, ()> {
        loop {
            if let Some(env) = self.fabric.boxes[self.rank].lock().unwrap().pop_front() {
                return Ok(env);
            }
            if self.fabric.sched.lock().unwrap().disconnected {
                return Err(());
            }
            let st = CURRENT.with(|c| c.get());
            assert!(
                !st.is_null(),
                "mpsim event endpoint used outside the event engine"
            );
            {
                let mut s = self.fabric.sched.lock().unwrap();
                s.state[self.rank] = RankState::Blocked(now);
            }
            unsafe { fiber::suspend_current(st) };
        }
    }
}

impl Drop for EventEndpoint {
    fn drop(&mut self) {
        self.fabric.alive[self.rank].store(false, Ordering::Relaxed);
    }
}

/// Run `size` rank closures to completion on the event scheduler.
///
/// Each closure must eventually return (or panic); blocking happens
/// only inside [`EventEndpoint::recv`]. Panics from rank closures are
/// re-thrown here in rank order after all fibers have completed,
/// mirroring the threaded backend's join order.
///
/// # Safety
/// The closures may borrow data from the caller's stack frame (they are
/// transmuted to `'static` by the caller); this function guarantees
/// every fiber has run to completion — and thus dropped its closure —
/// before returning or unwinding, except if the engine itself has a
/// bug, in which case started-but-unfinished fibers leak (never
/// resumed, never dropped) rather than dangle.
pub fn run(fabric: &Arc<Fabric>, closures: Vec<Box<dyn FnOnce()>>) {
    let size = closures.len();
    let mut pool = StackPool::new();
    let mut fibers: Vec<Fiber> = closures
        .into_iter()
        .map(|f| Fiber::new(pool.alloc(), f))
        .collect();

    {
        let mut s = fabric.sched.lock().unwrap();
        assert_eq!(s.state.len(), size, "fabric size != closure count");
        for rank in 0..size {
            assert_eq!(s.state[rank], RankState::Ready, "fabric reused");
            s.ready.push(ReadyEntry { t: 0.0, rank });
        }
    }

    let mut done = 0usize;
    let mut panics: Vec<Option<Box<dyn std::any::Any + Send>>> = (0..size).map(|_| None).collect();

    while done < size {
        let next = { fabric.sched.lock().unwrap().ready.pop() };
        match next {
            Some(entry) => {
                let rank = entry.rank;
                {
                    let mut s = fabric.sched.lock().unwrap();
                    debug_assert_eq!(s.state[rank], RankState::Ready);
                    s.state[rank] = RankState::Running;
                }
                let fib = &mut fibers[rank];
                let prev = CURRENT.with(|c| c.replace(fib.state_ptr()));
                let res = fib.resume();
                CURRENT.with(|c| c.set(prev));
                match res {
                    Resume::Suspended => {
                        // Fiber marked itself Blocked before switching;
                        // a send during its run may already have made
                        // it Ready again — both are fine.
                    }
                    Resume::Finished => {
                        fabric.sched.lock().unwrap().state[rank] = RankState::Done;
                        done += 1;
                    }
                    Resume::Panicked => {
                        panics[rank] = fibers[rank].take_panic();
                        fabric.sched.lock().unwrap().state[rank] = RankState::Done;
                        done += 1;
                    }
                }
            }
            None => {
                // No runnable fiber but not everyone is done: no send
                // can ever happen again unless we intervene. Declare
                // disconnection and wake all blocked fibers so their
                // recv either drains buffered envelopes or errors.
                let mut s = fabric.sched.lock().unwrap();
                s.disconnected = true;
                let mut woke = 0;
                for rank in 0..size {
                    if let RankState::Blocked(t) = s.state[rank] {
                        s.state[rank] = RankState::Ready;
                        s.ready.push(ReadyEntry { t, rank });
                        woke += 1;
                    }
                }
                assert!(
                    woke > 0,
                    "mpsim event engine stuck: {done}/{size} done, none blocked"
                );
            }
        }
    }

    // All fibers completed; re-throw the lowest-rank panic (threaded
    // backend join order). Later payloads are dropped, as they would
    // be by join-in-order.
    if let Some(payload) = panics.into_iter().flatten().next() {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Payload;
    use std::rc::Rc;

    fn msg(src: usize, tag: u64, depart: f64) -> Envelope {
        Envelope {
            ctx: 0,
            src,
            tag,
            depart,
            seq: 0,
            csum: None,
            dup: false,
            severed: false,
            data: Payload::Control(vec![src as u8]),
        }
    }

    #[test]
    fn ping_pong_two_ranks() {
        let fabric = Fabric::new(2);
        let log: Rc<std::cell::RefCell<Vec<(usize, u64)>>> = Rc::default();
        let mk = |rank: usize,
                  fabric: &Arc<Fabric>,
                  log: &Rc<std::cell::RefCell<Vec<(usize, u64)>>>|
         -> Box<dyn FnOnce()> {
            let ep = fabric.endpoint(rank);
            let log = log.clone();
            Box::new(move || {
                let peer = 1 - rank;
                for round in 0..3u64 {
                    if rank == 0 {
                        ep.send(peer, msg(rank, round, 0.0)).unwrap();
                        let env = ep.recv(0.0).unwrap();
                        log.borrow_mut().push((env.src, env.tag));
                    } else {
                        let env = ep.recv(0.0).unwrap();
                        log.borrow_mut().push((env.src, env.tag));
                        ep.send(peer, msg(rank, round + 100, 0.0)).unwrap();
                    }
                }
            })
        };
        let closures = vec![mk(0, &fabric, &log), mk(1, &fabric, &log)];
        run(&fabric, closures);
        assert_eq!(
            *log.borrow(),
            vec![(0, 0), (1, 100), (0, 1), (1, 101), (0, 2), (1, 102)]
        );
    }

    #[test]
    fn deadlock_becomes_disconnect_error() {
        let fabric = Fabric::new(2);
        let errs: Rc<std::cell::Cell<usize>> = Rc::default();
        let closures: Vec<Box<dyn FnOnce()>> = (0..2)
            .map(|rank| {
                let ep = fabric.endpoint(rank);
                let errs = errs.clone();
                Box::new(move || {
                    // Both ranks recv with nobody sending: a hang on
                    // the threaded backend, a clean error here.
                    if ep.recv(0.0).is_err() {
                        errs.set(errs.get() + 1);
                    }
                }) as Box<dyn FnOnce()>
            })
            .collect();
        run(&fabric, closures);
        assert_eq!(errs.get(), 2);
    }

    #[test]
    fn buffered_envelopes_survive_disconnect() {
        let fabric = Fabric::new(2);
        let got: Rc<std::cell::Cell<u64>> = Rc::default();
        let ep0 = fabric.endpoint(0);
        let ep1 = fabric.endpoint(1);
        let got2 = got.clone();
        let closures: Vec<Box<dyn FnOnce()>> = vec![
            Box::new(move || {
                ep0.send(1, msg(0, 7, 0.0)).unwrap();
                // Exit immediately; rank 1 must still get the envelope.
            }),
            Box::new(move || {
                let env = ep1.recv(0.0).unwrap();
                got2.set(env.tag);
                // Second recv: nothing buffered, nobody left → Err.
                assert!(ep1.recv(0.0).is_err());
            }),
        ];
        run(&fabric, closures);
        assert_eq!(got.get(), 7);
    }

    #[test]
    fn send_to_dropped_endpoint_fails() {
        let fabric = Fabric::new(2);
        let ep0 = fabric.endpoint(0);
        let ep1 = fabric.endpoint(1);
        let closures: Vec<Box<dyn FnOnce()>> = vec![
            Box::new(move || {
                // Wait for rank 1 to finish (it never sends, so we see
                // the disconnect), then observe the dead endpoint.
                assert!(ep0.recv(0.0).is_err());
                assert!(ep0.send(1, msg(0, 0, 0.0)).is_err());
            }),
            Box::new(move || drop(ep1)),
        ];
        run(&fabric, closures);
    }

    #[test]
    fn scheduler_prefers_smallest_virtual_time() {
        // Rank 0 blocks at t=5, rank 1 at t=2; rank 2 sends to both and
        // finishes. Rank 1 (earlier blocked time) must run first.
        let fabric = Fabric::new(3);
        let order: Rc<std::cell::RefCell<Vec<usize>>> = Rc::default();
        let mut closures: Vec<Box<dyn FnOnce()>> = Vec::new();
        for rank in 0..2usize {
            let ep = fabric.endpoint(rank);
            let order = order.clone();
            let t = if rank == 0 { 5.0 } else { 2.0 };
            closures.push(Box::new(move || {
                let _ = ep.recv(t).unwrap();
                order.borrow_mut().push(rank);
            }));
        }
        let ep2 = fabric.endpoint(2);
        closures.push(Box::new(move || {
            // Block once so ranks 0 and 1 are both parked first.
            let _ = ep2.recv(0.0); // disconnect-woken: Err — fine.
            let _ = ep2.send(0, msg(2, 0, 0.0));
            let _ = ep2.send(1, msg(2, 1, 0.0));
        }));
        run(&fabric, closures);
        assert_eq!(*order.borrow(), vec![1, 0]);
    }

    #[test]
    fn rank_panic_propagates_after_others_finish() {
        let fabric = Fabric::new(2);
        let finished: Rc<std::cell::Cell<bool>> = Rc::default();
        let ep0 = fabric.endpoint(0);
        let ep1 = fabric.endpoint(1);
        let fin = finished.clone();
        let closures: Vec<Box<dyn FnOnce()>> = vec![
            Box::new(move || {
                let _ = &ep0;
                panic!("rank 0 exploded");
            }),
            Box::new(move || {
                let _ = &ep1;
                fin.set(true);
            }),
        ];
        let err = panic::catch_unwind(panic::AssertUnwindSafe(|| run(&fabric, closures)))
            .expect_err("panic must propagate");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"rank 0 exploded"));
        assert!(finished.get(), "other ranks run to completion first");
    }
}
