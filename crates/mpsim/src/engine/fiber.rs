//! Stackful fibers for the discrete-event engine.
//!
//! A fiber is a rank's closure running on its own stack, suspended and
//! resumed by a cooperative context switch. Only the x86_64 System V
//! callee-saved state needs to travel across a switch: rbp, rbx,
//! r12–r15, and rsp itself. Everything else is caller-saved and the
//! switch is an ordinary `extern "C"` call from the compiler's point
//! of view.
//!
//! The switch protocol: `fiber_switch(save, restore)` pushes the six
//! callee-saved registers, stores the resulting rsp through `save`,
//! installs `restore` as rsp, pops six registers and returns. A brand
//! new fiber's stack is pre-seeded so those pops produce a pointer to
//! its [`FiberState`] in r12 and the "return" lands in a naked
//! trampoline that moves r12 into rdi, aligns the stack, and calls the
//! Rust entry — so the very first resume is indistinguishable from any
//! later one.
//!
//! Panics never unwind across the raw switch: the entry fn catches
//! them (`catch_unwind`) and parks the payload in the state for the
//! scheduler to rethrow (or swallow, for deliberate cancellation).

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};

use super::stack::StackSlot;

#[cfg(all(target_arch = "x86_64", any(target_os = "linux", target_os = "macos")))]
std::arch::global_asm!(
    // fn mpsim_fiber_switch(save: *mut usize /*rdi*/, restore: usize /*rsi*/)
    ".globl mpsim_fiber_switch",
    // Some toolchains want .type/.size; keep it minimal and portable.
    "mpsim_fiber_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    // First-entry trampoline: the seeded stack "returns" here with the
    // FiberState pointer in r12.
    ".globl mpsim_fiber_entry_tramp",
    "mpsim_fiber_entry_tramp:",
    "mov rdi, r12",
    "and rsp, -16",
    "call mpsim_fiber_entry_rust",
    "ud2",
);

extern "C" {
    fn mpsim_fiber_switch(save: *mut usize, restore: usize);
    #[allow(dead_code)]
    fn mpsim_fiber_entry_tramp();
}

/// What a resume observed about the fiber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// The fiber yielded (blocked); it can be resumed again.
    Suspended,
    /// The closure returned normally.
    Finished,
    /// The closure panicked; the payload is parked in the state.
    Panicked,
}

/// Shared mutable cell between the scheduler and one fiber. Kept in a
/// `Box` so its address is stable across switches (the trampoline
/// carries the raw pointer in r12).
pub struct FiberState {
    /// Suspended fiber's rsp (valid while suspended).
    fiber_sp: Cell<usize>,
    /// Scheduler's rsp while the fiber runs (valid while running).
    sched_sp: Cell<usize>,
    /// Set once the closure has returned or panicked.
    done: Cell<bool>,
    /// The closure, present until first entry.
    entry: Cell<Option<Box<dyn FnOnce()>>>,
    /// Parked panic payload, if the closure panicked.
    panic: Cell<Option<Box<dyn Any + Send>>>,
    /// True iff `panic` was ever set (survives `take_panic`).
    panicked: Cell<bool>,
}

/// Entry point called by the asm trampoline on first resume.
///
/// # Safety
/// `state` must point at the live `FiberState` whose stack we are on.
#[no_mangle]
unsafe extern "C" fn mpsim_fiber_entry_rust(state: *mut FiberState) -> ! {
    {
        let st = &*state;
        let entry = st.entry.take().expect("fiber entered twice");
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(entry)) {
            st.panic.set(Some(payload));
            st.panicked.set(true);
        }
        st.done.set(true);
    }
    // Final switch back to the scheduler; never returns.
    let st = &*state;
    mpsim_fiber_switch(st.fiber_sp.as_ptr(), st.sched_sp.get());
    unreachable!("finished fiber resumed");
}

pub struct Fiber {
    state: Box<FiberState>,
    stack: StackSlot,
    started: bool,
}

impl Fiber {
    /// Create a fiber that will run `f` on `stack` when first resumed.
    pub fn new(stack: StackSlot, f: Box<dyn FnOnce()>) -> Self {
        let state = Box::new(FiberState {
            fiber_sp: Cell::new(0),
            sched_sp: Cell::new(0),
            done: Cell::new(false),
            entry: Cell::new(Some(f)),
            panic: Cell::new(None),
            panicked: Cell::new(false),
        });
        let mut fiber = Fiber {
            state,
            stack,
            started: false,
        };
        fiber.seed_stack();
        fiber
    }

    /// Lay out the initial frame so the first `mpsim_fiber_switch` into
    /// this stack pops zeros into r15/r14/r13, the state pointer into
    /// r12, zeros into rbx/rbp, and "returns" into the trampoline.
    fn seed_stack(&mut self) {
        let top = self.stack.top();
        let state_ptr = &*self.state as *const FiberState as usize;
        unsafe {
            let sp = top as *mut usize;
            // Stack grows down; write the frame top-down.
            sp.sub(1)
                .write(mpsim_fiber_entry_tramp as *const () as usize); // ret target
            sp.sub(2).write(0); // rbp
            sp.sub(3).write(0); // rbx
            sp.sub(4).write(state_ptr); // r12
            sp.sub(5).write(0); // r13
            sp.sub(6).write(0); // r14
            sp.sub(7).write(0); // r15
            self.state.fiber_sp.set(sp.sub(7) as usize);
        }
    }

    /// Raw pointer to the shared state, for the running fiber's TLS.
    pub fn state_ptr(&self) -> *const FiberState {
        &*self.state
    }

    pub fn is_done(&self) -> bool {
        self.state.done.get()
    }

    /// Switch from the scheduler into the fiber until it yields or
    /// finishes. Must only be called from the scheduler's own stack.
    pub fn resume(&mut self) -> Resume {
        debug_assert!(!self.is_done(), "resumed a finished fiber");
        self.started = true;
        unsafe {
            mpsim_fiber_switch(self.state.sched_sp.as_ptr(), self.state.fiber_sp.get());
        }
        if !self.stack.canary_ok() {
            // The stack overflowed past its red zone into the canary;
            // neighbouring stacks may already be corrupt. Unwinding
            // through corrupted frames would make it worse — die hard.
            eprintln!(
                "mpsim: fiber stack overflow detected (canary clobbered); \
                 raise MPSIM_STACK_KB. aborting."
            );
            std::process::abort();
        }
        if self.state.done.get() {
            if self.state.panicked.get() {
                Resume::Panicked
            } else {
                Resume::Finished
            }
        } else {
            Resume::Suspended
        }
    }

    /// Remove and return the parked panic payload, if any.
    pub fn take_panic(&mut self) -> Option<Box<dyn Any + Send>> {
        self.state.panic.take()
    }

    /// Drop the un-run closure of a fiber that never started.
    pub fn cancel_unstarted(&mut self) {
        debug_assert!(!self.started);
        self.state.entry.set(None);
        self.state.done.set(true);
    }
}

/// Called from *inside* a fiber (via the engine TLS) to switch back to
/// the scheduler. Returns when the scheduler resumes the fiber.
///
/// # Safety
/// `state` must be the `FiberState` of the currently running fiber.
pub unsafe fn suspend_current(state: *const FiberState) {
    let st = &*state;
    mpsim_fiber_switch(st.fiber_sp.as_ptr(), st.sched_sp.get());
}

impl Drop for Fiber {
    fn drop(&mut self) {
        if !self.started && !self.is_done() {
            // Never ran: just drop the boxed closure.
            self.state.entry.set(None);
        }
        // A started-but-unfinished fiber can only be dropped if the
        // scheduler itself died; its stack objects leak (the engine's
        // cancellation protocol exists precisely to avoid this path in
        // normal operation, including panics).
    }
}

#[cfg(test)]
mod tests {
    use super::super::stack::StackPool;
    use super::*;
    use std::rc::Rc;

    fn spawn(pool: &mut StackPool, f: impl FnOnce() + 'static) -> Fiber {
        Fiber::new(pool.alloc(), Box::new(f))
    }

    #[test]
    fn runs_to_completion() {
        let mut pool = StackPool::new();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        let mut f = spawn(&mut pool, move || h.set(true));
        assert_eq!(f.resume(), Resume::Finished);
        assert!(hit.get());
    }

    #[test]
    fn yields_and_resumes() {
        let mut pool = StackPool::new();
        let steps = Rc::new(Cell::new(0));
        let ptr_cell = Rc::new(Cell::new(0usize));
        let (s, p) = (steps.clone(), ptr_cell.clone());
        let mut f = spawn(&mut pool, move || {
            s.set(1);
            unsafe { suspend_current(p.get() as *const FiberState) };
            s.set(2);
            unsafe { suspend_current(p.get() as *const FiberState) };
            s.set(3);
        });
        ptr_cell.set(f.state_ptr() as usize);
        assert_eq!(f.resume(), Resume::Suspended);
        assert_eq!(steps.get(), 1);
        assert_eq!(f.resume(), Resume::Suspended);
        assert_eq!(steps.get(), 2);
        assert_eq!(f.resume(), Resume::Finished);
        assert_eq!(steps.get(), 3);
    }

    #[test]
    fn panic_is_parked_not_propagated() {
        let mut pool = StackPool::new();
        let mut f = spawn(&mut pool, || panic!("boom-42"));
        assert_eq!(f.resume(), Resume::Panicked);
        let payload = f.take_panic().expect("payload parked");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-42");
    }

    #[test]
    fn deep_locals_survive_switches() {
        let mut pool = StackPool::new();
        let sum = Rc::new(Cell::new(0u64));
        let s = sum.clone();
        let mut f = spawn(&mut pool, move || {
            let data: Vec<u64> = (0..10_000).collect();
            s.set(data.iter().sum());
        });
        assert_eq!(f.resume(), Resume::Finished);
        assert_eq!(sum.get(), 49_995_000);
    }
}
