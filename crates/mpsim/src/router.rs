//! Message transport between ranks.
//!
//! Each rank owns one unbounded receiving channel and a sender handle to
//! every other rank. Matching by `(context, source, tag)` happens at the
//! receiver ([`crate::comm::Communicator`]); the router only moves
//! envelopes.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::Tag;

/// The payload of a message.
///
/// `Words` carries simulation data and is charged to the virtual clock
/// at `α + β·len` on receive. `Control` carries metadata for
/// control-plane operations (communicator splits, clock synchronization)
/// and is *free* in virtual time — mirroring how published cost analyses
/// ignore communicator-management traffic.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Simulation data, counted in words.
    Words(Vec<f64>),
    /// Zero-virtual-time control metadata.
    Control(Vec<u8>),
    /// Stand-in for a data message the fault plan dropped: carries no
    /// data, but lets the receiver's timeout machinery observe the loss
    /// deterministically instead of blocking forever.
    Tombstone {
        /// Word count the lost message would have had.
        words: usize,
    },
    /// Death notice: the sender died at virtual time `at`. Broadcast
    /// once to every rank so nobody can hang waiting on the dead rank;
    /// matched out of band (any context, any tag).
    Death {
        /// Sender's virtual time of death.
        at: f64,
    },
    /// Collective abort notice: the sender abandoned the current
    /// data-plane phase, blaming global rank `culprit`. Unblocks peers
    /// mid-collective; honored only at matching recovery `epoch`.
    Abort {
        /// Global rank blamed for the abort.
        culprit: usize,
        /// Sender's recovery epoch when it aborted.
        epoch: u64,
    },
    /// Rejoin announcement: a previously dead sender revived at virtual
    /// time `at`. Advisory — re-admission decisions are driven by the
    /// fault plan (deterministic), not by when this notice is drained;
    /// the notice exists so peers can observe the announcement and so
    /// introspection/tests can see who offered to return.
    Rejoin {
        /// Sender's virtual time of revival.
        at: f64,
    },
    /// Park notice: the sender found itself in a minority fragment
    /// after a partition and parked (no weight updates, no shrink)
    /// until re-admission. Broadcast as the parking rank's *last* act
    /// before going silent, so peers blocked on it can deterministically
    /// resolve the rank as unreachable instead of hanging.
    Parked {
        /// Sender's virtual time when it parked.
        at: f64,
    },
}

impl Payload {
    /// Number of words charged to the network model (0 for control and
    /// notices; a tombstone's payload never arrives, so it charges 0).
    pub fn words(&self) -> usize {
        match self {
            Payload::Words(v) => v.len(),
            _ => 0,
        }
    }
}

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Communicator context id the message belongs to.
    pub ctx: u64,
    /// Global rank of the sender.
    pub src: usize,
    /// Application tag.
    pub tag: Tag,
    /// Sender's virtual clock at the moment of send.
    pub depart: f64,
    /// Per-link data-message sequence number (index of this message
    /// among all data messages on its `src → dst` link). Only maintained
    /// while a fault plan is active; 0 otherwise.
    pub seq: u64,
    /// FNV-1a checksum of the payload words as sent, stamped before any
    /// injected corruption so the receiver can verify integrity. `None`
    /// when no fault plan is active.
    pub csum: Option<u64>,
    /// Whether this envelope is the extra copy injected by a
    /// [`crate::FaultPlan::duplicate_nth`] fault. The receiver's
    /// matching layer absorbs flagged copies deterministically.
    pub dup: bool,
    /// Whether this envelope crossed an active partition. Data becomes
    /// a tombstone and notices are demoted to bare unreachability
    /// markers at the receiver — no content crosses the cut, but peers
    /// blocked on the sender can still resolve it deterministically.
    pub severed: bool,
    /// Message contents.
    pub data: Payload,
}

/// Per-rank transport endpoint, backend-polymorphic.
///
/// The communicator only ever does two things with its endpoint: send
/// an envelope to a global rank, and block until the next envelope
/// arrives. Both backends expose exactly that, with identical failure
/// semantics — `send` fails iff the destination's endpoint has been
/// dropped, `recv` fails iff nothing is buffered and nothing can ever
/// arrive (all peers gone on the threaded backend; provable global
/// quiescence on the event backend).
pub enum Endpoint {
    /// One OS thread per rank, crossbeam channels, P² cloned senders.
    /// The original backend, kept as a differential-testing oracle for
    /// small P.
    Threaded {
        /// This rank's inbox.
        rx: Receiver<Envelope>,
        /// Senders to every rank in the world (index = global rank;
        /// includes self, which is occasionally useful for uniform
        /// code).
        txs: Vec<Sender<Envelope>>,
    },
    /// Fiber mailbox on the discrete-event engine; O(P) total state.
    Event(crate::engine::EventEndpoint),
}

impl Endpoint {
    // The `()` errors are `std::sync::mpsc`-style: one bit ("peer
    // gone"), translated into `Error` by the communicator layer.
    /// Deliver `env` to global rank `dst`. Fails iff `dst`'s endpoint
    /// has been dropped (its rank closure already returned).
    #[allow(clippy::result_unit_err)]
    pub fn send(&self, dst: usize, env: Envelope) -> Result<(), ()> {
        match self {
            Endpoint::Threaded { txs, .. } => txs[dst].send(env).map_err(|_| ()),
            Endpoint::Event(ep) => ep.send(dst, env),
        }
    }

    /// Block until the next envelope arrives. `now` is the caller's
    /// virtual clock, used as the scheduling key by the event backend
    /// (ignored by the threaded one). Fails iff no envelope can ever
    /// arrive again.
    #[allow(clippy::result_unit_err)]
    pub fn recv(&self, now: f64) -> Result<Envelope, ()> {
        match self {
            Endpoint::Threaded { rx, .. } => rx.recv().map_err(|_| ()),
            Endpoint::Event(ep) => ep.recv(now),
        }
    }
}

/// Builds a fully-connected set of threaded-backend endpoints for
/// `size` ranks.
pub fn build(size: usize) -> Vec<Endpoint> {
    let mut rxs = Vec::with_capacity(size);
    let mut txs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .map(|rx| Endpoint::Threaded {
            rx,
            txs: txs.clone(),
        })
        .collect()
}

/// Builds event-engine endpoints over a fresh fabric for `size` ranks.
/// Returns the fabric (to run the engine on) and one endpoint per rank.
pub fn build_event(size: usize) -> (std::sync::Arc<crate::engine::Fabric>, Vec<Endpoint>) {
    let fabric = crate::engine::Fabric::new(size);
    let eps = (0..size)
        .map(|r| Endpoint::Event(fabric.endpoint(r)))
        .collect();
    (fabric, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_wires_every_pair() {
        let eps = build(3);
        assert_eq!(eps.len(), 3);
        for ep in &eps {
            match ep {
                Endpoint::Threaded { txs, .. } => assert_eq!(txs.len(), 3),
                Endpoint::Event(_) => panic!("build() returns threaded endpoints"),
            }
        }
        // Send from "rank 0" to "rank 2" and observe it.
        eps[0]
            .send(
                2,
                Envelope {
                    ctx: 0,
                    src: 0,
                    tag: 7,
                    depart: 1.25,
                    seq: 0,
                    csum: None,
                    dup: false,
                    severed: false,
                    data: Payload::Words(vec![1.0, 2.0]),
                },
            )
            .unwrap();
        let e = eps[2].recv(0.0).unwrap();
        assert_eq!(e.src, 0);
        assert_eq!(e.tag, 7);
        assert_eq!(e.data.words(), 2);
    }

    #[test]
    fn control_payload_counts_zero_words() {
        assert_eq!(Payload::Control(vec![0u8; 100]).words(), 0);
        assert_eq!(Payload::Words(vec![0.0; 100]).words(), 100);
    }
}
