//! Message transport between ranks.
//!
//! Each rank owns one unbounded receiving channel and a sender handle to
//! every other rank. Matching by `(context, source, tag)` happens at the
//! receiver ([`crate::comm::Communicator`]); the router only moves
//! envelopes.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::Tag;

/// The payload of a message.
///
/// `Words` carries simulation data and is charged to the virtual clock
/// at `α + β·len` on receive. `Control` carries metadata for
/// control-plane operations (communicator splits, clock synchronization)
/// and is *free* in virtual time — mirroring how published cost analyses
/// ignore communicator-management traffic.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Simulation data, counted in words.
    Words(Vec<f64>),
    /// Zero-virtual-time control metadata.
    Control(Vec<u8>),
}

impl Payload {
    /// Number of words charged to the network model (0 for control).
    pub fn words(&self) -> usize {
        match self {
            Payload::Words(v) => v.len(),
            Payload::Control(_) => 0,
        }
    }
}

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Communicator context id the message belongs to.
    pub ctx: u64,
    /// Global rank of the sender.
    pub src: usize,
    /// Application tag.
    pub tag: Tag,
    /// Sender's virtual clock at the moment of send.
    pub depart: f64,
    /// Message contents.
    pub data: Payload,
}

/// Per-rank transport endpoints.
pub struct Endpoint {
    /// This rank's inbox.
    pub rx: Receiver<Envelope>,
    /// Senders to every rank in the world (index = global rank;
    /// includes self, which is occasionally useful for uniform code).
    pub txs: Vec<Sender<Envelope>>,
}

/// Builds a fully-connected set of endpoints for `size` ranks.
pub fn build(size: usize) -> Vec<Endpoint> {
    let mut rxs = Vec::with_capacity(size);
    let mut txs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter().map(|rx| Endpoint { rx, txs: txs.clone() }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_wires_every_pair() {
        let eps = build(3);
        assert_eq!(eps.len(), 3);
        for ep in &eps {
            assert_eq!(ep.txs.len(), 3);
        }
        // Send from "rank 0" to "rank 2" and observe it.
        eps[0].txs[2]
            .send(Envelope {
                ctx: 0,
                src: 0,
                tag: 7,
                depart: 1.25,
                data: Payload::Words(vec![1.0, 2.0]),
            })
            .unwrap();
        let e = eps[2].rx.recv().unwrap();
        assert_eq!(e.src, 0);
        assert_eq!(e.tag, 7);
        assert_eq!(e.data.words(), 2);
    }

    #[test]
    fn control_payload_counts_zero_words() {
        assert_eq!(Payload::Control(vec![0u8; 100]).words(), 0);
        assert_eq!(Payload::Words(vec![0.0; 100]).words(), 100);
    }
}
