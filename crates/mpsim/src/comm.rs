//! Communicators: the MPI-like handle each rank program uses.
//!
//! A [`Communicator`] names a group of global ranks and gives the local
//! rank send/recv/collective-building primitives within that group.
//! Sub-communicators created with [`Communicator::split`] or
//! [`Communicator::grid`] share the owning thread's virtual clock,
//! mailbox, and traffic counters, exactly like MPI communicators share a
//! process.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use crate::clock::Clock;
use crate::error::{Error, Result};
use crate::fault::{self, FaultPlan};
use crate::health::{DetectorConfig, HealthMonitor, RetryPolicy};
use crate::netmodel::NetModel;
use crate::router::{Endpoint, Envelope, Payload};
use crate::stats::RankStats;
use crate::topology::Topology;
use crate::trace::{TraceConfig, Tracer, Track};
use crate::{Rank, Tag};

/// Tags at or above this value are reserved for internal use (control
/// plane and library collectives). Application code should stay below.
pub const RESERVED_TAG_BASE: Tag = 1 << 48;

const SPLIT_TAG: Tag = RESERVED_TAG_BASE + 1;
const SYNC_TAG: Tag = RESERVED_TAG_BASE + 2;
const BARRIER_TAG: Tag = RESERVED_TAG_BASE + 3;
/// Base tag for [`Communicator::fault_sync`] rounds (offset by a
/// per-rank round counter, so successive rounds never cross-match).
const FAULT_SYNC_TAG: Tag = RESERVED_TAG_BASE + 4096;
/// Base tag for non-blocking collective launches
/// ([`Communicator::alloc_nb_tags`]); each launch reserves
/// [`NB_TAG_STRIDE`] consecutive tags above this base.
const NB_TAG_BASE: Tag = RESERVED_TAG_BASE + (1 << 24);
/// Tag slots reserved per non-blocking launch.
const NB_TAG_STRIDE: Tag = 8;

/// Per-thread shared state: transport endpoint, pending-message buffer,
/// virtual clock, and counters. One `Inner` exists per OS thread (global
/// rank); all communicators on that thread share it.
pub(crate) struct Inner {
    pub global_rank: usize,
    pub world_size: usize,
    pub endpoint: Endpoint,
    /// Messages received from the channel but not yet matched, keyed by
    /// `(ctx, src_global, tag)`, FIFO per key.
    pub pending: HashMap<(u64, usize, Tag), VecDeque<Envelope>>,
    pub clock: Clock,
    pub model: NetModel,
    pub topo: Topology,
    pub stats: RankStats,
    /// Monotonic counter so repeated `split` calls derive distinct
    /// deterministic context ids (requires SPMD call order, like MPI).
    pub split_seq: u64,
    /// Shared fault-injection script (empty/inactive by default).
    pub plan: Arc<FaultPlan>,
    /// Per-destination count of data messages sent (indexes the fault
    /// plan's per-link events). Only maintained while the plan is active.
    pub link_seq: Vec<u64>,
    /// Peers whose death notice this rank has observed: global rank →
    /// virtual time of death.
    pub dead_peers: BTreeMap<usize, f64>,
    /// Dead peers whose failure has been *surfaced* to the application
    /// (counted once in [`RankStats::failures_detected`]).
    pub dead_surfaced: BTreeMap<usize, ()>,
    /// Peers that broadcast an abort notice: global rank →
    /// (blamed culprit, sender's recovery epoch at the time).
    pub aborted_peers: BTreeMap<usize, (usize, u64)>,
    /// Current recovery epoch; abort notices are honored only when their
    /// epoch matches (stale pre-recovery aborts are ignored).
    pub fault_epoch: u64,
    /// Round counter for [`Communicator::fault_sync`].
    pub fault_sync_seq: u64,
    /// Set once this rank's own kill has fired; every subsequent
    /// operation returns [`Error::RankFailed`] until a scripted
    /// [`Communicator::revive`].
    pub died: bool,
    /// Virtual time of this rank's own death, while dead.
    pub died_at: Option<f64>,
    /// Kill entries at or before this time are spent (consumed by a
    /// revival); only strictly later kills can fire.
    pub revive_floor: f64,
    /// Adaptive failure-detector state (per-peer EWMA / φ-accrual),
    /// fed at deterministic message-consumption points.
    pub health: HealthMonitor,
    /// Rejoin announcements drained from revived peers: global rank →
    /// rejoin time. Advisory; admission is decided from the fault plan.
    pub rejoin_notices: BTreeMap<usize, f64>,
    /// Peers resolved as unreachable (a partition severed their traffic,
    /// or they parked in a minority fragment): global rank → virtual
    /// time of the resolving observation. Cleared by
    /// [`Communicator::readmit`], like `dead_peers`.
    pub unreachable_peers: BTreeMap<usize, f64>,
    /// Unreachable peers already surfaced to the application (counted
    /// once in [`RankStats::unreachable_detected`]).
    pub unreachable_surfaced: BTreeMap<usize, ()>,
    /// Per-destination transport holdback for
    /// [`FaultPlan::reorder_nth`]: `(release_after_seq, envelope)`.
    /// Flushed by a later data message on the link (window elapsed or
    /// same `(ctx, tag)` flow), by any control/notice send to the same
    /// destination, and unconditionally before death/abort/park
    /// broadcasts.
    pub reorder_held: Vec<Vec<(u64, Envelope)>>,
    /// Per-context launch counter for non-blocking collectives, so
    /// concurrent handles on one communicator get disjoint tag ranges
    /// (requires SPMD launch order within the group, like `split`).
    pub nb_seq: HashMap<u64, u64>,
    /// Per-rank event recorder (disabled by default; see
    /// [`crate::trace`]). Lives on this thread only — no locks.
    pub tracer: Tracer,
    /// Training-phase context registered by the trainer (iteration and
    /// op counter); attached to corruption errors surfaced while set.
    pub fault_ctx: Option<crate::error::FaultCtx>,
    /// Spend-once bookkeeping for scripted compute bit flips, indexed
    /// by plan entry: a flip that has fired on this rank never fires
    /// again, so a rollback/replay of the same iteration runs clean.
    pub compute_flips_spent: Vec<bool>,
    /// Spend-once bookkeeping for scripted memory bit flips.
    pub memory_flips_spent: Vec<bool>,
}

/// Outcome of a fault-aware message match.
enum Matched {
    /// A message is available (deadline not yet checked by the caller).
    Data(Envelope),
    /// The awaited message was dropped by the fault plan (a tombstone is
    /// parked in the pending buffer; it will never become data).
    Dropped,
    /// The source rank is dead (died at the given virtual time).
    PeerDead(f64),
    /// The source rank aborted the current phase blaming `culprit`.
    PeerAborted(usize),
    /// The source rank is unreachable across a partition (a severed
    /// message or notice was observed at the given virtual time).
    Unreachable(f64),
}

impl Inner {
    /// Builds the per-rank state shared by both execution backends.
    ///
    /// The fault-plan-indexed vectors (`link_seq`, `reorder_held`) are
    /// zero-length when the plan is inactive: [`Inner::post`] only
    /// touches them under `plan.active()`, and lazy sizing removes an
    /// O(P²) aggregate memory term (P ranks × P-long vectors) that
    /// would dominate at P = 65536.
    pub(crate) fn new(
        rank: usize,
        size: usize,
        endpoint: Endpoint,
        model: NetModel,
        topo: Topology,
        plan: Arc<FaultPlan>,
        trace: TraceConfig,
    ) -> Inner {
        let fault_len = if plan.active() { size } else { 0 };
        Inner {
            global_rank: rank,
            world_size: size,
            endpoint,
            pending: HashMap::new(),
            clock: Clock::new(),
            model,
            topo,
            stats: RankStats::default(),
            split_seq: 0,
            link_seq: vec![0; fault_len],
            dead_peers: BTreeMap::new(),
            dead_surfaced: BTreeMap::new(),
            aborted_peers: BTreeMap::new(),
            fault_epoch: 0,
            fault_sync_seq: 0,
            died: false,
            died_at: None,
            revive_floor: f64::NEG_INFINITY,
            health: HealthMonitor::new(DetectorConfig::from_model(&model), size),
            rejoin_notices: BTreeMap::new(),
            unreachable_peers: BTreeMap::new(),
            unreachable_surfaced: BTreeMap::new(),
            reorder_held: vec![Vec::new(); fault_len],
            nb_seq: HashMap::new(),
            tracer: Tracer::new(trace),
            fault_ctx: None,
            compute_flips_spent: vec![false; plan.compute_flip_entries()],
            memory_flips_spent: vec![false; plan.memory_flip_entries()],
            plan,
        }
    }

    /// Fault-aware matching: blocks until a message, tombstone, death
    /// notice, or (when `honor_aborts`) current-epoch abort notice from
    /// `src_global` resolves the receive, buffering everything else.
    ///
    /// Determinism: messages from one source arrive in send order (the
    /// per-pair FIFO), and a death/abort notice is broadcast *after*
    /// everything its sender ever sent. So by the time a notice from
    /// `src` is recorded, every earlier message from `src` is already in
    /// `pending` — checking `pending` first, then the notice tables,
    /// then blocking on the channel yields the same outcome regardless
    /// of real-time interleaving.
    fn match_recv(
        &mut self,
        ctx: u64,
        src_global: usize,
        tag: Tag,
        honor_aborts: bool,
    ) -> Result<Matched> {
        // Flush-before-block: a rank about to (possibly) block on its
        // channel releases every reorder-held envelope first. A blocked
        // rank can never post the message that would release a hold, so
        // without this a held message whose receiver is a dependency of
        // this rank deadlocks the world in *real* time — virtual-time
        // deadlines only fire when envelopes arrive.
        self.flush_all_held();
        let key = (ctx, src_global, tag);
        if let Some(queue) = self.pending.get_mut(&key) {
            // Absorb injected duplicate copies at the head: the original
            // was already consumed, so flagged copies are discarded.
            while queue.front().is_some_and(|e| e.dup) {
                queue.pop_front();
                self.stats.dups_absorbed += 1;
            }
            if let Some(env) = queue.front() {
                if matches!(env.data, Payload::Tombstone { .. }) {
                    // Leave the tombstone parked: retries must keep
                    // observing the loss instead of blocking forever.
                    if env.severed {
                        return Ok(Matched::Unreachable(env.depart));
                    }
                    return Ok(Matched::Dropped);
                }
                return Ok(Matched::Data(queue.pop_front().expect("non-empty")));
            }
        }
        if let Some(&at) = self.dead_peers.get(&src_global) {
            return Ok(Matched::PeerDead(at));
        }
        if let Some(&at) = self.unreachable_peers.get(&src_global) {
            return Ok(Matched::Unreachable(at));
        }
        if honor_aborts {
            if let Some(&(culprit, epoch)) = self.aborted_peers.get(&src_global) {
                if epoch == self.fault_epoch {
                    return Ok(Matched::PeerAborted(culprit));
                }
            }
        }
        loop {
            let env = self
                .endpoint
                .recv(self.clock.now)
                .map_err(|_| Error::Disconnected { peer: src_global })?;
            match env.data {
                // Severed notices crossed an active partition: record
                // bare unreachability, never the content — nothing leaks
                // across the cut, but nobody hangs on the sender either.
                Payload::Death { at } | Payload::Rejoin { at } if env.severed => {
                    self.unreachable_peers.entry(env.src).or_insert(at);
                    if env.src == src_global {
                        return Ok(Matched::Unreachable(at));
                    }
                }
                Payload::Abort { .. } if env.severed => {
                    let at = env.depart;
                    self.unreachable_peers.entry(env.src).or_insert(at);
                    if env.src == src_global {
                        return Ok(Matched::Unreachable(at));
                    }
                }
                // A park marker makes the sender unreachable whether or
                // not it crossed a cut: the parked rank is silent until
                // re-admission.
                Payload::Parked { at } => {
                    self.unreachable_peers.entry(env.src).or_insert(at);
                    if env.src == src_global {
                        return Ok(Matched::Unreachable(at));
                    }
                }
                Payload::Death { at } => {
                    self.dead_peers.entry(env.src).or_insert(at);
                    if env.src == src_global {
                        return Ok(Matched::PeerDead(at));
                    }
                }
                Payload::Abort { culprit, epoch } => {
                    let e = self
                        .aborted_peers
                        .entry(env.src)
                        .or_insert((culprit, epoch));
                    if epoch >= e.1 {
                        *e = (culprit, epoch);
                    }
                    if honor_aborts && env.src == src_global && epoch == self.fault_epoch {
                        return Ok(Matched::PeerAborted(culprit));
                    }
                }
                Payload::Rejoin { at } => {
                    self.rejoin_notices.insert(env.src, at);
                }
                Payload::Tombstone { .. }
                    if env.ctx == ctx && env.src == src_global && env.tag == tag =>
                {
                    let severed = env.severed;
                    let at = env.depart;
                    self.pending.entry(key).or_default().push_back(env);
                    if severed {
                        return Ok(Matched::Unreachable(at));
                    }
                    return Ok(Matched::Dropped);
                }
                _ if env.ctx == ctx && env.src == src_global && env.tag == tag => {
                    if env.dup {
                        self.stats.dups_absorbed += 1;
                    } else {
                        return Ok(Matched::Data(env));
                    }
                }
                _ => {
                    self.pending
                        .entry((env.ctx, env.src, env.tag))
                        .or_default()
                        .push_back(env);
                }
            }
        }
    }

    /// Returns the un-consumed envelope to the head of its queue (used
    /// when a matched message misses its receive deadline).
    fn unmatch(&mut self, env: Envelope) {
        self.pending
            .entry((env.ctx, env.src, env.tag))
            .or_default()
            .push_front(env);
    }

    /// Feeds the adaptive detector at a message-consumption point:
    /// `peer` was heard from now, optionally with the observed receive
    /// wait. Virtual-time samples only, so replays are bit-identical.
    fn observe_peer(&mut self, peer: usize, wait: Option<f64>) {
        let now = self.clock.now;
        self.health.heard(peer, now);
        if let Some(w) = wait {
            self.health.observed_wait(peer, w);
        }
    }

    /// Charges a surfaced failure detection: the clock moves to the
    /// death time (a failure cannot be observed before it happened) and
    /// the first detection of each peer is counted.
    fn surface_death(&mut self, peer: usize, at: f64) -> Error {
        let t0 = self.clock.now;
        self.clock.sync_to(at);
        if self.tracer.enabled() {
            let t1 = self.clock.now;
            if t1 > t0 {
                self.tracer.span(
                    "comm",
                    "death_sync",
                    Track::Main,
                    t0,
                    t1,
                    &[("peer", peer as f64)],
                );
            }
            self.tracer
                .instant("fault", "peer_dead", t1, &[("peer", peer as f64)]);
        }
        self.dead_peers.entry(peer).or_insert(at);
        if self.dead_surfaced.insert(peer, ()).is_none() {
            self.stats.failures_detected += 1;
        }
        Error::RankFailed { rank: peer }
    }

    /// Counts and traces a surfaced partition detection. Unlike
    /// [`Inner::surface_death`] this never advances the clock: the
    /// observation happens at the receiver's own `now` (the cut itself
    /// lies in the past), and the `at` hint may come from a `Parked`
    /// notice or a severed tombstone depending on which envelope
    /// arrived first in *real* time — syncing to it would let that
    /// race leak into virtual time and break bit-identical replay.
    fn surface_unreachable(&mut self, peer: usize, at: f64) -> Error {
        if self.tracer.enabled() {
            let now = self.clock.now;
            self.tracer
                .instant("fault", "peer_unreachable", now, &[("peer", peer as f64)]);
        }
        self.unreachable_peers.entry(peer).or_insert(at);
        if self.unreachable_surfaced.insert(peer, ()).is_none() {
            self.stats.unreachable_detected += 1;
        }
        Error::Unreachable { rank: peer }
    }

    /// Releases every held (reordered) envelope on every link, in held
    /// order. Called before notice broadcasts so the "a notice trails
    /// everything its sender ever sent" invariant survives reordering,
    /// and before any blocking receive so a rank never blocks while
    /// holding messages its dependencies may be waiting on (reordering
    /// is thereby bounded by the sender's next blocking point).
    fn flush_all_held(&mut self) {
        // `reorder_held` is zero-length when no fault plan is active
        // (it is only ever populated under an active plan).
        for dst in 0..self.reorder_held.len() {
            if self.reorder_held[dst].is_empty() {
                continue;
            }
            let held = std::mem::take(&mut self.reorder_held[dst]);
            for (_, env) in held {
                let _ = self.transmit(dst, env);
            }
        }
    }

    /// Checks this rank's own scripted death: at the first communication
    /// operation at or after the kill time, broadcasts a death notice to
    /// every other rank (all-or-nothing: no further death checks happen
    /// mid-broadcast) and fails every operation from then on.
    fn check_failed(&mut self) -> Result<()> {
        if self.died {
            return Err(Error::RankFailed {
                rank: self.global_rank,
            });
        }
        if let Some(at) = self
            .plan
            .kill_time_after(self.global_rank, self.revive_floor)
        {
            if self.clock.now >= at {
                self.died = true;
                self.died_at = Some(at);
                if self.tracer.enabled() {
                    let now = self.clock.now;
                    self.tracer.instant("fault", "died", now, &[("at", at)]);
                }
                self.flush_all_held();
                let me = self.global_rank;
                for dst in 0..self.world_size {
                    if dst != me {
                        self.stats.ctrl_msgs_sent += 1;
                        let severed = self.plan.link_cut(me, dst, at);
                        if severed {
                            self.stats.msgs_severed += 1;
                        }
                        let _ = self.endpoint.send(
                            dst,
                            Envelope {
                                ctx: 0,
                                src: me,
                                tag: 0,
                                depart: at,
                                seq: 0,
                                csum: None,
                                dup: false,
                                severed,
                                data: Payload::Death { at },
                            },
                        );
                    }
                }
                return Err(Error::RankFailed { rank: me });
            }
        }
        Ok(())
    }

    fn post(&mut self, dst_global: usize, mut env: Envelope) -> Result<()> {
        let mut dup_copy = None;
        let mut hold_until = None;
        let mut posted_seq = None;
        if self.plan.active() {
            let me = self.global_rank;
            let now = self.clock.now;
            match &mut env.data {
                Payload::Words(v) => {
                    let seq = self.link_seq[dst_global];
                    self.link_seq[dst_global] += 1;
                    env.seq = seq;
                    env.csum = Some(fault::checksum(v));
                    posted_seq = Some(seq);
                    if self.plan.link_cut(me, dst_global, now) {
                        // An active partition severs the link: the data
                        // never crosses, but a severed tombstone does, so
                        // the receiver resolves the sender as unreachable
                        // instead of hanging or merely timing out.
                        self.stats.msgs_severed += 1;
                        if self.tracer.enabled() {
                            self.tracer.instant(
                                "fault",
                                "severed",
                                now,
                                &[("dst", dst_global as f64), ("words", v.len() as f64)],
                            );
                        }
                        env.data = Payload::Tombstone { words: v.len() };
                        env.csum = None;
                        env.severed = true;
                    } else if self.plan.dropped(me, dst_global, seq) {
                        self.stats.msgs_dropped += 1;
                        self.stats.words_dropped += v.len() as u64;
                        if self.tracer.enabled() {
                            let words = v.len() as f64;
                            self.tracer.instant(
                                "fault",
                                "drop",
                                now,
                                &[("dst", dst_global as f64), ("words", words)],
                            );
                        }
                        env.data = Payload::Tombstone { words: v.len() };
                        env.csum = None;
                    } else {
                        if self.plan.corrupted(me, dst_global, seq) {
                            self.plan.corrupt_payload(v, me, dst_global, seq);
                            if self.tracer.enabled() {
                                self.tracer.instant(
                                    "fault",
                                    "corrupt",
                                    now,
                                    &[("dst", dst_global as f64)],
                                );
                            }
                        }
                        if let Some(depth) = self.plan.reorder_depth(me, dst_global, seq) {
                            hold_until = Some(seq + depth);
                        } else if self.plan.duplicated(me, dst_global, seq) {
                            let mut copy = env.clone();
                            copy.dup = true;
                            dup_copy = Some(copy);
                        }
                    }
                }
                Payload::Control(_) if self.plan.link_cut(me, dst_global, now) => {
                    self.stats.msgs_severed += 1;
                    env.data = Payload::Tombstone { words: 0 };
                    env.severed = true;
                }
                _ => {}
            }
            // Reordering must never let a later message overtake its own
            // flow (per-flow FIFO is what keeps results bit-identical)
            // or outlive the link's traffic: a same-(ctx, tag) data send
            // flushes held envelopes of that flow first, and any
            // control/notice/tombstone send flushes everything held.
            if !self.reorder_held[dst_global].is_empty() {
                let flush_all = !matches!(env.data, Payload::Words(_));
                let (fctx, ftag) = (env.ctx, env.tag);
                let held = std::mem::take(&mut self.reorder_held[dst_global]);
                let mut rest = Vec::new();
                for (until, h) in held {
                    if flush_all || (h.ctx == fctx && h.tag == ftag) {
                        self.transmit(dst_global, h)?;
                    } else {
                        rest.push((until, h));
                    }
                }
                self.reorder_held[dst_global] = rest;
            }
        }
        if let Some(until) = hold_until {
            self.stats.msgs_reordered += 1;
            if self.tracer.enabled() {
                let now = self.clock.now;
                self.tracer.instant(
                    "fault",
                    "reorder_hold",
                    now,
                    &[("dst", dst_global as f64), ("seq", env.seq as f64)],
                );
            }
            self.reorder_held[dst_global].push((until, env));
            return Ok(());
        }
        self.transmit(dst_global, env)?;
        if let Some(copy) = dup_copy {
            self.stats.msgs_duplicated += 1;
            self.transmit(dst_global, copy)?;
        }
        // Release held envelopes whose reorder window has elapsed (the
        // scripted number of later data messages has now been posted).
        if let Some(seq) = posted_seq {
            if !self.reorder_held[dst_global].is_empty() {
                let held = std::mem::take(&mut self.reorder_held[dst_global]);
                let mut rest = Vec::new();
                for (until, h) in held {
                    if until <= seq {
                        self.transmit(dst_global, h)?;
                    } else {
                        rest.push((until, h));
                    }
                }
                self.reorder_held[dst_global] = rest;
            }
        }
        Ok(())
    }

    /// Hands one envelope to the transport, counting send-side stats.
    fn transmit(&mut self, dst_global: usize, env: Envelope) -> Result<()> {
        match &env.data {
            Payload::Words(v) => {
                self.stats.msgs_sent += 1;
                self.stats.words_sent += v.len() as u64;
            }
            Payload::Control(_) => self.stats.ctrl_msgs_sent += 1,
            // Counted at drop/sever/abort/revive/park decision sites.
            Payload::Tombstone { .. }
            | Payload::Death { .. }
            | Payload::Abort { .. }
            | Payload::Rejoin { .. }
            | Payload::Parked { .. } => {}
        }
        let sent = self.endpoint.send(dst_global, env);
        if sent.is_err() && !self.plan.active() {
            // Without faults an unreachable peer is a program bug; with
            // faults a peer may legitimately have exited (died or gone
            // idle after recovery), and an eager send to it is a no-op.
            return Err(Error::Disconnected { peer: dst_global });
        }
        Ok(())
    }
}

/// A handle to a posted non-blocking receive. Obtain the data with
/// [`Communicator::wait`].
#[derive(Debug)]
#[must_use = "a RecvHandle does nothing until waited on"]
pub struct RecvHandle {
    ctx: u64,
    src_global: usize,
    /// Communicator-local source rank (for error reporting).
    src: Rank,
    tag: Tag,
    /// Absolute virtual-time deadline for the arrival, if the receive
    /// was posted with [`Communicator::irecv_timeout`].
    deadline: Option<f64>,
}

/// Outcome of one channel-charged receive
/// ([`Communicator::recv_channel`]).
#[derive(Debug)]
pub struct ChannelRecv {
    /// The received payload.
    pub data: Vec<f64>,
    /// Absolute virtual time at which the concurrent comm channel
    /// finished the transfer (use as the departure time when forwarding
    /// a chunk derived from this one).
    pub ready_at: f64,
    /// Transfer seconds charged to the channel for this receive.
    pub transfer: f64,
}

/// RAII guard for a scope span opened with
/// [`Communicator::trace_span`]. Closes the span at the current virtual
/// time when dropped, so begin/end stay balanced through every early
/// return. Inert (no allocation, no clock access) when tracing is
/// disabled.
#[must_use = "the span closes when the guard is dropped"]
pub struct TraceSpan {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let mut i = inner.borrow_mut();
            let now = i.clock.now;
            i.tracer.end(now);
        }
    }
}

/// An MPI-like communicator over a group of simulated ranks.
///
/// Cloning is cheap (the member table is shared); clones alias the same
/// thread-local clock and mailbox.
#[derive(Clone)]
pub struct Communicator {
    pub(crate) inner: Rc<RefCell<Inner>>,
    /// Context id separating this communicator's traffic.
    ctx: u64,
    /// Global ranks of the members, in rank order.
    members: Arc<Vec<usize>>,
    /// This thread's rank within `members`.
    rank: Rank,
}

impl Communicator {
    pub(crate) fn world(inner: Rc<RefCell<Inner>>) -> Self {
        let (rank, size) = {
            let i = inner.borrow();
            (i.global_rank, i.world_size)
        };
        Communicator {
            inner,
            ctx: 0,
            members: Arc::new((0..size).collect()),
            rank,
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The global (world) rank backing a communicator-local rank.
    pub fn global_rank_of(&self, rank: Rank) -> Result<usize> {
        self.members
            .get(rank)
            .copied()
            .ok_or(Error::RankOutOfRange {
                rank,
                size: self.members.len(),
            })
    }

    /// The network model shared by all ranks.
    pub fn model(&self) -> NetModel {
        self.inner.borrow().model
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> f64 {
        self.inner.borrow().clock.now
    }

    /// Snapshot of this rank's virtual clock.
    pub fn clock(&self) -> Clock {
        self.inner.borrow().clock
    }

    /// Charges local compute time for `flops` floating-point operations.
    pub fn advance_flops(&self, flops: f64) {
        let mut i = self.inner.borrow_mut();
        let m = i.model;
        let t0 = i.clock.now;
        i.clock.advance_flops(flops, &m);
        if i.tracer.enabled() {
            let t1 = i.clock.now;
            i.tracer.span(
                "compute",
                "compute",
                Track::Main,
                t0,
                t1,
                &[("flops", flops)],
            );
        }
    }

    /// Charges an explicit amount of local compute time.
    pub fn advance_compute(&self, seconds: f64) {
        let mut i = self.inner.borrow_mut();
        let t0 = i.clock.now;
        i.clock.advance_compute(seconds);
        if i.tracer.enabled() {
            let t1 = i.clock.now;
            i.tracer
                .span("compute", "compute", Track::Main, t0, t1, &[]);
        }
    }

    /// Sends `data` to `dst` with `tag`. Eager: never blocks, charges no
    /// local virtual time (cost is paid by the receiver).
    pub fn send(&self, dst: Rank, tag: Tag, data: &[f64]) -> Result<()> {
        self.send_vec(dst, tag, data.to_vec())
    }

    /// Like [`Communicator::send`] but takes ownership, avoiding a copy.
    pub fn send_vec(&self, dst: Rank, tag: Tag, data: Vec<f64>) -> Result<()> {
        let dst_global = self.global_rank_of(dst)?;
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        let env = Envelope {
            ctx: self.ctx,
            src: i.global_rank,
            tag,
            depart: i.clock.now,
            seq: 0,
            csum: None,
            dup: false,
            severed: false,
            data: Payload::Words(data),
        };
        i.post(dst_global, env)
    }

    /// Non-blocking send. Sends in this simulator are already eager —
    /// they never block and charge no local time — so `isend` is
    /// [`Communicator::send_vec`] under the MPI-style name; it exists
    /// so non-blocking code reads symmetrically with
    /// [`Communicator::recv_channel`].
    pub fn isend(&self, dst: Rank, tag: Tag, data: Vec<f64>) -> Result<()> {
        self.send_vec(dst, tag, data)
    }

    /// Eager send whose envelope departs at the explicit virtual time
    /// `depart` instead of `clock.now`. Non-blocking collectives use
    /// this for chunk forwarding: a chunk produced *by the comm
    /// channel* at time `t` leaves at `t`, which may be earlier (the
    /// main timeline is deep in compute) or later (the channel is
    /// backed up) than `now`.
    pub fn send_vec_at(&self, dst: Rank, tag: Tag, data: Vec<f64>, depart: f64) -> Result<()> {
        debug_assert!(depart >= 0.0, "negative departure time");
        let dst_global = self.global_rank_of(dst)?;
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        let env = Envelope {
            ctx: self.ctx,
            src: i.global_rank,
            tag,
            depart,
            seq: 0,
            csum: None,
            dup: false,
            severed: false,
            data: Payload::Words(data),
        };
        i.post(dst_global, env)
    }

    /// Blocking receive of a message from `src` with `tag`. Advances the
    /// virtual clock to `max(now, depart) + α + β·words` (plus any
    /// injected straggler delay).
    ///
    /// When a fault plan with a default timeout is active, behaves like
    /// [`Communicator::recv_timeout`] with that timeout; otherwise waits
    /// indefinitely for late messages, but still returns
    /// [`Error::Timeout`] (with `waited = ∞`) for a message the plan
    /// provably dropped, and [`Error::RankFailed`] /
    /// [`Error::Aborted`] when the peer died or abandoned the phase.
    pub fn recv(&self, src: Rank, tag: Tag) -> Result<Vec<f64>> {
        let timeout = self.inner.borrow().plan.default_timeout();
        self.recv_deadline(src, tag, timeout)
    }

    /// Blocking receive that gives up after `timeout` virtual seconds.
    ///
    /// If no matching message can complete by `now + timeout`, the clock
    /// is charged the full wait (as communication time) and
    /// [`Error::Timeout`] is returned. A late — not dropped — message
    /// stays buffered, so a retry that waits long enough still gets it:
    /// see [`Communicator::recv_retry`].
    pub fn recv_timeout(&self, src: Rank, tag: Tag, timeout: f64) -> Result<Vec<f64>> {
        assert!(timeout > 0.0, "timeout must be positive");
        self.recv_deadline(src, tag, Some(timeout))
    }

    /// [`Communicator::recv_timeout`] with `attempts` tries, advancing
    /// the virtual clock by `backoff` (communication time) between
    /// consecutive tries. Retries only on [`Error::Timeout`]; any other
    /// error propagates immediately. Constant backoff — see
    /// [`Communicator::recv_retry_policy`] for exponential + jitter.
    pub fn recv_retry(
        &self,
        src: Rank,
        tag: Tag,
        timeout: f64,
        attempts: usize,
        backoff: f64,
    ) -> Result<Vec<f64>> {
        self.recv_retry_policy(src, tag, &RetryPolicy::fixed(timeout, attempts, backoff))
    }

    /// Retrying receive under a full [`RetryPolicy`]: `attempts`
    /// windows of `timeout`, separated by `backoff · factor^(i−1)`
    /// pauses each stretched by up to `jitter` (a deterministic draw
    /// keyed on the plan seed, the link, and the retry count — so
    /// contending retriers desynchronize, yet replays are
    /// bit-identical). Retries only on [`Error::Timeout`].
    pub fn recv_retry_policy(&self, src: Rank, tag: Tag, policy: &RetryPolicy) -> Result<Vec<f64>> {
        assert!(policy.attempts > 0, "need at least one attempt");
        let mut last = None;
        let mut pause = policy.backoff;
        for attempt in 0..policy.attempts {
            if attempt > 0 {
                let mut i = self.inner.borrow_mut();
                i.stats.retries += 1;
                let stretch = if policy.jitter > 0.0 {
                    let src_global = self.global_rank_of(src)?;
                    let u = fault::jitter_unit(
                        i.plan.seed(),
                        i.global_rank as u64,
                        src_global as u64,
                        i.stats.retries,
                    );
                    policy.jitter * u
                } else {
                    0.0
                };
                let t0 = i.clock.now;
                i.clock.advance_comm(pause * (1.0 + stretch));
                if i.tracer.enabled() {
                    let t1 = i.clock.now;
                    i.tracer.span(
                        "comm",
                        "backoff",
                        Track::Main,
                        t0,
                        t1,
                        &[("attempt", attempt as f64)],
                    );
                }
                pause *= policy.factor;
            }
            match self.recv_timeout(src, tag, policy.timeout) {
                Err(e @ Error::Timeout { .. }) => last = Some(e),
                other => return other,
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn recv_deadline(&self, src: Rank, tag: Tag, timeout: Option<f64>) -> Result<Vec<f64>> {
        let src_global = self.global_rank_of(src)?;
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        let posted_at = i.clock.now;
        let deadline = timeout.map(|t| i.clock.now + t);
        match i.match_recv(self.ctx, src_global, tag, true)? {
            Matched::Data(env) => {
                let words = env.data.words();
                let me = i.global_rank;
                let (fa, fb) = i.topo.factors(env.src, me);
                let extra = if i.plan.active() {
                    i.plan.extra_delay(env.src, me, env.seq)
                } else {
                    0.0
                };
                let transfer = fa * i.model.alpha + fb * i.model.beta * words as f64;
                // A straggler delay holds the message in flight: it
                // postpones availability (like a later departure) rather
                // than lengthening the receiver-side transfer, so a
                // retry that waits long enough can still catch it.
                let avail = env.depart + extra;
                if let Some(d) = deadline {
                    if i.clock.now.max(avail) + transfer > d {
                        i.unmatch(env);
                        i.stats.timeouts += 1;
                        i.clock.sync_to(d);
                        if i.tracer.enabled() {
                            let t1 = i.clock.now;
                            i.tracer.span(
                                "comm",
                                "timeout",
                                Track::Main,
                                posted_at,
                                t1,
                                &[("peer", src_global as f64)],
                            );
                        }
                        return Err(Error::Timeout {
                            rank: src,
                            tag,
                            waited: timeout.expect("deadline implies timeout"),
                        });
                    }
                }
                i.clock.complete_recv(avail, transfer);
                i.stats.transfer_secs += transfer;
                i.stats.straggler_wait += extra;
                let waited = i.clock.now - posted_at;
                i.observe_peer(src_global, Some(waited));
                if i.tracer.enabled() {
                    let t1 = i.clock.now;
                    i.tracer.span(
                        "comm",
                        "recv",
                        Track::Main,
                        posted_at,
                        t1,
                        &[("peer", src_global as f64), ("words", words as f64)],
                    );
                }
                if let (Some(csum), Payload::Words(v)) = (env.csum, &env.data) {
                    if fault::checksum(v) != csum {
                        // Envelope rejections always escalate to the
                        // caller's rollback path — there is no in-place
                        // repair for a wire flip.
                        i.stats.corrupt_recovered += 1;
                        let ctx = i.fault_ctx;
                        return Err(Error::Corrupted {
                            rank: src,
                            tag,
                            ctx,
                        });
                    }
                }
                match env.data {
                    Payload::Words(v) => Ok(v),
                    _ => unreachable!("non-data payload matched on data tag"),
                }
            }
            Matched::Dropped => {
                i.stats.timeouts += 1;
                let waited = match deadline {
                    Some(d) => {
                        i.clock.sync_to(d);
                        if i.tracer.enabled() {
                            let t1 = i.clock.now;
                            i.tracer.span(
                                "comm",
                                "timeout",
                                Track::Main,
                                posted_at,
                                t1,
                                &[("peer", src_global as f64)],
                            );
                        }
                        timeout.expect("deadline implies timeout")
                    }
                    // No deadline, but the simulator knows the message
                    // is lost: report an unbounded wait instead of
                    // hanging the thread forever.
                    None => f64::INFINITY,
                };
                Err(Error::Timeout {
                    rank: src,
                    tag,
                    waited,
                })
            }
            Matched::PeerDead(at) => Err(i.surface_death(src_global, at)),
            Matched::PeerAborted(culprit) => Err(Error::Aborted { culprit }),
            Matched::Unreachable(at) => Err(i.surface_unreachable(src_global, at)),
        }
    }

    /// Blocking receive into a caller-provided buffer; errors if the
    /// payload length differs from `buf.len()`.
    pub fn recv_into(&self, src: Rank, tag: Tag, buf: &mut [f64]) -> Result<()> {
        let v = self.recv(src, tag)?;
        if v.len() != buf.len() {
            return Err(Error::LengthMismatch {
                expected: buf.len(),
                got: v.len(),
            });
        }
        buf.copy_from_slice(&v);
        Ok(())
    }

    /// Posts a non-blocking receive. The matching message is considered
    /// to arrive at `depart + α + β·words` *independently of what this
    /// rank does meanwhile* — i.e. a perfectly overlapped transfer, the
    /// assumption the paper makes for halo exchanges (Fig. 3) and for
    /// Fig. 8's overlap study. Complete with [`Communicator::wait`].
    pub fn irecv(&self, src: Rank, tag: Tag) -> Result<RecvHandle> {
        let src_global = self.global_rank_of(src)?;
        Ok(RecvHandle {
            ctx: self.ctx,
            src_global,
            src,
            tag,
            deadline: None,
        })
    }

    /// Like [`Communicator::irecv`] but the arrival must happen within
    /// `timeout` virtual seconds of posting; a later arrival makes
    /// [`Communicator::wait`] return [`Error::Timeout`] at the deadline.
    pub fn irecv_timeout(&self, src: Rank, tag: Tag, timeout: f64) -> Result<RecvHandle> {
        assert!(timeout > 0.0, "timeout must be positive");
        let src_global = self.global_rank_of(src)?;
        let deadline = Some(self.inner.borrow().clock.now + timeout);
        Ok(RecvHandle {
            ctx: self.ctx,
            src_global,
            src,
            tag,
            deadline,
        })
    }

    /// Completes a non-blocking receive, clamping the clock forward to
    /// the arrival time if the data is not yet there. Honors the
    /// handle's deadline (see [`Communicator::irecv_timeout`]) and
    /// surfaces drops, peer death, and aborts like
    /// [`Communicator::recv`].
    pub fn wait(&self, handle: RecvHandle) -> Result<Vec<f64>> {
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        let posted_at = i.clock.now;
        match i.match_recv(handle.ctx, handle.src_global, handle.tag, true)? {
            Matched::Data(env) => {
                let words = env.data.words();
                let me = i.global_rank;
                let (fa, fb) = i.topo.factors(env.src, me);
                let extra = if i.plan.active() {
                    i.plan.extra_delay(env.src, me, env.seq)
                } else {
                    0.0
                };
                let arrival =
                    env.depart + fa * i.model.alpha + fb * i.model.beta * words as f64 + extra;
                if let Some(d) = handle.deadline {
                    if arrival > d {
                        i.unmatch(env);
                        i.stats.timeouts += 1;
                        let waited = (d - i.clock.now).max(0.0);
                        i.clock.sync_to(d);
                        if i.tracer.enabled() {
                            let t1 = i.clock.now;
                            i.tracer.span(
                                "comm",
                                "timeout",
                                Track::Main,
                                posted_at,
                                t1,
                                &[("peer", handle.src_global as f64)],
                            );
                        }
                        return Err(Error::Timeout {
                            rank: handle.src,
                            tag: handle.tag,
                            waited,
                        });
                    }
                }
                i.clock.complete_wait(arrival);
                i.stats.transfer_secs += fa * i.model.alpha + fb * i.model.beta * words as f64;
                i.stats.straggler_wait += extra;
                let waited = i.clock.now - posted_at;
                i.observe_peer(handle.src_global, Some(waited));
                if i.tracer.enabled() {
                    let t1 = i.clock.now;
                    i.tracer.span(
                        "comm",
                        "wait",
                        Track::Main,
                        posted_at,
                        t1,
                        &[("peer", handle.src_global as f64), ("words", words as f64)],
                    );
                }
                if let (Some(csum), Payload::Words(v)) = (env.csum, &env.data) {
                    if fault::checksum(v) != csum {
                        i.stats.corrupt_recovered += 1;
                        let ctx = i.fault_ctx;
                        return Err(Error::Corrupted {
                            rank: handle.src,
                            tag: handle.tag,
                            ctx,
                        });
                    }
                }
                match env.data {
                    Payload::Words(v) => Ok(v),
                    _ => unreachable!("non-data payload matched on data tag"),
                }
            }
            Matched::Dropped => {
                i.stats.timeouts += 1;
                let waited = match handle.deadline {
                    Some(d) => {
                        let w = (d - i.clock.now).max(0.0);
                        i.clock.sync_to(d);
                        if i.tracer.enabled() {
                            let t1 = i.clock.now;
                            i.tracer.span(
                                "comm",
                                "timeout",
                                Track::Main,
                                posted_at,
                                t1,
                                &[("peer", handle.src_global as f64)],
                            );
                        }
                        w
                    }
                    None => f64::INFINITY,
                };
                Err(Error::Timeout {
                    rank: handle.src,
                    tag: handle.tag,
                    waited,
                })
            }
            Matched::PeerDead(at) => Err(i.surface_death(handle.src_global, at)),
            Matched::PeerAborted(culprit) => Err(Error::Aborted { culprit }),
            Matched::Unreachable(at) => Err(i.surface_unreachable(handle.src_global, at)),
        }
    }

    /// Progresses a non-blocking operation by one receive, charging the
    /// α–β transfer to the **concurrent comm channel** instead of the
    /// main timeline (see [`Clock::channel_transfer`]): the transfer
    /// starts when the data has departed the sender and this rank's
    /// channel is free, and the main clock does not move. Returns the
    /// payload, the absolute time the channel finished (the departure
    /// time for a forwarded chunk), and the seconds charged.
    ///
    /// The call may block the *OS thread* until the message is in the
    /// mailbox, but the matching is deterministic, so virtual time
    /// never depends on real-time interleaving.
    pub fn recv_channel(&self, src: Rank, tag: Tag) -> Result<ChannelRecv> {
        self.recv_channel_deadline(src, tag, None)
    }

    /// [`Communicator::recv_channel`] with an optional deadline for
    /// fault-tolerant callers: if the transfer cannot finish within
    /// `timeout` virtual seconds of the channel's current horizon
    /// (`max(now, channel_free_at)`), the main clock is charged the
    /// wait and [`Error::Timeout`] is returned. Drops, peer death, and
    /// aborts surface like [`Communicator::recv`].
    pub fn recv_channel_deadline(
        &self,
        src: Rank,
        tag: Tag,
        timeout: Option<f64>,
    ) -> Result<ChannelRecv> {
        let src_global = self.global_rank_of(src)?;
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        let posted_at = i.clock.now;
        let deadline = timeout.map(|t| i.clock.now.max(i.clock.comm_busy) + t);
        match i.match_recv(self.ctx, src_global, tag, true)? {
            Matched::Data(env) => {
                let words = env.data.words();
                let me = i.global_rank;
                let (fa, fb) = i.topo.factors(env.src, me);
                let extra = if i.plan.active() {
                    i.plan.extra_delay(env.src, me, env.seq)
                } else {
                    0.0
                };
                let transfer = fa * i.model.alpha + fb * i.model.beta * words as f64;
                let avail = env.depart + extra;
                if let Some(d) = deadline {
                    if i.clock.comm_busy.max(avail) + transfer > d {
                        i.unmatch(env);
                        i.stats.timeouts += 1;
                        i.clock.sync_to(d);
                        if i.tracer.enabled() {
                            let t1 = i.clock.now;
                            i.tracer.span(
                                "comm",
                                "timeout",
                                Track::Main,
                                posted_at,
                                t1,
                                &[("peer", src_global as f64)],
                            );
                        }
                        return Err(Error::Timeout {
                            rank: src,
                            tag,
                            waited: timeout.expect("deadline implies timeout"),
                        });
                    }
                }
                let ready_at = i.clock.channel_transfer(avail, transfer);
                i.stats.channel_secs += transfer;
                i.stats.straggler_wait += extra;
                i.observe_peer(src_global, None);
                if i.tracer.enabled() {
                    i.tracer.span(
                        "channel",
                        "xfer",
                        Track::Channel,
                        ready_at - transfer,
                        ready_at,
                        &[("peer", src_global as f64), ("words", words as f64)],
                    );
                }
                if let (Some(csum), Payload::Words(v)) = (env.csum, &env.data) {
                    if fault::checksum(v) != csum {
                        i.stats.corrupt_recovered += 1;
                        let ctx = i.fault_ctx;
                        return Err(Error::Corrupted {
                            rank: src,
                            tag,
                            ctx,
                        });
                    }
                }
                match env.data {
                    Payload::Words(v) => Ok(ChannelRecv {
                        data: v,
                        ready_at,
                        transfer,
                    }),
                    _ => unreachable!("non-data payload matched on data tag"),
                }
            }
            Matched::Dropped => {
                i.stats.timeouts += 1;
                let waited = match deadline {
                    Some(d) => {
                        i.clock.sync_to(d);
                        if i.tracer.enabled() {
                            let t1 = i.clock.now;
                            i.tracer.span(
                                "comm",
                                "timeout",
                                Track::Main,
                                posted_at,
                                t1,
                                &[("peer", src_global as f64)],
                            );
                        }
                        timeout.expect("deadline implies timeout")
                    }
                    None => f64::INFINITY,
                };
                Err(Error::Timeout {
                    rank: src,
                    tag,
                    waited,
                })
            }
            Matched::PeerDead(at) => Err(i.surface_death(src_global, at)),
            Matched::PeerAborted(culprit) => Err(Error::Aborted { culprit }),
            Matched::Unreachable(at) => Err(i.surface_unreachable(src_global, at)),
        }
    }

    /// Completes a non-blocking operation whose channel work finished
    /// at `ready_at`, having charged `charged` transfer seconds to the
    /// channel: blocks the main timeline forward to `ready_at` (the
    /// wait is communication time, counted in
    /// [`RankStats::comm_wait_secs`]) and credits whatever portion of
    /// the charged transfer ran concurrently to
    /// [`RankStats::overlapped_secs`].
    ///
    /// When tracing, the drain emits a `"drain"` span whose duration is
    /// **bit-identical** to the `comm_wait_secs` contribution and whose
    /// `"hidden"` argument is bit-identical to the `overlapped_secs`
    /// contribution — `trace_analyze` cross-checks both against
    /// [`RankStats`] at 1e-9 (they match exactly).
    pub fn complete_channel(&self, ready_at: f64, charged: f64) {
        let mut i = self.inner.borrow_mut();
        let t0 = i.clock.now;
        let wait = (ready_at - t0).max(0.0);
        let hidden = (charged - wait).max(0.0);
        i.clock.complete_wait(ready_at);
        i.stats.comm_wait_secs += wait;
        i.stats.overlapped_secs += hidden;
        if i.tracer.enabled() {
            // The span covers exactly the clock movement, so its
            // duration (`now - t0`) is the very same subtraction that
            // produced `wait` above — bit-identical, not just close.
            let t1 = i.clock.now;
            i.tracer.span(
                "drain",
                "drain",
                Track::Main,
                t0,
                t1,
                &[("charged", charged), ("hidden", hidden)],
            );
        }
    }

    /// Absolute virtual time at which this rank's concurrent comm
    /// channel is next free.
    pub fn channel_free_at(&self) -> f64 {
        self.inner.borrow().clock.comm_busy
    }

    /// Reserves a fresh base tag (a stride of 8 consecutive tags) for a
    /// non-blocking collective on this communicator, so multiple
    /// outstanding handles never cross-match each other's chunks. Every
    /// member of the communicator must launch its non-blocking
    /// operations in the same order (SPMD), like `split`.
    pub fn alloc_nb_tags(&self) -> Tag {
        let mut i = self.inner.borrow_mut();
        let seq = i.nb_seq.entry(self.ctx).or_insert(0);
        let base = NB_TAG_BASE + *seq * NB_TAG_STRIDE;
        *seq += 1;
        base
    }

    /// Counts a blocking all-reduce call in [`RankStats`].
    pub fn record_allreduce(&self) {
        self.inner.borrow_mut().stats.allreduce_calls += 1;
    }

    /// Counts a blocking all-gather call in [`RankStats`].
    pub fn record_allgather(&self) {
        self.inner.borrow_mut().stats.allgather_calls += 1;
    }

    /// Counts a non-blocking all-reduce launch in [`RankStats`].
    pub fn record_nb_allreduce(&self) {
        self.inner.borrow_mut().stats.nb_allreduce_calls += 1;
    }

    /// Counts a non-blocking all-gather launch in [`RankStats`].
    pub fn record_nb_allgather(&self) {
        self.inner.borrow_mut().stats.nb_allgather_calls += 1;
    }

    /// Simultaneous exchange with two (possibly equal) partners: sends
    /// to `dst`, then receives from `src`. The eager-send model makes
    /// this deadlock-free.
    pub fn sendrecv(&self, dst: Rank, send: &[f64], src: Rank, tag: Tag) -> Result<Vec<f64>> {
        self.send(dst, tag, send)?;
        self.recv(src, tag)
    }

    /// Zero-virtual-time control-plane send (communicator management).
    pub fn send_control(&self, dst: Rank, tag: Tag, data: Vec<u8>) -> Result<()> {
        let dst_global = self.global_rank_of(dst)?;
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        let env = Envelope {
            ctx: self.ctx,
            src: i.global_rank,
            tag,
            depart: 0.0,
            seq: 0,
            csum: None,
            dup: false,
            severed: false,
            data: Payload::Control(data),
        };
        i.post(dst_global, env)
    }

    /// Zero-virtual-time control-plane receive. The control plane is
    /// reliable (no drops/corruption), but still observes peer death and
    /// partition cuts (a severed control message surfaces as
    /// [`Error::Unreachable`]).
    pub fn recv_control(&self, src: Rank, tag: Tag) -> Result<Vec<u8>> {
        let src_global = self.global_rank_of(src)?;
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        match i.match_recv(self.ctx, src_global, tag, false)? {
            Matched::Data(env) => match env.data {
                Payload::Control(v) => {
                    i.observe_peer(src_global, None);
                    Ok(v)
                }
                _ => unreachable!("non-control payload matched on control tag"),
            },
            Matched::Dropped => unreachable!("control messages are never dropped"),
            Matched::PeerDead(at) => Err(i.surface_death(src_global, at)),
            Matched::PeerAborted(_) => unreachable!("aborts not honored on control plane"),
            Matched::Unreachable(at) => Err(i.surface_unreachable(src_global, at)),
        }
    }

    /// Dissemination barrier. Charges virtual time (⌈log₂ P⌉ rounds of
    /// empty messages, α each) and leaves every member's clock at the
    /// same value.
    pub fn barrier(&self) -> Result<()> {
        let p = self.size();
        if p <= 1 {
            return Ok(());
        }
        let r = self.rank;
        let mut k = 1usize;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k) % p;
            self.send(dst, BARRIER_TAG, &[])?;
            let _ = self.recv(src, BARRIER_TAG)?;
            k <<= 1;
        }
        // Dissemination leaves clocks equal when they started equal; to
        // make the invariant unconditional, synchronize explicitly
        // (free: clocks only move forward to the max).
        self.sync_clocks()
    }

    /// Synchronizes virtual clocks across the communicator to their
    /// maximum without charging any message cost. Control-plane helper
    /// for delimiting timed experiment phases.
    pub fn sync_clocks(&self) -> Result<()> {
        let p = self.size();
        if p <= 1 {
            return Ok(());
        }
        let mine = self.now();
        // Everyone sends its clock to everyone else (control traffic).
        for dst in 0..p {
            if dst != self.rank {
                self.send_control(dst, SYNC_TAG, mine.to_le_bytes().to_vec())?;
            }
        }
        let mut max = mine;
        for src in 0..p {
            if src != self.rank {
                let bytes = self.recv_control(src, SYNC_TAG)?;
                let t = f64::from_le_bytes(bytes[..8].try_into().expect("8-byte clock"));
                max = max.max(t);
            }
        }
        let mut i = self.inner.borrow_mut();
        let t0 = i.clock.now;
        i.clock.sync_to(max);
        if i.tracer.enabled() && i.clock.now > t0 {
            let t1 = i.clock.now;
            i.tracer.span("comm", "sync", Track::Main, t0, t1, &[]);
        }
        Ok(())
    }

    /// Resets this rank's virtual clock to zero (e.g. after a warm-up
    /// phase). Call under a [`Communicator::barrier`] or
    /// [`Communicator::sync_clocks`] to keep ranks consistent.
    ///
    /// Also discards any trace events recorded so far: the trace's
    /// timestamps are virtual times, and keeping pre-reset events would
    /// make the timeline run backwards.
    pub fn reset_clock(&self) {
        let mut i = self.inner.borrow_mut();
        i.clock = Clock::new();
        i.tracer.clear();
    }

    /// Splits the communicator into disjoint sub-communicators by
    /// `color`; members of each new communicator are ordered by
    /// `(key, old rank)`. All members must call `split` in the same
    /// order (SPMD), like `MPI_Comm_split`. Control-plane: free in
    /// virtual time.
    pub fn split(&self, color: u64, key: u64) -> Result<Communicator> {
        let p = self.size();
        let seq = {
            let mut i = self.inner.borrow_mut();
            i.split_seq += 1;
            i.split_seq
        };
        // Exchange (color, key) with every member.
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        for dst in 0..p {
            if dst != self.rank {
                self.send_control(dst, SPLIT_TAG + seq, payload.clone())?;
            }
        }
        let mut triples: Vec<(u64, u64, usize)> = vec![(color, key, self.rank)];
        for src in 0..p {
            if src != self.rank {
                let bytes = self.recv_control(src, SPLIT_TAG + seq)?;
                let c = u64::from_le_bytes(bytes[0..8].try_into().expect("color"));
                let k = u64::from_le_bytes(bytes[8..16].try_into().expect("key"));
                triples.push((c, k, src));
            }
        }
        let mut same: Vec<(u64, usize)> = triples
            .into_iter()
            .filter(|&(c, _, _)| c == color)
            .map(|(_, k, r)| (k, r))
            .collect();
        same.sort_unstable();
        let members: Vec<usize> = same.iter().map(|&(_, r)| self.members[r]).collect();
        let my_global = self.members[self.rank];
        let rank = members
            .iter()
            .position(|&g| g == my_global)
            .expect("splitting rank must belong to its own color group");
        // Derive a deterministic child context id (FNV-1a over parent
        // ctx, sequence number, and color).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.ctx, seq, color] {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        Ok(Communicator {
            inner: Rc::clone(&self.inner),
            ctx: h,
            members: Arc::new(members),
            rank,
        })
    }

    /// Views the communicator as a row-major `pr × pc` grid and returns
    /// `(row_comm, col_comm)` for this rank:
    ///
    /// * `row_comm` has size `pc` — in the paper's layout these are the
    ///   ranks holding the *same model shard* across batch shards, i.e.
    ///   the "Pc-sized groups" used for the ∆W all-reduce.
    /// * `col_comm` has size `pr` — the ranks holding the *same batch
    ///   shard* across model shards, i.e. the "Pr-sized groups" used for
    ///   the forward all-gather and the ∆X all-reduce.
    ///
    /// Requires `pr * pc == self.size()`.
    pub fn grid(&self, pr: usize, pc: usize) -> Result<(Communicator, Communicator)> {
        if pr * pc != self.size() {
            return Err(Error::CollectiveMismatch(format!(
                "grid {pr}x{pc} does not tile a communicator of size {}",
                self.size()
            )));
        }
        let i = self.rank / pc; // row index (model shard)
        let j = self.rank % pc; // column index (batch shard)
        let row = self.split(i as u64, j as u64)?;
        let col = self.split(j as u64, i as u64)?;
        Ok((row, col))
    }

    /// This rank's traffic counters so far.
    pub fn stats(&self) -> RankStats {
        self.inner.borrow().stats
    }

    /// Global ranks of this communicator's members, in rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Broadcasts an abort notice for the current data-plane phase to
    /// every rank in the *world*, blaming global rank `culprit`. Peers
    /// blocked on a receive from this rank unblock with
    /// [`Error::Aborted`]; the notice is honored only while the
    /// receiver is in the same recovery epoch (stale aborts from before
    /// a recovery are ignored).
    pub fn send_abort(&self, culprit: usize) -> Result<()> {
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        i.flush_all_held();
        i.stats.aborts_sent += 1;
        let me = i.global_rank;
        let now = i.clock.now;
        let epoch = i.fault_epoch;
        for dst in 0..i.world_size {
            if dst != me {
                i.stats.ctrl_msgs_sent += 1;
                let severed = i.plan.link_cut(me, dst, now);
                if severed {
                    i.stats.msgs_severed += 1;
                }
                let _ = i.endpoint.send(
                    dst,
                    Envelope {
                        ctx: 0,
                        src: me,
                        tag: 0,
                        depart: now,
                        seq: 0,
                        csum: None,
                        dup: false,
                        severed,
                        data: Payload::Abort { culprit, epoch },
                    },
                );
            }
        }
        Ok(())
    }

    /// This rank's current recovery epoch (starts at 0; bumped by
    /// [`Communicator::advance_fault_epoch`] after each recovery).
    pub fn fault_epoch(&self) -> u64 {
        self.inner.borrow().fault_epoch
    }

    /// Enters the next recovery epoch: abort notices from earlier
    /// epochs become stale and are pruned. Call on every survivor at
    /// the same point of the recovery protocol (SPMD).
    pub fn advance_fault_epoch(&self) {
        let mut i = self.inner.borrow_mut();
        i.fault_epoch += 1;
        let epoch = i.fault_epoch;
        i.aborted_peers.retain(|_, &mut (_, e)| e >= epoch);
    }

    /// Failure-agreement exchange: every member broadcasts `payload`
    /// (control plane, free in virtual time) and collects every other
    /// member's, observing deaths instead of hanging. Returns one entry
    /// per member rank: `Some(bytes)` for a live member (own slot
    /// included), `None` for a dead one.
    ///
    /// The broadcast is atomic with respect to this rank's own scripted
    /// death — the death check runs once, before any send — so every
    /// peer observes the same thing: either the full round or a death
    /// notice, never a partial round. All members must call
    /// `fault_sync` the same number of times (SPMD), like `split`.
    pub fn fault_sync(&self, payload: Vec<u8>) -> Result<Vec<Option<Vec<u8>>>> {
        let p = self.size();
        let (tag, me_global) = {
            let mut i = self.inner.borrow_mut();
            i.check_failed()?;
            i.fault_sync_seq += 1;
            let tag = FAULT_SYNC_TAG + i.fault_sync_seq;
            let me = i.global_rank;
            let now = i.clock.now;
            for &dst_global in self.members.iter() {
                if dst_global != me {
                    i.stats.ctrl_msgs_sent += 1;
                    // A round message that would cross an active cut is
                    // demoted to a severed marker: the far side resolves
                    // this rank as unreachable instead of reading the
                    // round payload (nothing crosses a partition).
                    let severed = i.plan.active() && i.plan.link_cut(me, dst_global, now);
                    let data = if severed {
                        i.stats.msgs_severed += 1;
                        Payload::Tombstone { words: 0 }
                    } else {
                        Payload::Control(payload.clone())
                    };
                    let _ = i.endpoint.send(
                        dst_global,
                        Envelope {
                            ctx: self.ctx,
                            src: me,
                            tag,
                            depart: 0.0,
                            seq: 0,
                            csum: None,
                            dup: false,
                            severed,
                            data,
                        },
                    );
                }
            }
            (tag, me)
        };
        let mut out = Vec::with_capacity(p);
        for member in 0..p {
            let src_global = self.members[member];
            if src_global == me_global {
                out.push(Some(payload.clone()));
                continue;
            }
            let mut i = self.inner.borrow_mut();
            match i.match_recv(self.ctx, src_global, tag, false)? {
                Matched::Data(env) => match env.data {
                    Payload::Control(v) => {
                        i.observe_peer(src_global, None);
                        out.push(Some(v));
                    }
                    _ => unreachable!("non-control payload on fault_sync tag"),
                },
                Matched::PeerDead(at) => {
                    // Record + count the detection, but keep collecting:
                    // the round must produce a full survivor picture.
                    let _ = i.surface_death(src_global, at);
                    out.push(None);
                }
                Matched::Unreachable(at) => {
                    // An unreachable member's slot resolves to None, like
                    // a dead one: agreement proceeds within the fragment.
                    let _ = i.surface_unreachable(src_global, at);
                    out.push(None);
                }
                Matched::Dropped => unreachable!("control messages are never dropped"),
                Matched::PeerAborted(_) => unreachable!("aborts not honored on control plane"),
            }
        }
        Ok(out)
    }

    /// Deterministically builds the communicator of survivors after the
    /// global ranks in `dead` failed, with **no communication**: every
    /// survivor that calls this with the same `dead` set and `epoch`
    /// derives the same context id and member table (members keep their
    /// relative order). Returns [`Error::RankFailed`] for a caller that
    /// is itself in `dead`.
    pub fn shrink_exclude(&self, dead: &[usize], epoch: u64) -> Result<Communicator> {
        let members: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|g| !dead.contains(g))
            .collect();
        let my_global = self.members[self.rank];
        let rank = members
            .iter()
            .position(|&g| g == my_global)
            .ok_or(Error::RankFailed { rank: my_global })?;
        // FNV-1a over parent ctx, a shrink domain separator, the epoch,
        // and the surviving member list.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.ctx);
        mix(0x5352_494e_4b21); // "SRINK!" domain separator
        mix(epoch);
        for &g in &members {
            mix(g as u64);
        }
        Ok(Communicator {
            inner: Rc::clone(&self.inner),
            ctx: h,
            members: Arc::new(members),
            rank,
        })
    }

    /// Fast-forwards this rank's split-sequence counter to at least
    /// `seq`. Child communicator contexts are derived from `(parent
    /// ctx, split counter, color)`; a fault can interrupt different
    /// ranks at different points of a collective `split` sequence,
    /// desynchronizing the counter. Recovery protocols call this on
    /// every survivor with the same value (e.g. `epoch * 1000`) before
    /// rebuilding sub-communicators, restoring the invariant that all
    /// members derive identical child contexts.
    pub fn align_split_seq(&self, seq: u64) {
        let mut i = self.inner.borrow_mut();
        i.split_seq = i.split_seq.max(seq);
    }

    /// Global ranks this rank has observed to be dead, with their death
    /// times (populated as notices are drained; a peer may be dead and
    /// not yet observed here).
    pub fn known_dead(&self) -> Vec<(usize, f64)> {
        self.inner
            .borrow()
            .dead_peers
            .iter()
            .map(|(&r, &t)| (r, t))
            .collect()
    }

    /// Records checkpoint volume written by a fault-tolerant trainer.
    pub fn record_checkpoint_words(&self, words: u64) {
        self.inner.borrow_mut().stats.ckpt_words += words;
    }

    /// Records virtual time a fault-tolerant trainer spent in recovery.
    pub fn record_recovery_secs(&self, secs: f64) {
        self.inner.borrow_mut().stats.recovery_secs += secs;
    }

    // --- silent data corruption --------------------------------------

    /// Registers the training-phase context (iteration, op counter)
    /// attached to corruption errors surfaced while it is set; pass
    /// `None` at phase exit. The context is advisory — it never
    /// affects matching or timing.
    pub fn set_fault_ctx(&self, ctx: Option<crate::error::FaultCtx>) {
        self.inner.borrow_mut().fault_ctx = ctx;
    }

    /// The currently registered training-phase context, if any.
    pub fn fault_ctx(&self) -> Option<crate::error::FaultCtx> {
        self.inner.borrow().fault_ctx
    }

    /// Drains the scripted compute bit flips for this rank's `op`-th
    /// GEMM of iteration `iter`: each matching plan entry not yet spent
    /// on this rank is marked spent, counted in
    /// [`RankStats::bitflips_compute`], announced as a trace instant,
    /// and returned for the caller (the GEMM wrapper) to apply to the
    /// product it just computed. Spend-once means a rollback/replay of
    /// the same iteration re-executes clean — exactly the semantics a
    /// transient SDC event has on real hardware.
    pub fn take_compute_flips(&self, iter: u64, op: u64) -> Vec<fault::BitFlip> {
        let mut i = self.inner.borrow_mut();
        if !i.plan.has_bitflips() {
            return Vec::new();
        }
        let g = i.global_rank;
        let flips: Vec<fault::BitFlip> = i
            .plan
            .compute_flips_at(g, iter, op)
            .into_iter()
            .filter(|f| !i.compute_flips_spent[f.entry])
            .collect();
        for f in &flips {
            i.compute_flips_spent[f.entry] = true;
            i.stats.bitflips_compute += 1;
            if i.tracer.enabled() {
                let t = i.clock.now;
                i.tracer.instant(
                    "fault",
                    "bitflip_compute",
                    t,
                    &[
                        ("iter", iter as f64),
                        ("op", op as f64),
                        ("bit", f.bit as f64),
                    ],
                );
            }
        }
        flips
    }

    /// Drains the scripted memory bit flips for this rank at the start
    /// of iteration `iter` (same spend-once semantics as
    /// [`Communicator::take_compute_flips`]); the caller applies them
    /// to its resident weight words.
    pub fn take_memory_flips(&self, iter: u64) -> Vec<fault::BitFlip> {
        let mut i = self.inner.borrow_mut();
        if !i.plan.has_bitflips() {
            return Vec::new();
        }
        let g = i.global_rank;
        let flips: Vec<fault::BitFlip> = i
            .plan
            .memory_flips_at(g, iter)
            .into_iter()
            .filter(|f| !i.memory_flips_spent[f.entry])
            .collect();
        for f in &flips {
            i.memory_flips_spent[f.entry] = true;
            i.stats.bitflips_memory += 1;
            if i.tracer.enabled() {
                let t = i.clock.now;
                i.tracer.instant(
                    "fault",
                    "bitflip_memory",
                    t,
                    &[("iter", iter as f64), ("bit", f.bit as f64)],
                );
            }
        }
        flips
    }

    /// Records an ABFT in-place correction (detected corruption that
    /// needed **no** rollback) and announces it as a trace instant.
    pub fn record_corrupt_corrected(&self, iter: u64, op: u64) {
        let mut i = self.inner.borrow_mut();
        i.stats.corrupt_corrected += 1;
        if i.tracer.enabled() {
            let t = i.clock.now;
            i.tracer.instant(
                "fault",
                "abft_correct",
                t,
                &[("iter", iter as f64), ("op", op as f64)],
            );
        }
    }

    /// Records a detected corruption escalated to rollback/replay (an
    /// uncorrectable ABFT residual or a weight-audit failure).
    pub fn record_corrupt_recovered(&self, iter: u64, op: u64) {
        let mut i = self.inner.borrow_mut();
        i.stats.corrupt_recovered += 1;
        if i.tracer.enabled() {
            let t = i.clock.now;
            i.tracer.instant(
                "fault",
                "sdc_escalate",
                t,
                &[("iter", iter as f64), ("op", op as f64)],
            );
        }
    }

    // --- tracing -----------------------------------------------------

    /// Whether event tracing is enabled on this rank. Callers adding
    /// expensive annotations should gate on this.
    pub fn trace_enabled(&self) -> bool {
        self.inner.borrow().tracer.enabled()
    }

    /// Emits an instantaneous trace event at the current virtual time.
    /// No-op (one boolean test) when tracing is disabled.
    pub fn trace_instant(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, f64)],
    ) {
        let mut i = self.inner.borrow_mut();
        if i.tracer.enabled() {
            let t = i.clock.now;
            i.tracer.instant(cat, name, t, args);
        }
    }

    /// Opens a scope span starting at the current virtual time and
    /// returns a guard that closes it (at the then-current virtual
    /// time) when dropped — including on early returns through `?`.
    /// When tracing is disabled the guard is inert.
    ///
    /// Scope spans nest: collectives open one around their whole
    /// schedule, trainers around forward/backward phases. The leaf
    /// spans emitted by the communicator itself (`compute`, `comm`,
    /// `drain`, `fault`) appear nested inside them in the Chrome Trace
    /// view.
    #[must_use = "the span closes when the guard is dropped"]
    pub fn trace_span(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, f64)],
    ) -> TraceSpan {
        let mut i = self.inner.borrow_mut();
        if !i.tracer.enabled() {
            return TraceSpan { inner: None };
        }
        let t0 = i.clock.now;
        i.tracer.begin(cat, name, t0, args);
        TraceSpan {
            inner: Some(Rc::clone(&self.inner)),
        }
    }

    // --- elastic membership ------------------------------------------

    /// The scripted rejoin time of this (currently dead) rank, if any:
    /// the earliest [`FaultPlan::rejoin`] entry strictly after the kill
    /// that felled it.
    pub fn my_rejoin_time(&self) -> Option<f64> {
        let i = self.inner.borrow();
        let died_at = i.died_at?;
        i.plan.rejoin_time_after(i.global_rank, died_at)
    }

    /// Revives this rank at its scripted rejoin time: clears the death
    /// flag, spends every kill at or before the rejoin time,
    /// fast-forwards the clock to it, and broadcasts a
    /// [`Payload::Rejoin`] announcement. Returns the rejoin time, or
    /// `None` when the rank is not dead or has no scheduled rejoin.
    pub fn revive(&self) -> Option<f64> {
        let mut i = self.inner.borrow_mut();
        if !i.died {
            return None;
        }
        let died_at = i.died_at?;
        let at = i.plan.rejoin_time_after(i.global_rank, died_at)?;
        i.died = false;
        i.died_at = None;
        i.revive_floor = at;
        let t0 = i.clock.now;
        i.clock.sync_to(at);
        if i.tracer.enabled() {
            let t1 = i.clock.now;
            if t1 > t0 {
                i.tracer.span("fault", "dead_gap", Track::Main, t0, t1, &[]);
            }
            i.tracer.instant("fault", "rejoin", t1, &[("at", at)]);
        }
        i.stats.rejoins += 1;
        let me = i.global_rank;
        for dst in 0..i.world_size {
            if dst != me {
                i.stats.ctrl_msgs_sent += 1;
                let severed = i.plan.link_cut(me, dst, at);
                if severed {
                    i.stats.msgs_severed += 1;
                }
                let _ = i.endpoint.send(
                    dst,
                    Envelope {
                        ctx: 0,
                        src: me,
                        tag: 0,
                        depart: at,
                        seq: 0,
                        csum: None,
                        dup: false,
                        severed,
                        data: Payload::Rejoin { at },
                    },
                );
            }
        }
        Some(at)
    }

    /// Whether the fault plan schedules `global` — a peer this rank has
    /// observed dead — to have rejoined by this rank's current virtual
    /// time. A pure function of the plan, the observed death time, and
    /// the local clock, so every survivor that shares the same death
    /// observation answers identically at the same protocol point.
    pub fn rejoin_ready(&self, global: usize) -> bool {
        let i = self.inner.borrow();
        match i.dead_peers.get(&global) {
            Some(&died_at) => i
                .plan
                .rejoin_time_after(global, died_at)
                .is_some_and(|t| t <= i.clock.now),
            None => false,
        }
    }

    /// Clears the death/abort/health records of re-admitted ranks,
    /// restoring them as live peers. SPMD: every participant of a
    /// recovery must call this with the same set at the same protocol
    /// point.
    pub fn readmit(&self, ranks: &[usize]) {
        let mut i = self.inner.borrow_mut();
        for &r in ranks {
            i.dead_peers.remove(&r);
            i.dead_surfaced.remove(&r);
            i.aborted_peers.remove(&r);
            i.rejoin_notices.remove(&r);
            i.unreachable_peers.remove(&r);
            i.unreachable_surfaced.remove(&r);
            i.health.reset(r);
        }
    }

    /// Whether a peer this rank resolved as unreachable is ready for
    /// re-admission: the fault plan shows no remaining cut between the
    /// pair at this rank's current virtual time, and the peer is
    /// plan-alive (not killed without a rejoin behind the cut). A pure
    /// function of the plan, the local unreachability record, and the
    /// clock — survivors sharing the observation answer identically at
    /// the same protocol point, like [`Communicator::rejoin_ready`].
    pub fn heal_ready(&self, global: usize) -> bool {
        let i = self.inner.borrow();
        if !i.unreachable_peers.contains_key(&global) || i.dead_peers.contains_key(&global) {
            return false;
        }
        let now = i.clock.now;
        !i.plan.pair_cut(global, i.global_rank, now) && i.plan.alive_at(global, now)
    }

    /// Global ranks this rank has resolved unreachable (severed by a
    /// partition or parked), with the virtual time of the resolving
    /// observation. Cleared per rank by [`Communicator::readmit`].
    pub fn known_unreachable(&self) -> Vec<(usize, f64)> {
        self.inner
            .borrow()
            .unreachable_peers
            .iter()
            .map(|(&r, &t)| (r, t))
            .collect()
    }

    /// Parks this rank after losing quorum in a partition: flushes any
    /// held transport state, broadcasts a [`Payload::Parked`] notice as
    /// its **last act** before going silent (peers blocked on this rank
    /// resolve it as unreachable instead of hanging), and — when every
    /// partition active now has a scripted heal — fast-forwards the
    /// clock to the heal horizon, where the caller should wait for
    /// re-admission. Returns the heal horizon: `None` when no partition
    /// is active at the current time, `Some(∞)` when one never heals
    /// (the caller cannot return; treat as fatal).
    pub fn park(&self) -> Result<Option<f64>> {
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        i.flush_all_held();
        i.stats.parks += 1;
        let me = i.global_rank;
        let now = i.clock.now;
        if i.tracer.enabled() {
            i.tracer.instant("quorum", "park", now, &[]);
        }
        for dst in 0..i.world_size {
            if dst != me {
                i.stats.ctrl_msgs_sent += 1;
                let severed = i.plan.link_cut(me, dst, now);
                if severed {
                    i.stats.msgs_severed += 1;
                }
                let _ = i.endpoint.send(
                    dst,
                    Envelope {
                        ctx: 0,
                        src: me,
                        tag: 0,
                        depart: now,
                        seq: 0,
                        csum: None,
                        dup: false,
                        severed,
                        data: Payload::Parked { at: now },
                    },
                );
            }
        }
        let horizon = i.plan.heal_horizon(now);
        if let Some(h) = horizon {
            if h.is_finite() {
                let t0 = i.clock.now;
                i.clock.sync_to(h);
                if i.tracer.enabled() {
                    let t1 = i.clock.now;
                    if t1 > t0 {
                        i.tracer.span("quorum", "parked", Track::Main, t0, t1, &[]);
                    }
                    i.tracer.instant("quorum", "heal", t1, &[]);
                }
            }
        }
        Ok(horizon)
    }

    /// The heal horizon of the fault plan at this rank's current virtual
    /// time: the latest scripted heal among partitions active now, or
    /// `Some(∞)` when one never heals, or `None` when no partition is
    /// active. See [`crate::FaultPlan::heal_horizon`].
    pub fn heal_horizon(&self) -> Option<f64> {
        let i = self.inner.borrow();
        i.plan.heal_horizon(i.clock.now)
    }

    /// Blocks until a control message with `tag` arrives on this
    /// communicator's context from *any* source, buffering everything
    /// else. Used by a revived rank to wait for the survivors' welcome.
    /// Which sender wins is a real-time race, so every sender must send
    /// byte-identical payloads for the result to be deterministic.
    pub fn await_control_any(&self, tag: Tag) -> Result<Vec<u8>> {
        let mut i = self.inner.borrow_mut();
        i.check_failed()?;
        // Flush-before-block, as in `match_recv`.
        i.flush_all_held();
        for src in 0..i.world_size {
            let key = (self.ctx, src, tag);
            let popped = i.pending.get_mut(&key).and_then(|q| {
                if matches!(q.front().map(|e| &e.data), Some(Payload::Control(_))) {
                    q.pop_front()
                } else {
                    None
                }
            });
            if let Some(env) = popped {
                if let Payload::Control(v) = env.data {
                    i.observe_peer(src, None);
                    return Ok(v);
                }
            }
        }
        loop {
            let me = i.global_rank;
            let env = i
                .endpoint
                .recv(i.clock.now)
                .map_err(|_| Error::Disconnected { peer: me })?;
            match env.data {
                Payload::Death { at } | Payload::Rejoin { at } if env.severed => {
                    i.unreachable_peers.entry(env.src).or_insert(at);
                }
                Payload::Abort { .. } if env.severed => {
                    let at = env.depart;
                    i.unreachable_peers.entry(env.src).or_insert(at);
                }
                Payload::Parked { at } => {
                    i.unreachable_peers.entry(env.src).or_insert(at);
                }
                Payload::Death { at } => {
                    i.dead_peers.entry(env.src).or_insert(at);
                }
                Payload::Abort { culprit, epoch } => {
                    let e = i.aborted_peers.entry(env.src).or_insert((culprit, epoch));
                    if epoch >= e.1 {
                        *e = (culprit, epoch);
                    }
                }
                Payload::Rejoin { at } => {
                    i.rejoin_notices.insert(env.src, at);
                }
                Payload::Control(v) if env.ctx == self.ctx && env.tag == tag => {
                    i.observe_peer(env.src, None);
                    return Ok(v);
                }
                _ => {
                    i.pending
                        .entry((env.ctx, env.src, env.tag))
                        .or_default()
                        .push_back(env);
                }
            }
        }
    }

    /// Fast-forwards the recovery epoch to at least `epoch` (pruning
    /// stale abort notices), used by a rejoining rank to match the
    /// survivors it is re-entering with.
    pub fn set_fault_epoch(&self, epoch: u64) {
        let mut i = self.inner.borrow_mut();
        i.fault_epoch = i.fault_epoch.max(epoch);
        let e = i.fault_epoch;
        i.aborted_peers.retain(|_, &mut (_, pe)| pe >= e);
    }

    /// This rank's [`Communicator::fault_sync`] round counter (welcome
    /// messages carry it so a rejoiner can align).
    pub fn fault_sync_seq(&self) -> u64 {
        self.inner.borrow().fault_sync_seq
    }

    /// Fast-forwards the [`Communicator::fault_sync`] round counter to
    /// at least `seq` (rejoining rank, from the welcome).
    pub fn align_fault_sync_seq(&self, seq: u64) {
        let mut i = self.inner.borrow_mut();
        i.fault_sync_seq = i.fault_sync_seq.max(seq);
    }

    /// Rejoin announcements drained so far: global rank → rejoin time.
    pub fn rejoin_announcements(&self) -> Vec<(usize, f64)> {
        self.inner
            .borrow()
            .rejoin_notices
            .iter()
            .map(|(&r, &t)| (r, t))
            .collect()
    }

    // --- adaptive failure detection ----------------------------------

    /// The per-peer receive deadline learned by the adaptive detector
    /// (mean + k·σ of observed receive waits, clamped to the model
    /// floor), or `None` until enough samples exist.
    pub fn adaptive_deadline(&self, src: Rank) -> Option<f64> {
        let src_global = self.global_rank_of(src).ok()?;
        self.inner.borrow().health.deadline(src_global)
    }

    /// The current φ-accrual suspicion level of a peer, or `None`
    /// while the detector lacks samples.
    pub fn peer_phi(&self, src: Rank) -> Option<f64> {
        let src_global = self.global_rank_of(src).ok()?;
        let i = self.inner.borrow();
        i.health.phi(src_global, i.clock.now)
    }

    /// Whether the detector currently ranks the peer *suspect but not
    /// presumed dead* — the regime where a speculative re-request is
    /// worthwhile (the peer is late beyond its learned rhythm, yet not
    /// so silent that it is written off). The first flagging of a peer
    /// since it was last heard is counted in
    /// [`RankStats::suspects_flagged`].
    pub fn peer_suspect_not_dead(&self, src: Rank) -> bool {
        let Ok(src_global) = self.global_rank_of(src) else {
            return false;
        };
        let mut i = self.inner.borrow_mut();
        if i.dead_peers.contains_key(&src_global) {
            return false;
        }
        let now = i.clock.now;
        let Some(phi) = i.health.phi(src_global, now) else {
            return false;
        };
        let cfg = *i.health.config();
        if phi >= cfg.phi_suspect && phi < cfg.phi_dead {
            if i.health.mark_suspect(src_global) {
                i.stats.suspects_flagged += 1;
            }
            true
        } else {
            false
        }
    }

    /// Counts a speculative re-request issued by a fault-aware caller.
    pub fn record_speculative_retry(&self) {
        self.inner.borrow_mut().stats.speculative_retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn send_recv_roundtrip_and_timing() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.5,
            flops: f64::INFINITY,
        };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
                0.0
            } else {
                let v = comm.recv(0, 0).unwrap();
                assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);
                comm.now()
            }
        });
        // recv cost: alpha + 4*beta = 1 + 2 = 3.
        assert!((out[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recv_waits_for_late_sender() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: 1.0,
        };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(10.0);
                comm.send(1, 0, &[42.0]).unwrap();
                comm.now()
            } else {
                let _ = comm.recv(0, 0).unwrap();
                comm.now()
            }
        });
        assert!((out[0] - 10.0).abs() < 1e-12);
        // Receiver: waits to t=10, then alpha=1.
        assert!((out[1] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let model = NetModel::free();
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[5.0]).unwrap();
                comm.send(1, 6, &[6.0]).unwrap();
                vec![]
            } else {
                // Receive in the opposite order.
                let six = comm.recv(0, 6).unwrap();
                let five = comm.recv(0, 5).unwrap();
                vec![six[0], five[0]]
            }
        });
        assert_eq!(out[1], vec![6.0, 5.0]);
    }

    #[test]
    fn overlapped_recv_is_free_when_compute_covers_it() {
        let model = NetModel {
            alpha: 1.0,
            beta: 1.0,
            flops: f64::INFINITY,
        };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0, 1.0]).unwrap(); // departs at t=0, arrives t=3
                0.0
            } else {
                let h = comm.irecv(0, 0).unwrap();
                comm.advance_compute(10.0); // covers the transfer
                let _ = comm.wait(h).unwrap();
                comm.now()
            }
        });
        assert!((out[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_recv_clamps_when_compute_is_short() {
        let model = NetModel {
            alpha: 1.0,
            beta: 1.0,
            flops: f64::INFINITY,
        };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0, 1.0]).unwrap(); // arrives t=3
                0.0
            } else {
                let h = comm.irecv(0, 0).unwrap();
                comm.advance_compute(1.0);
                let _ = comm.wait(h).unwrap();
                comm.now()
            }
        });
        assert!((out[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_forms_expected_groups() {
        let model = NetModel::free();
        let out = World::run(6, model, |comm| {
            // Rows of a 2x3 grid: color = rank / 3.
            let sub = comm
                .split((comm.rank() / 3) as u64, comm.rank() as u64)
                .unwrap();
            (sub.rank(), sub.size())
        });
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3), (0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn grid_row_and_col_sizes() {
        let model = NetModel::free();
        let out = World::run(6, model, |comm| {
            let (row, col) = comm.grid(2, 3).unwrap();
            (row.size(), col.size(), row.rank(), col.rank())
        });
        for (g, &(rs, cs, rr, cr)) in out.iter().enumerate() {
            assert_eq!(rs, 3, "row comm size");
            assert_eq!(cs, 2, "col comm size");
            assert_eq!(rr, g % 3, "row rank = column index");
            assert_eq!(cr, g / 3, "col rank = row index");
        }
    }

    #[test]
    fn sub_communicators_do_not_cross_talk() {
        let model = NetModel::free();
        let out = World::run(4, model, |comm| {
            let (row, _col) = comm.grid(2, 2).unwrap();
            // Both rows exchange with the same (sub-rank, tag) pair; the
            // context id keeps traffic separate.
            let me = comm.rank() as f64;
            let peer = 1 - row.rank();
            let got = row.sendrecv(peer, &[me], peer, 9).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1.0, 0.0, 3.0, 2.0]);
    }

    #[test]
    fn barrier_equalizes_clocks() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let out = World::run(4, model, |comm| {
            comm.advance_compute(comm.rank() as f64);
            comm.barrier().unwrap();
            comm.now()
        });
        for &t in &out {
            assert!(
                (t - out[0]).abs() < 1e-12,
                "clocks equal after barrier: {out:?}"
            );
        }
        // At least the straggler's compute (3.0) plus 2 rounds of alpha.
        assert!(out[0] >= 3.0);
    }

    #[test]
    fn rank_out_of_range_is_reported() {
        let model = NetModel::free();
        let out = World::run(2, model, |comm| comm.send(5, 0, &[1.0]).unwrap_err());
        assert_eq!(out[0], Error::RankOutOfRange { rank: 5, size: 2 });
    }

    #[test]
    fn dropped_message_times_out_instead_of_hanging() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = crate::FaultPlan::new(1).drop_nth(0, 1, 0);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0]).unwrap();
                Ok(vec![])
            } else {
                comm.recv_timeout(0, 7, 5.0)
            }
        });
        assert_eq!(
            out[1],
            Err(Error::Timeout {
                rank: 0,
                tag: 7,
                waited: 5.0
            }),
            "drop surfaces as a timeout"
        );
        assert_eq!(stats.ranks[0].msgs_dropped, 1);
        assert_eq!(stats.ranks[0].words_dropped, 2);
        assert_eq!(stats.ranks[1].timeouts, 1);
        // The full wait is charged to the virtual clock as comm time.
        assert!((stats.clocks[1].now - 5.0).abs() < 1e-12);
        assert!((stats.clocks[1].comm - 5.0).abs() < 1e-12);
    }

    #[test]
    fn plain_recv_of_dropped_message_reports_unbounded_wait() {
        let model = NetModel::free();
        let plan = crate::FaultPlan::new(1).drop_nth(0, 1, 0);
        let (out, _) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0]).unwrap();
                Ok(vec![])
            } else {
                comm.recv(0, 7)
            }
        });
        match &out[1] {
            Err(Error::Timeout {
                rank: 0,
                tag: 7,
                waited,
            }) => {
                assert!(waited.is_infinite())
            }
            other => panic!("expected unbounded timeout, got {other:?}"),
        }
    }

    #[test]
    fn late_message_is_recovered_by_retry() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        // Straggle the first message by 10s: a 6s timeout misses it,
        // the retry (another 6s window) picks it up.
        let plan = crate::FaultPlan::new(1).straggle(0, 1, 10.0, 0.0, crate::Span::Once(0));
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[9.0]).unwrap();
                (vec![], 0.0)
            } else {
                // Window 1 ends at t=6 < availability (t=10): timeout.
                // Backoff to 6.5, window 2 ends at 12.5: the message
                // (available at 10, transfer 1) completes at t=11.
                let v = comm.recv_retry(0, 3, 6.0, 3, 0.5).unwrap();
                (v, comm.now())
            }
        });
        assert_eq!(out[1].0, vec![9.0]);
        assert!((out[1].1 - 11.0).abs() < 1e-12, "clock: {}", out[1].1);
        assert_eq!(stats.ranks[1].timeouts, 1, "first window expired");
        assert_eq!(stats.ranks[1].retries, 1, "second window succeeded");
        assert!((stats.ranks[1].straggler_wait - 10.0).abs() < 1e-12);
    }

    #[test]
    fn corrupted_payload_is_detected_not_delivered() {
        let model = NetModel::free();
        let plan = crate::FaultPlan::new(5).corrupt_nth(0, 1, 0);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, &[1.0, 2.0, 3.0]).unwrap();
                comm.send(1, 2, &[4.0, 5.0]).unwrap();
                None
            } else {
                let first = comm.recv(0, 2);
                assert_eq!(
                    first,
                    Err(Error::Corrupted {
                        rank: 0,
                        tag: 2,
                        ctx: None
                    })
                );
                Some(comm.recv(0, 2).unwrap())
            }
        });
        assert_eq!(
            out[1],
            Some(vec![4.0, 5.0]),
            "later clean message still delivered"
        );
        assert_eq!(stats.ranks[1].corrupt_recovered, 1);
        assert_eq!(stats.ranks[1].corrupt_corrected, 0);
    }

    #[test]
    fn scripted_bitflips_are_spend_once_and_counted() {
        let model = NetModel::free();
        let plan = crate::FaultPlan::new(7)
            .bitflip_compute(1, 2, 0, 51)
            .bitflip_memory(0, 1, 5, 44);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                let m = comm.take_memory_flips(1);
                assert_eq!(m.len(), 1);
                assert_eq!(
                    m[0],
                    crate::BitFlip {
                        entry: 0,
                        index: 5,
                        bit: 44
                    }
                );
                // Replaying the same iteration finds the flip spent.
                assert!(comm.take_memory_flips(1).is_empty());
                assert!(comm.take_compute_flips(2, 0).is_empty(), "wrong rank");
                0
            } else {
                assert!(comm.take_compute_flips(2, 1).is_empty(), "wrong op");
                let c = comm.take_compute_flips(2, 0);
                assert_eq!(c.len(), 1);
                assert_eq!(c[0].bit, 51);
                assert!(comm.take_compute_flips(2, 0).is_empty(), "spent");
                c[0].index
            }
        });
        // The element draw is deterministic across runs (same plan).
        let again = World::run_with_faults(
            2,
            model,
            crate::FaultPlan::new(7)
                .bitflip_compute(1, 2, 0, 51)
                .bitflip_memory(0, 1, 5, 44),
            |comm| {
                if comm.rank() == 1 {
                    comm.take_compute_flips(2, 0)[0].index
                } else {
                    comm.take_memory_flips(1);
                    0
                }
            },
        )
        .0;
        assert_eq!(out[1], again[1]);
        assert_eq!(stats.ranks[0].bitflips_memory, 1);
        assert_eq!(stats.ranks[0].bitflips_compute, 0);
        assert_eq!(stats.ranks[1].bitflips_compute, 1);
        assert_eq!(stats.total_bitflips_compute(), 1);
        assert_eq!(stats.total_bitflips_memory(), 1);
    }

    #[test]
    fn fault_ctx_is_attached_to_corruption_errors() {
        let model = NetModel::free();
        let plan = crate::FaultPlan::new(5).corrupt_nth(0, 1, 0);
        let (out, _) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, &[1.0, 2.0]).unwrap();
                None
            } else {
                comm.set_fault_ctx(Some(crate::FaultCtx { iter: 4, op: 1 }));
                assert_eq!(comm.fault_ctx(), Some(crate::FaultCtx { iter: 4, op: 1 }));
                let e = comm.recv(0, 2).unwrap_err();
                comm.set_fault_ctx(None);
                Some(e)
            }
        });
        assert_eq!(
            out[1],
            Some(Error::Corrupted {
                rank: 0,
                tag: 2,
                ctx: Some(crate::FaultCtx { iter: 4, op: 1 })
            })
        );
    }

    #[test]
    fn killed_rank_fails_and_peers_detect_it() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = crate::FaultPlan::new(0).kill(0, 5.0);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(6.0); // sail past the kill time
                let e = comm.send(1, 1, &[1.0]).unwrap_err();
                assert_eq!(e, Error::RankFailed { rank: 0 });
                // Every subsequent operation keeps failing.
                assert_eq!(comm.recv(1, 1).unwrap_err(), Error::RankFailed { rank: 0 });
                "dead"
            } else {
                let e = comm.recv(0, 1).unwrap_err();
                assert_eq!(e, Error::RankFailed { rank: 0 });
                // Detection cannot precede the death: clock >= 5.
                assert!(comm.now() >= 5.0);
                "survivor"
            }
        });
        assert_eq!(out, vec!["dead", "survivor"]);
        assert_eq!(stats.ranks[1].failures_detected, 1);
        assert_eq!(stats.ranks[0].failures_detected, 0);
    }

    #[test]
    fn fault_sync_agrees_on_survivors() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = crate::FaultPlan::new(0).kill(2, 1.0);
        let (out, _) = World::run_with_faults(4, model, plan, |comm| {
            comm.advance_compute(2.0);
            if comm.rank() == 2 {
                // Dies at its first comm op (the fault_sync broadcast).
                assert!(comm.fault_sync(vec![2]).is_err());
                return vec![];
            }
            let round = comm.fault_sync(vec![comm.rank() as u8]).unwrap();
            round
                .iter()
                .map(|s| s.as_ref().map_or(255, |v| v[0]))
                .collect::<Vec<u8>>()
        });
        for r in [0usize, 1, 3] {
            assert_eq!(
                out[r],
                vec![0, 1, 255, 3],
                "rank {r} sees the same survivor picture"
            );
        }
    }

    #[test]
    fn shrink_exclude_is_communication_free_and_consistent() {
        let model = NetModel::free();
        let plan = crate::FaultPlan::new(0); // inactive, just exercising the API
        let (out, stats) = World::run_with_faults(4, model, plan, |comm| {
            if comm.rank() == 2 {
                return (0, 0, 0.0);
            }
            let sub = comm.shrink_exclude(&[2], 1).unwrap();
            // The shrunken communicator is fully usable: ring exchange.
            let peer_up = (sub.rank() + 1) % sub.size();
            let peer_dn = (sub.rank() + sub.size() - 1) % sub.size();
            let got = sub
                .sendrecv(peer_up, &[sub.rank() as f64], peer_dn, 4)
                .unwrap();
            (sub.rank(), sub.size(), got[0])
        });
        assert_eq!(out[0], (0, 3, 2.0));
        assert_eq!(out[1], (1, 3, 0.0));
        assert_eq!(out[3], (2, 3, 1.0));
        assert_eq!(
            stats.ranks[0].ctrl_msgs_sent, 0,
            "no control traffic for shrink"
        );
    }

    #[test]
    fn abort_unblocks_peer_and_stale_aborts_are_ignored() {
        let model = NetModel::free();
        let plan = crate::FaultPlan::new(0).with_default_timeout(1e6);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                // Abort the current phase instead of sending data.
                comm.send_abort(0).unwrap();
                // After recovery both ranks advance their epoch; the old
                // abort must not poison the new phase.
                comm.advance_fault_epoch();
                comm.send(1, 8, &[7.0]).unwrap();
                vec![]
            } else {
                let e = comm.recv(0, 8).unwrap_err();
                assert_eq!(e, Error::Aborted { culprit: 0 });
                comm.advance_fault_epoch();
                comm.recv(0, 8).unwrap()
            }
        });
        assert_eq!(out[1], vec![7.0]);
        assert_eq!(stats.ranks[0].aborts_sent, 1);
    }

    #[test]
    fn stats_count_words() {
        let model = NetModel::free();
        let (_, stats) = World::run_with_stats(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 17]).unwrap();
            } else {
                let _ = comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(stats.total_words(), 17);
        assert_eq!(stats.total_msgs(), 1);
    }

    #[test]
    fn exponential_backoff_doubles_pauses() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        // The only message is dropped: all three windows expire.
        let plan = crate::FaultPlan::new(1).drop_nth(0, 1, 0);
        let (_, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[1.0]).unwrap();
            } else {
                let policy = crate::RetryPolicy::exponential(1.0, 3, 1.0, 2.0, 0.0);
                let e = comm.recv_retry_policy(0, 3, &policy).unwrap_err();
                assert!(matches!(e, Error::Timeout { .. }));
            }
        });
        // Window(1) + pause(1) + window(1) + pause(2) + window(1) = 6.
        assert!((stats.clocks[1].now - 6.0).abs() < 1e-12);
        assert_eq!(stats.ranks[1].retries, 2);
        assert_eq!(stats.ranks[1].timeouts, 3);
    }

    #[test]
    fn backoff_jitter_is_bounded_and_replayable() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let run = || {
            let plan = crate::FaultPlan::new(77).drop_nth(0, 1, 0);
            let (_, stats) = World::run_with_faults(2, model, plan, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 3, &[1.0]).unwrap();
                } else {
                    let policy = crate::RetryPolicy::exponential(1.0, 3, 1.0, 2.0, 0.5);
                    let _ = comm.recv_retry_policy(0, 3, &policy);
                }
            });
            stats.clocks[1].now
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "jittered schedule replays bit-identically");
        // Jitter stretches pauses by at most 50%: total in (6, 7.5].
        assert!(a > 6.0 && a <= 7.5, "jittered makespan: {a}");
    }

    #[test]
    fn killed_rank_revives_rejoins_and_talks_again() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = crate::FaultPlan::new(0).kill(0, 5.0).rejoin(0, 9.0);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(6.0);
                let e = comm.send(1, 1, &[1.0]).unwrap_err();
                assert_eq!(e, Error::RankFailed { rank: 0 });
                assert_eq!(comm.my_rejoin_time(), Some(9.0));
                assert_eq!(comm.revive(), Some(9.0));
                assert!((comm.now() - 9.0).abs() < 1e-12, "clock jumps to rejoin");
                // Back to life: sends work again.
                comm.send(1, 5, &[42.0]).unwrap();
                vec![]
            } else {
                let e = comm.recv(0, 5).unwrap_err();
                assert_eq!(e, Error::RankFailed { rank: 0 });
                // Death surfaced at t=5; the scripted rejoin (t=9) is
                // still in the future of this rank's clock.
                assert!(!comm.rejoin_ready(0));
                comm.advance_compute(5.0); // now 10 ≥ 9
                assert!(comm.rejoin_ready(0));
                comm.readmit(&[0]);
                comm.recv(0, 5).unwrap()
            }
        });
        assert_eq!(out[1], vec![42.0]);
        assert_eq!(stats.ranks[0].rejoins, 1);
        assert_eq!(stats.ranks[1].failures_detected, 1);
    }

    #[test]
    fn revive_spends_the_kill_but_not_a_later_one() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = crate::FaultPlan::new(0)
            .kill(0, 2.0)
            .rejoin(0, 4.0)
            .kill(0, 8.0);
        let (out, _) = World::run_with_faults(1, model, plan, |comm| {
            comm.advance_compute(3.0);
            assert!(comm.send(0, 0, &[]).is_err(), "first kill fires");
            comm.revive().unwrap();
            // Alive again: the spent kill does not re-fire...
            comm.send(0, 0, &[1.0]).unwrap();
            let _ = comm.recv(0, 0).unwrap();
            // ...but the second kill still does.
            comm.advance_compute(10.0);
            comm.send(0, 0, &[]).unwrap_err()
        });
        assert_eq!(out[0], Error::RankFailed { rank: 0 });
    }

    #[test]
    fn await_control_any_takes_first_welcome_and_buffers_rest() {
        let model = NetModel::free();
        const WELCOME: Tag = RESERVED_TAG_BASE + 9000;
        let out = World::run(3, model, |comm| {
            if comm.rank() == 2 {
                let w = comm.await_control_any(WELCOME).unwrap();
                // Data sent before the welcome is still receivable.
                let d = comm.recv(0, 4).unwrap();
                (w, d)
            } else {
                if comm.rank() == 0 {
                    comm.send(2, 4, &[7.0]).unwrap();
                }
                // Both survivors send byte-identical welcomes.
                comm.send_control(2, WELCOME, vec![9, 9, 9]).unwrap();
                (vec![], vec![])
            }
        });
        assert_eq!(out[2].0, vec![9, 9, 9]);
        assert_eq!(out[2].1, vec![7.0]);
    }

    #[test]
    fn detector_learns_deadlines_and_flags_suspects() {
        let model = NetModel {
            alpha: 0.1,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let (out, stats) = World::run_with_stats(2, model, |comm| {
            if comm.rank() == 0 {
                for _ in 0..12 {
                    comm.advance_compute(1.0);
                    comm.send(1, 2, &[1.0]).unwrap();
                }
                (None, None)
            } else {
                for _ in 0..12 {
                    let _ = comm.recv(0, 2).unwrap();
                }
                // Learned deadline tracks the ~1 s observed waits (the
                // 4·α floor is 0.4, well below).
                let dl = comm.adaptive_deadline(0);
                // Right after hearing from the peer, φ is low.
                let quiet = comm.peer_phi(0).unwrap();
                assert!(quiet < 1.0, "fresh peer is unsuspicious: {quiet}");
                assert!(!comm.peer_suspect_not_dead(0));
                // Moderate silence: suspect but not presumed dead.
                comm.advance_compute(1.35);
                let suspect = comm.peer_suspect_not_dead(0);
                let phi_mid = comm.peer_phi(0).unwrap();
                // Long silence: written off, past speculation.
                comm.advance_compute(8.0);
                let phi_late = comm.peer_phi(0).unwrap();
                assert!(phi_late > phi_mid && phi_mid > quiet);
                assert!(!comm.peer_suspect_not_dead(0), "φ past dead: {phi_late}");
                (dl, Some((suspect, phi_mid)))
            }
        });
        let dl = out[1].0.unwrap();
        assert!((0.5..2.5).contains(&dl), "learned deadline: {dl}");
        let (suspect, phi_mid) = out[1].1.unwrap();
        assert!(suspect, "moderate silence flags suspect (φ = {phi_mid})");
        assert_eq!(stats.ranks[1].suspects_flagged, 1);
    }
}
