//! Communicators: the MPI-like handle each rank program uses.
//!
//! A [`Communicator`] names a group of global ranks and gives the local
//! rank send/recv/collective-building primitives within that group.
//! Sub-communicators created with [`Communicator::split`] or
//! [`Communicator::grid`] share the owning thread's virtual clock,
//! mailbox, and traffic counters, exactly like MPI communicators share a
//! process.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use crate::clock::Clock;
use crate::error::{Error, Result};
use crate::netmodel::NetModel;
use crate::router::{Endpoint, Envelope, Payload};
use crate::stats::RankStats;
use crate::topology::Topology;
use crate::{Rank, Tag};

/// Tags at or above this value are reserved for internal use (control
/// plane and library collectives). Application code should stay below.
pub const RESERVED_TAG_BASE: Tag = 1 << 48;

const SPLIT_TAG: Tag = RESERVED_TAG_BASE + 1;
const SYNC_TAG: Tag = RESERVED_TAG_BASE + 2;
const BARRIER_TAG: Tag = RESERVED_TAG_BASE + 3;

/// Per-thread shared state: transport endpoint, pending-message buffer,
/// virtual clock, and counters. One `Inner` exists per OS thread (global
/// rank); all communicators on that thread share it.
pub(crate) struct Inner {
    pub global_rank: usize,
    pub world_size: usize,
    pub endpoint: Endpoint,
    /// Messages received from the channel but not yet matched, keyed by
    /// `(ctx, src_global, tag)`, FIFO per key.
    pub pending: HashMap<(u64, usize, Tag), VecDeque<Envelope>>,
    pub clock: Clock,
    pub model: NetModel,
    pub topo: Topology,
    pub stats: RankStats,
    /// Monotonic counter so repeated `split` calls derive distinct
    /// deterministic context ids (requires SPMD call order, like MPI).
    pub split_seq: u64,
}

impl Inner {
    /// Blocks until a message matching `(ctx, src, tag)` is available
    /// and returns it, buffering any other messages that arrive first.
    fn match_recv(&mut self, ctx: u64, src_global: usize, tag: Tag) -> Result<Envelope> {
        let key = (ctx, src_global, tag);
        if let Some(queue) = self.pending.get_mut(&key) {
            if let Some(env) = queue.pop_front() {
                return Ok(env);
            }
        }
        loop {
            let env = self
                .endpoint
                .rx
                .recv()
                .map_err(|_| Error::Disconnected { peer: src_global })?;
            if env.ctx == ctx && env.src == src_global && env.tag == tag {
                return Ok(env);
            }
            self.pending.entry((env.ctx, env.src, env.tag)).or_default().push_back(env);
        }
    }

    fn post(&mut self, dst_global: usize, env: Envelope) -> Result<()> {
        match &env.data {
            Payload::Words(v) => {
                self.stats.msgs_sent += 1;
                self.stats.words_sent += v.len() as u64;
            }
            Payload::Control(_) => self.stats.ctrl_msgs_sent += 1,
        }
        self.endpoint.txs[dst_global]
            .send(env)
            .map_err(|_| Error::Disconnected { peer: dst_global })
    }
}

/// A handle to a posted non-blocking receive. Obtain the data with
/// [`Communicator::wait`].
#[derive(Debug)]
#[must_use = "a RecvHandle does nothing until waited on"]
pub struct RecvHandle {
    ctx: u64,
    src_global: usize,
    tag: Tag,
}

/// An MPI-like communicator over a group of simulated ranks.
///
/// Cloning is cheap (the member table is shared); clones alias the same
/// thread-local clock and mailbox.
#[derive(Clone)]
pub struct Communicator {
    pub(crate) inner: Rc<RefCell<Inner>>,
    /// Context id separating this communicator's traffic.
    ctx: u64,
    /// Global ranks of the members, in rank order.
    members: Arc<Vec<usize>>,
    /// This thread's rank within `members`.
    rank: Rank,
}

impl Communicator {
    pub(crate) fn world(inner: Rc<RefCell<Inner>>) -> Self {
        let (rank, size) = {
            let i = inner.borrow();
            (i.global_rank, i.world_size)
        };
        Communicator { inner, ctx: 0, members: Arc::new((0..size).collect()), rank }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The global (world) rank backing a communicator-local rank.
    pub fn global_rank_of(&self, rank: Rank) -> Result<usize> {
        self.members
            .get(rank)
            .copied()
            .ok_or(Error::RankOutOfRange { rank, size: self.members.len() })
    }

    /// The network model shared by all ranks.
    pub fn model(&self) -> NetModel {
        self.inner.borrow().model
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> f64 {
        self.inner.borrow().clock.now
    }

    /// Snapshot of this rank's virtual clock.
    pub fn clock(&self) -> Clock {
        self.inner.borrow().clock
    }

    /// Charges local compute time for `flops` floating-point operations.
    pub fn advance_flops(&self, flops: f64) {
        let mut i = self.inner.borrow_mut();
        let m = i.model;
        i.clock.advance_flops(flops, &m);
    }

    /// Charges an explicit amount of local compute time.
    pub fn advance_compute(&self, seconds: f64) {
        self.inner.borrow_mut().clock.advance_compute(seconds);
    }

    /// Sends `data` to `dst` with `tag`. Eager: never blocks, charges no
    /// local virtual time (cost is paid by the receiver).
    pub fn send(&self, dst: Rank, tag: Tag, data: &[f64]) -> Result<()> {
        self.send_vec(dst, tag, data.to_vec())
    }

    /// Like [`Communicator::send`] but takes ownership, avoiding a copy.
    pub fn send_vec(&self, dst: Rank, tag: Tag, data: Vec<f64>) -> Result<()> {
        let dst_global = self.global_rank_of(dst)?;
        let mut i = self.inner.borrow_mut();
        let env = Envelope {
            ctx: self.ctx,
            src: i.global_rank,
            tag,
            depart: i.clock.now,
            data: Payload::Words(data),
        };
        i.post(dst_global, env)
    }

    /// Blocking receive of a message from `src` with `tag`. Advances the
    /// virtual clock to `max(now, depart) + α + β·words`.
    pub fn recv(&self, src: Rank, tag: Tag) -> Result<Vec<f64>> {
        let src_global = self.global_rank_of(src)?;
        let mut i = self.inner.borrow_mut();
        let env = i.match_recv(self.ctx, src_global, tag)?;
        let words = env.data.words();
        let me = i.global_rank;
        let (fa, fb) = i.topo.factors(env.src, me);
        let transfer = fa * i.model.alpha + fb * i.model.beta * words as f64;
        i.clock.complete_recv(env.depart, transfer);
        match env.data {
            Payload::Words(v) => Ok(v),
            Payload::Control(_) => unreachable!("control payload on data tag"),
        }
    }

    /// Blocking receive into a caller-provided buffer; errors if the
    /// payload length differs from `buf.len()`.
    pub fn recv_into(&self, src: Rank, tag: Tag, buf: &mut [f64]) -> Result<()> {
        let v = self.recv(src, tag)?;
        if v.len() != buf.len() {
            return Err(Error::LengthMismatch { expected: buf.len(), got: v.len() });
        }
        buf.copy_from_slice(&v);
        Ok(())
    }

    /// Posts a non-blocking receive. The matching message is considered
    /// to arrive at `depart + α + β·words` *independently of what this
    /// rank does meanwhile* — i.e. a perfectly overlapped transfer, the
    /// assumption the paper makes for halo exchanges (Fig. 3) and for
    /// Fig. 8's overlap study. Complete with [`Communicator::wait`].
    pub fn irecv(&self, src: Rank, tag: Tag) -> Result<RecvHandle> {
        let src_global = self.global_rank_of(src)?;
        Ok(RecvHandle { ctx: self.ctx, src_global, tag })
    }

    /// Completes a non-blocking receive, clamping the clock forward to
    /// the arrival time if the data is not yet there.
    pub fn wait(&self, handle: RecvHandle) -> Result<Vec<f64>> {
        let mut i = self.inner.borrow_mut();
        let env = i.match_recv(handle.ctx, handle.src_global, handle.tag)?;
        let words = env.data.words();
        let me = i.global_rank;
        let (fa, fb) = i.topo.factors(env.src, me);
        let arrival = env.depart + fa * i.model.alpha + fb * i.model.beta * words as f64;
        i.clock.complete_wait(arrival);
        match env.data {
            Payload::Words(v) => Ok(v),
            Payload::Control(_) => unreachable!("control payload on data tag"),
        }
    }

    /// Simultaneous exchange with two (possibly equal) partners: sends
    /// to `dst`, then receives from `src`. The eager-send model makes
    /// this deadlock-free.
    pub fn sendrecv(&self, dst: Rank, send: &[f64], src: Rank, tag: Tag) -> Result<Vec<f64>> {
        self.send(dst, tag, send)?;
        self.recv(src, tag)
    }

    /// Zero-virtual-time control-plane send (communicator management).
    pub fn send_control(&self, dst: Rank, tag: Tag, data: Vec<u8>) -> Result<()> {
        let dst_global = self.global_rank_of(dst)?;
        let mut i = self.inner.borrow_mut();
        let env = Envelope {
            ctx: self.ctx,
            src: i.global_rank,
            tag,
            depart: 0.0,
            data: Payload::Control(data),
        };
        i.post(dst_global, env)
    }

    /// Zero-virtual-time control-plane receive.
    pub fn recv_control(&self, src: Rank, tag: Tag) -> Result<Vec<u8>> {
        let src_global = self.global_rank_of(src)?;
        let mut i = self.inner.borrow_mut();
        let env = i.match_recv(self.ctx, src_global, tag)?;
        match env.data {
            Payload::Control(v) => Ok(v),
            Payload::Words(_) => unreachable!("data payload on control tag"),
        }
    }

    /// Dissemination barrier. Charges virtual time (⌈log₂ P⌉ rounds of
    /// empty messages, α each) and leaves every member's clock at the
    /// same value.
    pub fn barrier(&self) -> Result<()> {
        let p = self.size();
        if p <= 1 {
            return Ok(());
        }
        let r = self.rank;
        let mut k = 1usize;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k) % p;
            self.send(dst, BARRIER_TAG, &[])?;
            let _ = self.recv(src, BARRIER_TAG)?;
            k <<= 1;
        }
        // Dissemination leaves clocks equal when they started equal; to
        // make the invariant unconditional, synchronize explicitly
        // (free: clocks only move forward to the max).
        self.sync_clocks()
    }

    /// Synchronizes virtual clocks across the communicator to their
    /// maximum without charging any message cost. Control-plane helper
    /// for delimiting timed experiment phases.
    pub fn sync_clocks(&self) -> Result<()> {
        let p = self.size();
        if p <= 1 {
            return Ok(());
        }
        let mine = self.now();
        // Everyone sends its clock to everyone else (control traffic).
        for dst in 0..p {
            if dst != self.rank {
                self.send_control(dst, SYNC_TAG, mine.to_le_bytes().to_vec())?;
            }
        }
        let mut max = mine;
        for src in 0..p {
            if src != self.rank {
                let bytes = self.recv_control(src, SYNC_TAG)?;
                let t = f64::from_le_bytes(bytes[..8].try_into().expect("8-byte clock"));
                max = max.max(t);
            }
        }
        self.inner.borrow_mut().clock.sync_to(max);
        Ok(())
    }

    /// Resets this rank's virtual clock to zero (e.g. after a warm-up
    /// phase). Call under a [`Communicator::barrier`] or
    /// [`Communicator::sync_clocks`] to keep ranks consistent.
    pub fn reset_clock(&self) {
        self.inner.borrow_mut().clock = Clock::new();
    }

    /// Splits the communicator into disjoint sub-communicators by
    /// `color`; members of each new communicator are ordered by
    /// `(key, old rank)`. All members must call `split` in the same
    /// order (SPMD), like `MPI_Comm_split`. Control-plane: free in
    /// virtual time.
    pub fn split(&self, color: u64, key: u64) -> Result<Communicator> {
        let p = self.size();
        let seq = {
            let mut i = self.inner.borrow_mut();
            i.split_seq += 1;
            i.split_seq
        };
        // Exchange (color, key) with every member.
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        for dst in 0..p {
            if dst != self.rank {
                self.send_control(dst, SPLIT_TAG + seq, payload.clone())?;
            }
        }
        let mut triples: Vec<(u64, u64, usize)> = vec![(color, key, self.rank)];
        for src in 0..p {
            if src != self.rank {
                let bytes = self.recv_control(src, SPLIT_TAG + seq)?;
                let c = u64::from_le_bytes(bytes[0..8].try_into().expect("color"));
                let k = u64::from_le_bytes(bytes[8..16].try_into().expect("key"));
                triples.push((c, k, src));
            }
        }
        let mut same: Vec<(u64, usize)> = triples
            .into_iter()
            .filter(|&(c, _, _)| c == color)
            .map(|(_, k, r)| (k, r))
            .collect();
        same.sort_unstable();
        let members: Vec<usize> =
            same.iter().map(|&(_, r)| self.members[r]).collect();
        let my_global = self.members[self.rank];
        let rank = members
            .iter()
            .position(|&g| g == my_global)
            .expect("splitting rank must belong to its own color group");
        // Derive a deterministic child context id (FNV-1a over parent
        // ctx, sequence number, and color).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.ctx, seq, color] {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        Ok(Communicator {
            inner: Rc::clone(&self.inner),
            ctx: h,
            members: Arc::new(members),
            rank,
        })
    }

    /// Views the communicator as a row-major `pr × pc` grid and returns
    /// `(row_comm, col_comm)` for this rank:
    ///
    /// * `row_comm` has size `pc` — in the paper's layout these are the
    ///   ranks holding the *same model shard* across batch shards, i.e.
    ///   the "Pc-sized groups" used for the ∆W all-reduce.
    /// * `col_comm` has size `pr` — the ranks holding the *same batch
    ///   shard* across model shards, i.e. the "Pr-sized groups" used for
    ///   the forward all-gather and the ∆X all-reduce.
    ///
    /// Requires `pr * pc == self.size()`.
    pub fn grid(&self, pr: usize, pc: usize) -> Result<(Communicator, Communicator)> {
        if pr * pc != self.size() {
            return Err(Error::CollectiveMismatch(format!(
                "grid {pr}x{pc} does not tile a communicator of size {}",
                self.size()
            )));
        }
        let i = self.rank / pc; // row index (model shard)
        let j = self.rank % pc; // column index (batch shard)
        let row = self.split(i as u64, j as u64)?;
        let col = self.split(j as u64, i as u64)?;
        Ok((row, col))
    }

    /// This rank's traffic counters so far.
    pub fn stats(&self) -> RankStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn send_recv_roundtrip_and_timing() {
        let model = NetModel { alpha: 1.0, beta: 0.5, flops: f64::INFINITY };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
                0.0
            } else {
                let v = comm.recv(0, 0).unwrap();
                assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);
                comm.now()
            }
        });
        // recv cost: alpha + 4*beta = 1 + 2 = 3.
        assert!((out[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recv_waits_for_late_sender() {
        let model = NetModel { alpha: 1.0, beta: 0.0, flops: 1.0 };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(10.0);
                comm.send(1, 0, &[42.0]).unwrap();
                comm.now()
            } else {
                let _ = comm.recv(0, 0).unwrap();
                comm.now()
            }
        });
        assert!((out[0] - 10.0).abs() < 1e-12);
        // Receiver: waits to t=10, then alpha=1.
        assert!((out[1] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let model = NetModel::free();
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[5.0]).unwrap();
                comm.send(1, 6, &[6.0]).unwrap();
                vec![]
            } else {
                // Receive in the opposite order.
                let six = comm.recv(0, 6).unwrap();
                let five = comm.recv(0, 5).unwrap();
                vec![six[0], five[0]]
            }
        });
        assert_eq!(out[1], vec![6.0, 5.0]);
    }

    #[test]
    fn overlapped_recv_is_free_when_compute_covers_it() {
        let model = NetModel { alpha: 1.0, beta: 1.0, flops: f64::INFINITY };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0, 1.0]).unwrap(); // departs at t=0, arrives t=3
                0.0
            } else {
                let h = comm.irecv(0, 0).unwrap();
                comm.advance_compute(10.0); // covers the transfer
                let _ = comm.wait(h).unwrap();
                comm.now()
            }
        });
        assert!((out[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_recv_clamps_when_compute_is_short() {
        let model = NetModel { alpha: 1.0, beta: 1.0, flops: f64::INFINITY };
        let out = World::run(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0, 1.0]).unwrap(); // arrives t=3
                0.0
            } else {
                let h = comm.irecv(0, 0).unwrap();
                comm.advance_compute(1.0);
                let _ = comm.wait(h).unwrap();
                comm.now()
            }
        });
        assert!((out[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_forms_expected_groups() {
        let model = NetModel::free();
        let out = World::run(6, model, |comm| {
            // Rows of a 2x3 grid: color = rank / 3.
            let sub = comm.split((comm.rank() / 3) as u64, comm.rank() as u64).unwrap();
            (sub.rank(), sub.size())
        });
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3), (0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn grid_row_and_col_sizes() {
        let model = NetModel::free();
        let out = World::run(6, model, |comm| {
            let (row, col) = comm.grid(2, 3).unwrap();
            (row.size(), col.size(), row.rank(), col.rank())
        });
        for (g, &(rs, cs, rr, cr)) in out.iter().enumerate() {
            assert_eq!(rs, 3, "row comm size");
            assert_eq!(cs, 2, "col comm size");
            assert_eq!(rr, g % 3, "row rank = column index");
            assert_eq!(cr, g / 3, "col rank = row index");
        }
    }

    #[test]
    fn sub_communicators_do_not_cross_talk() {
        let model = NetModel::free();
        let out = World::run(4, model, |comm| {
            let (row, _col) = comm.grid(2, 2).unwrap();
            // Both rows exchange with the same (sub-rank, tag) pair; the
            // context id keeps traffic separate.
            let me = comm.rank() as f64;
            let peer = 1 - row.rank();
            let got = row.sendrecv(peer, &[me], peer, 9).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1.0, 0.0, 3.0, 2.0]);
    }

    #[test]
    fn barrier_equalizes_clocks() {
        let model = NetModel { alpha: 1.0, beta: 0.0, flops: f64::INFINITY };
        let out = World::run(4, model, |comm| {
            comm.advance_compute(comm.rank() as f64);
            comm.barrier().unwrap();
            comm.now()
        });
        for &t in &out {
            assert!((t - out[0]).abs() < 1e-12, "clocks equal after barrier: {out:?}");
        }
        // At least the straggler's compute (3.0) plus 2 rounds of alpha.
        assert!(out[0] >= 3.0);
    }

    #[test]
    fn rank_out_of_range_is_reported() {
        let model = NetModel::free();
        let out = World::run(2, model, |comm| comm.send(5, 0, &[1.0]).unwrap_err());
        assert_eq!(out[0], Error::RankOutOfRange { rank: 5, size: 2 });
    }

    #[test]
    fn stats_count_words() {
        let model = NetModel::free();
        let (_, stats) = World::run_with_stats(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 17]).unwrap();
            } else {
                let _ = comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(stats.total_words(), 17);
        assert_eq!(stats.total_msgs(), 1);
    }
}
