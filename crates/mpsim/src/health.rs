//! Adaptive failure detection: EWMA latency statistics and a φ-accrual
//! suspicion level per peer.
//!
//! Fixed receive timeouts force one global constant to cover both a
//! 2 µs-α intra-rack link and a straggling wide-area hop. The accrual
//! detector of Hayashibara et al. instead outputs a *suspicion level*
//!
//! ```text
//! φ(t) = −log₁₀ P(no message by t | history)
//! ```
//!
//! where the history is summarized by exponentially-weighted moving
//! estimates of the mean and variance of (a) inter-arrival gaps (for φ)
//! and (b) observed receive waits (for per-peer deadlines). Callers pick
//! thresholds, not timeouts: `φ ≥ phi_suspect` marks a peer *suspect*
//! (worth a speculative re-request), `φ ≥ phi_dead` presumes it dead.
//!
//! **Determinism.** All samples are *virtual-clock* durations taken at
//! message-consumption points — never at the instant an envelope happens
//! to be drained from the transport channel, which depends on OS
//! scheduling. A replayed run therefore feeds the detector bit-identical
//! samples and reaches bit-identical verdicts.

use crate::netmodel::NetModel;

/// Tuning knobs of the adaptive detector, typically derived from the
/// network model via [`DetectorConfig::from_model`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA weight of the newest sample (0 < w ≤ 1).
    pub ewma_weight: f64,
    /// Samples required before the detector emits verdicts; until then
    /// callers fall back to their fixed deadline.
    pub min_samples: u32,
    /// φ at or above which a peer is *suspect* (speculation territory).
    pub phi_suspect: f64,
    /// φ at or above which a peer is *presumed dead*.
    pub phi_dead: f64,
    /// Learned deadlines are `mean + deadline_sigmas · σ`.
    pub deadline_sigmas: f64,
    /// Lower clamp on learned deadlines (a few α: no deadline can be
    /// shorter than the latency floor of the network itself).
    pub floor: f64,
    /// Upper clamp on learned deadlines.
    pub cap: f64,
}

impl DetectorConfig {
    /// Sane defaults derived from the α–β network model: the deadline
    /// floor is a small multiple of the message latency α.
    pub fn from_model(m: &NetModel) -> Self {
        let alpha = if m.alpha > 0.0 { m.alpha } else { 1e-9 };
        DetectorConfig {
            ewma_weight: 0.15,
            min_samples: 4,
            phi_suspect: 1.0,
            phi_dead: 8.0,
            deadline_sigmas: 4.0,
            floor: 4.0 * alpha,
            cap: f64::INFINITY,
        }
    }
}

/// Exponentially-weighted moving mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Ewma {
    weight: f64,
    mean: f64,
    var: f64,
    n: u32,
}

impl Ewma {
    /// An empty estimator with the given newest-sample weight.
    pub fn new(weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight <= 1.0,
            "EWMA weight must be in (0, 1]"
        );
        Ewma {
            weight,
            ..Ewma::default()
        }
    }

    /// Folds one sample in (West's EWMA variance update).
    pub fn observe(&mut self, x: f64) {
        self.n = self.n.saturating_add(1);
        if self.n == 1 {
            self.mean = x;
            self.var = 0.0;
            return;
        }
        let d = x - self.mean;
        self.mean += self.weight * d;
        self.var = (1.0 - self.weight) * (self.var + self.weight * d * d);
    }

    /// Current mean estimate (0 before any sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current standard-deviation estimate.
    pub fn std(&self) -> f64 {
        self.var.max(0.0).sqrt()
    }

    /// Number of samples folded in.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether no sample has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    /// Virtual time this peer was last heard from.
    last_heard: Option<f64>,
    /// Inter-arrival gaps between consecutive messages (drives φ).
    gaps: Ewma,
    /// Observed receive waits (drives the learned per-peer deadline).
    waits: Ewma,
    /// Whether the peer has already been flagged suspect (so the first
    /// flagging of each peer can be counted exactly once).
    suspected: bool,
}

impl PeerHealth {
    fn new(weight: f64) -> Self {
        PeerHealth {
            last_heard: None,
            gaps: Ewma::new(weight),
            waits: Ewma::new(weight),
            suspected: false,
        }
    }
}

/// Per-peer health state for one rank: feeds on consumption-point
/// samples, answers φ and learned-deadline queries.
///
/// Storage is sparse: state materializes only for peers actually heard
/// from (or explicitly flagged). A rank talks to O(log P) or O(√P)
/// peers under the collectives here, so the dense per-rank `Vec` this
/// replaces — P entries × P ranks = O(P²) aggregate, ~378 GB at
/// P = 65536 — becomes O(peers actually observed). An absent entry is
/// observationally identical to a fresh one: every read path treats
/// missing in-range peers as `PeerHealth::new`.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: DetectorConfig,
    /// World size: peers at or above this index are ignored, matching
    /// the bounds-checking of the dense representation.
    size: usize,
    peers: std::collections::BTreeMap<usize, PeerHealth>,
}

impl HealthMonitor {
    /// A monitor over `peers` global ranks.
    pub fn new(cfg: DetectorConfig, peers: usize) -> Self {
        HealthMonitor {
            cfg,
            size: peers,
            peers: std::collections::BTreeMap::new(),
        }
    }

    /// The detector configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// In-range lookup for reads: a copy of the peer's state, fresh if
    /// never touched (`PeerHealth` is `Copy`); `None` out of range.
    fn peek(&self, peer: usize) -> Option<PeerHealth> {
        if peer >= self.size {
            return None;
        }
        Some(
            self.peers
                .get(&peer)
                .copied()
                .unwrap_or_else(|| PeerHealth::new(self.cfg.ewma_weight)),
        )
    }

    /// In-range lookup for writes: materializes the entry on demand.
    fn entry(&mut self, peer: usize) -> Option<&mut PeerHealth> {
        if peer >= self.size {
            return None;
        }
        let w = self.cfg.ewma_weight;
        Some(self.peers.entry(peer).or_insert_with(|| PeerHealth::new(w)))
    }

    /// Records that `peer` was heard from at virtual time `now`
    /// (message consumed); consecutive calls feed the gap statistics.
    pub fn heard(&mut self, peer: usize, now: f64) {
        let Some(p) = self.entry(peer) else {
            return;
        };
        if let Some(last) = p.last_heard {
            let gap = now - last;
            if gap >= 0.0 {
                p.gaps.observe(gap);
            }
        }
        p.last_heard = Some(now);
        p.suspected = false;
    }

    /// Records an observed receive wait (virtual seconds from posting
    /// the receive to data delivery) from `peer`.
    pub fn observed_wait(&mut self, peer: usize, secs: f64) {
        if peer < self.size && secs >= 0.0 {
            if let Some(p) = self.entry(peer) {
                p.waits.observe(secs);
            }
        }
    }

    /// The φ-accrual suspicion level of `peer` at virtual time `now`,
    /// or `None` until [`DetectorConfig::min_samples`] gaps have been
    /// observed (callers should fall back to fixed policies).
    pub fn phi(&self, peer: usize, now: f64) -> Option<f64> {
        let p = self.peek(peer)?;
        let last = p.last_heard?;
        if p.gaps.len() < self.cfg.min_samples {
            return None;
        }
        let elapsed = (now - last).max(0.0);
        let mean = p.gaps.mean();
        // σ floor: a metronomically regular peer must not produce a
        // zero-width distribution (any lateness would be φ = ∞).
        let std = p.gaps.std().max(0.1 * mean.abs()).max(1e-12);
        let z = (elapsed - mean) / std;
        let p_later = (0.5 * erfc(z / std::f64::consts::SQRT_2)).max(1e-300);
        Some(-p_later.log10())
    }

    /// The learned per-peer receive deadline — `mean + k·σ` of observed
    /// waits, clamped to `[floor, cap]` — or `None` until enough
    /// samples exist.
    pub fn deadline(&self, peer: usize) -> Option<f64> {
        let p = self.peek(peer)?;
        if p.waits.len() < self.cfg.min_samples {
            return None;
        }
        let spread = p.waits.std().max(0.1 * p.waits.mean().abs());
        let d = p.waits.mean() + self.cfg.deadline_sigmas * spread;
        Some(d.clamp(self.cfg.floor, self.cfg.cap).max(1e-12))
    }

    /// The elapsed-silence threshold (`mean + k·σ` of inter-arrival
    /// gaps) below which a slow peer is, by construction, never
    /// presumed dead: at `elapsed = gap_deadline`, `z = k` and with the
    /// default `k = 4` the accrual level is ≈ 4.5 — far under
    /// [`DetectorConfig::phi_dead`].
    pub fn gap_deadline(&self, peer: usize) -> Option<f64> {
        let p = self.peek(peer)?;
        if p.gaps.len() < self.cfg.min_samples {
            return None;
        }
        let spread = p.gaps.std().max(0.1 * p.gaps.mean().abs());
        Some(p.gaps.mean() + self.cfg.deadline_sigmas * spread)
    }

    /// Marks `peer` suspect; returns `true` on the first flagging since
    /// it was last heard from (so callers can count transitions).
    pub fn mark_suspect(&mut self, peer: usize) -> bool {
        match self.entry(peer) {
            Some(p) if !p.suspected => {
                p.suspected = true;
                true
            }
            _ => false,
        }
    }

    /// Number of gap samples observed for `peer`.
    pub fn gap_samples(&self, peer: usize) -> u32 {
        self.peek(peer).map_or(0, |p| p.gaps.len())
    }

    /// Forgets everything about `peer` (on re-admission after a rejoin:
    /// pre-death statistics do not describe the revived process).
    /// A removed entry is indistinguishable from a fresh one.
    pub fn reset(&mut self, peer: usize) {
        self.peers.remove(&peer);
    }
}

/// A receive-retry schedule: `attempts` windows of `timeout` virtual
/// seconds, separated by an exponentially growing, optionally jittered
/// backoff (`backoff · factor^(i−1) · (1 + jitter·u)` with `u` a
/// deterministic uniform draw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Per-attempt receive deadline (virtual seconds).
    pub timeout: f64,
    /// Total attempts (≥ 1).
    pub attempts: usize,
    /// Base backoff charged before the second attempt.
    pub backoff: f64,
    /// Multiplicative backoff growth per retry (1.0 = constant).
    pub factor: f64,
    /// Jitter fraction in `[0, 1]`: each pause is stretched by up to
    /// this fraction, by a deterministic per-(link, retry) draw.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The legacy constant-backoff schedule (what
    /// [`crate::Communicator::recv_retry`] always did).
    pub fn fixed(timeout: f64, attempts: usize, backoff: f64) -> Self {
        RetryPolicy {
            timeout,
            attempts,
            backoff,
            factor: 1.0,
            jitter: 0.0,
        }
    }

    /// Exponential backoff with jitter.
    pub fn exponential(
        timeout: f64,
        attempts: usize,
        backoff: f64,
        factor: f64,
        jitter: f64,
    ) -> Self {
        assert!(factor >= 1.0, "backoff factor must be >= 1");
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        RetryPolicy {
            timeout,
            attempts,
            backoff,
            factor,
            jitter,
        }
    }
}

/// Split-brain-safe quorum rule for partitioned membership.
///
/// A fragment `F` of the last-agreed membership `M` has quorum iff it
/// holds a strict majority of `M` — `2·|F ∩ M| > |M|` — with a
/// deterministic tie-break for an exact 50/50 split: the fragment
/// containing the lowest-numbered member of `M` wins. At most one
/// fragment can satisfy the rule, so at most one side of any partition
/// keeps updating weights (single writer); every other fragment parks.
///
/// Both slices are sets of global ranks; neither needs to be sorted.
/// An empty membership has no quorum.
pub fn has_quorum(fragment: &[usize], membership: &[usize]) -> bool {
    if membership.is_empty() {
        return false;
    }
    let in_both = membership.iter().filter(|g| fragment.contains(g)).count();
    if 2 * in_both > membership.len() {
        return true;
    }
    if 2 * in_both == membership.len() {
        // Exact tie: lowest-numbered member of M breaks it.
        let lowest = membership.iter().min().expect("non-empty membership");
        return fragment.contains(lowest);
    }
    false
}

/// Complementary error function, Abramowitz–Stegun 7.1.26 (|ε| ≤
/// 1.5e-7): plenty for suspicion levels, and dependency-free.
fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-ax * ax).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig::from_model(&NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        })
    }

    #[test]
    fn ewma_tracks_mean_and_spread() {
        let mut e = Ewma::new(0.5);
        assert!(e.is_empty());
        for _ in 0..20 {
            e.observe(2.0);
        }
        assert!((e.mean() - 2.0).abs() < 1e-12);
        assert!(e.std() < 1e-6, "constant stream has no spread");
        e.observe(10.0);
        assert!(e.mean() > 2.0);
        assert!(e.std() > 0.0);
        assert_eq!(e.len(), 21);
    }

    #[test]
    fn phi_needs_min_samples_then_grows_with_silence() {
        let mut h = HealthMonitor::new(cfg(), 2);
        assert_eq!(h.phi(1, 0.0), None, "no data yet");
        // Regular 1 s heartbeat.
        for k in 0..10 {
            h.heard(1, k as f64);
        }
        let on_time = h.phi(1, 9.5).unwrap();
        let late = h.phi(1, 13.0).unwrap();
        let very_late = h.phi(1, 60.0).unwrap();
        assert!(on_time < 1.0, "on-schedule peer is unsuspicious: {on_time}");
        assert!(late > on_time);
        assert!(very_late > h.config().phi_dead, "long silence: {very_late}");
    }

    #[test]
    fn slow_but_steady_peer_stays_below_dead_threshold() {
        // A peer that is *slow* (10 s gaps) but regular must never be
        // presumed dead while its silence stays below the learned gap
        // deadline.
        let mut h = HealthMonitor::new(cfg(), 1);
        for k in 0..30 {
            h.heard(0, 10.0 * k as f64);
        }
        let last = 290.0;
        let dl = h.gap_deadline(0).unwrap();
        assert!(dl >= 10.0, "deadline at least the typical gap: {dl}");
        let phi = h.phi(0, last + dl).unwrap();
        assert!(
            phi < h.config().phi_dead,
            "φ = {phi} at the learned deadline must stay below dead"
        );
    }

    #[test]
    fn learned_deadline_clamps_to_floor() {
        let mut h = HealthMonitor::new(cfg(), 1);
        for _ in 0..10 {
            h.observed_wait(0, 1e-6); // far below 4·α floor
        }
        assert_eq!(h.deadline(0), Some(4.0), "clamped to 4·α");
    }

    #[test]
    fn deadline_follows_observed_waits() {
        let mut h = HealthMonitor::new(cfg(), 1);
        for _ in 0..50 {
            h.observed_wait(0, 100.0);
        }
        let d = h.deadline(0).unwrap();
        assert!(d >= 100.0, "deadline covers the typical wait: {d}");
        assert!(d <= 200.0, "but is not absurdly padded: {d}");
    }

    #[test]
    fn suspect_flag_latches_until_heard() {
        let mut h = HealthMonitor::new(cfg(), 1);
        assert!(h.mark_suspect(0), "first flagging counts");
        assert!(!h.mark_suspect(0), "second does not");
        h.heard(0, 1.0);
        assert!(h.mark_suspect(0), "hearing from the peer re-arms");
    }

    #[test]
    fn reset_forgets_history() {
        let mut h = HealthMonitor::new(cfg(), 1);
        for k in 0..10 {
            h.heard(0, k as f64);
        }
        assert!(h.phi(0, 100.0).is_some());
        h.reset(0);
        assert_eq!(h.phi(0, 100.0), None);
        assert_eq!(h.gap_samples(0), 0);
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 1e-6);
    }

    #[test]
    fn retry_policy_constructors() {
        let f = RetryPolicy::fixed(5.0, 3, 0.5);
        assert_eq!(f.factor, 1.0);
        assert_eq!(f.jitter, 0.0);
        let e = RetryPolicy::exponential(5.0, 3, 0.5, 2.0, 0.25);
        assert_eq!(e.factor, 2.0);
    }

    #[test]
    fn phi_with_zero_or_one_sample_is_none() {
        let mut h = HealthMonitor::new(cfg(), 2);
        // Zero samples: never heard from at all.
        assert_eq!(h.phi(0, 1e9), None);
        // One heard() call records a timestamp but zero gaps.
        h.heard(0, 1.0);
        assert_eq!(h.gap_samples(0), 0);
        assert_eq!(h.phi(0, 1e9), None, "one observation yields no gaps");
        // A second call gives one gap — still below min_samples (4).
        h.heard(0, 2.0);
        assert_eq!(h.gap_samples(0), 1);
        assert_eq!(h.phi(0, 1e9), None, "1 gap < min_samples");
        // Out-of-range peer index never panics.
        assert_eq!(h.phi(99, 0.0), None);
    }

    #[test]
    fn ewma_deadline_tracks_monotone_increasing_gaps() {
        // Gaps grow 1, 2, 3, …: the learned gap deadline must keep up
        // with the growth (stay above the latest gap) instead of
        // freezing on early history.
        let mut h = HealthMonitor::new(cfg(), 1);
        let mut t = 0.0;
        let mut last_gap = 0.0;
        for k in 1..=30 {
            last_gap = k as f64;
            t += last_gap;
            h.heard(0, t);
        }
        let dl = h.gap_deadline(0).unwrap();
        assert!(
            dl > last_gap,
            "deadline {dl} must exceed the newest gap {last_gap}"
        );
        // And the peer is not presumed dead right at the next expected
        // arrival despite the drift.
        let phi = h.phi(0, t + last_gap).unwrap();
        assert!(phi < h.config().phi_dead, "φ = {phi} at one more gap");
    }

    #[test]
    fn quorum_requires_strict_majority() {
        let m = [0, 1, 2, 3, 4];
        assert!(has_quorum(&[0, 1, 2], &m));
        assert!(has_quorum(&[2, 3, 4], &m));
        assert!(!has_quorum(&[3, 4], &m));
        assert!(!has_quorum(&[], &m));
        // Ranks outside the membership don't help.
        assert!(!has_quorum(&[7, 8, 9, 3, 4], &m));
    }

    #[test]
    fn quorum_tie_breaks_on_lowest_member() {
        let m = [0, 1, 2, 3, 4, 5];
        // Exact 3–3 split: the side holding rank 0 wins.
        assert!(has_quorum(&[0, 2, 4], &m));
        assert!(!has_quorum(&[1, 3, 5], &m));
        // Membership need not start at 0: lowest member of M decides.
        let m2 = [3, 4, 5, 6];
        assert!(has_quorum(&[3, 4], &m2));
        assert!(!has_quorum(&[5, 6], &m2));
    }

    #[test]
    fn quorum_of_empty_membership_is_never_granted() {
        assert!(!has_quorum(&[0, 1], &[]));
        assert!(!has_quorum(&[], &[]));
    }

    #[test]
    fn at_most_one_fragment_holds_quorum() {
        // Any 2-way split of any membership: exactly one side may win.
        let m: Vec<usize> = (0..7).collect();
        for mask in 0u32..(1 << 7) {
            let a: Vec<usize> = (0..7).filter(|&b| mask & (1 << b) != 0).collect();
            let b: Vec<usize> = (0..7).filter(|&b| mask & (1 << b) == 0).collect();
            let wins = has_quorum(&a, &m) as u32 + has_quorum(&b, &m) as u32;
            assert_eq!(wins, 1, "split {a:?} / {b:?} must crown exactly one side");
        }
    }
}
