//! # mpsim — a deterministic message-passing simulator
//!
//! This crate is the "MPI" substrate of the repository. The paper
//! (*Integrated Model, Batch, and Domain Parallelism in Training Neural
//! Networks*, SPAA 2018) evaluates its algorithms with an α–β network
//! model on NERSC Cori; this crate lets us *execute* those algorithms —
//! every rank is an OS thread, messages flow over channels, and every
//! rank carries a **virtual clock** that is advanced by the same α–β
//! model the paper assumes, plus a FLOP/s model for local compute.
//!
//! Because real data moves through real collective algorithms, we can
//! check two things at once:
//!
//! 1. **numerical correctness** — a distributed matmul/SGD step produces
//!    the same numbers as a serial reference, and
//! 2. **cost-model fidelity** — the virtual time of an executed
//!    collective matches the closed-form α–β expression for its
//!    algorithm (ring, Bruck, recursive doubling, …).
//!
//! ## Timing semantics
//!
//! * `send` is *eager*: it never blocks and charges no local time; the
//!   message records the sender's clock as its departure time.
//! * `recv` completes at `max(receiver_clock, depart) + α + β·words`,
//!   i.e. the transfer cost is charged at the receiver and a receiver
//!   can never observe data "from the future".
//! * `irecv`/`wait` model perfectly-overlapped transfers: the message
//!   arrives at `depart + α + β·words` regardless of what the receiver
//!   was doing, and `wait` only clamps the receiver clock up to the
//!   arrival time. This is the overlap the paper assumes for the
//!   domain-parallel halo exchange (its Fig. 3) and for Fig. 8.
//! * `recv_channel`/`complete_channel` model an *executed* overlap
//!   engine: transfers are charged to a per-rank concurrent comm
//!   channel (`Clock::comm_busy`) that progresses while the main
//!   timeline runs compute; transfers on one channel serialize against
//!   each other (one NIC), and the main clock pays only when it drains
//!   an unfinished operation. This is what the non-blocking collectives
//!   of the `collectives` crate build on.
//! * `Clock::advance_flops` charges local compute at the machine's
//!   sustained FLOP/s.
//!
//! With synchronous SPMD ranks these rules reproduce the textbook
//! Thakur/Rabenseifner collective costs exactly (see the `collectives`
//! crate's tests).
//!
//! ## Determinism
//!
//! Message matching is by `(context, source, tag)` with per-pair FIFO
//! order, so a fixed program produces bit-identical results and virtual
//! times on every run, independent of OS scheduling.

pub mod clock;
pub mod comm;
pub mod engine;
pub mod error;
pub mod fault;
pub mod health;
pub mod netmodel;
pub mod router;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod world;

pub use clock::Clock;
pub use comm::{ChannelRecv, Communicator, RecvHandle, TraceSpan};
pub use error::{Error, FaultCtx, Result};
pub use fault::{apply_flips, BitFlip, FaultPlan, Span};
pub use health::{has_quorum, DetectorConfig, Ewma, HealthMonitor, RetryPolicy};
pub use netmodel::NetModel;
pub use stats::{RankStats, WorldStats};
pub use topology::Topology;
pub use trace::{EventKind, RankTrace, TraceConfig, TraceEvent, TraceSink, Track, WorldTrace};
pub use world::{Backend, World};

/// A rank index within a communicator.
pub type Rank = usize;

/// A message tag. Tags below [`comm::RESERVED_TAG_BASE`] are available to
/// applications; higher values are reserved for internal use by
/// collectives and control-plane traffic.
pub type Tag = u64;
