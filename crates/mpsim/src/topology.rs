//! Hierarchical network topology.
//!
//! The paper's Limitations section assumes a flat network but notes
//! that topology "can be approximated by adjusting the latency and
//! bandwidth terms accordingly". [`Topology`] does exactly that at the
//! message level: ranks are packed into nodes of `node_size`
//! consecutive global ranks, and intra-node messages get their α and β
//! scaled by configurable factors (< 1 = faster, e.g. shared-memory
//! transport). The flat default reproduces the paper's model
//! unchanged.
//!
//! This makes *rank placement* observable: mapping the `Pr × Pc` grid
//! so that the heavy all-gather groups land inside nodes measurably
//! beats the opposite placement — see the `ablation_topology` bench
//! binary.

/// Node-aware scaling of per-message costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Ranks per node (consecutive global ranks share a node).
    pub node_size: usize,
    /// Multiplier on α for intra-node messages.
    pub intra_alpha_factor: f64,
    /// Multiplier on β for intra-node messages.
    pub intra_beta_factor: f64,
}

impl Topology {
    /// The flat network of the paper: every message pays full α/β.
    pub fn flat() -> Self {
        Topology {
            node_size: 1,
            intra_alpha_factor: 1.0,
            intra_beta_factor: 1.0,
        }
    }

    /// A typical fat-node cluster: `node_size` ranks per node,
    /// intra-node messages 10× cheaper in latency and 4× in bandwidth
    /// (shared-memory transport vs NIC).
    pub fn fat_nodes(node_size: usize) -> Self {
        Topology {
            node_size,
            intra_alpha_factor: 0.1,
            intra_beta_factor: 0.25,
        }
    }

    /// Whether two global ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_size > 1 && a / self.node_size == b / self.node_size
    }

    /// The `(alpha_factor, beta_factor)` for a message from `src` to
    /// `dst`.
    #[inline]
    pub fn factors(&self, src: usize, dst: usize) -> (f64, f64) {
        if self.same_node(src, dst) {
            (self.intra_alpha_factor, self.intra_beta_factor)
        } else {
            (1.0, 1.0)
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_never_groups() {
        let t = Topology::flat();
        assert!(!t.same_node(0, 0));
        assert!(!t.same_node(0, 1));
        assert_eq!(t.factors(3, 7), (1.0, 1.0));
    }

    #[test]
    fn fat_nodes_group_consecutive_ranks() {
        let t = Topology::fat_nodes(4);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert!(t.same_node(5, 6));
        assert_eq!(t.factors(0, 3), (0.1, 0.25));
        assert_eq!(t.factors(3, 4), (1.0, 1.0));
    }
}
