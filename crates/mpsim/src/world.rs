//! Spawning a simulated world of ranks.
//!
//! Two execution backends produce bit-identical results (see
//! [`crate::engine`] for the determinism argument):
//!
//! * [`Backend::Events`] (default) — every rank is a fiber on a
//!   discrete-event scheduler in the calling thread. O(P) engine
//!   state; practical up to P = 65536 and beyond.
//! * [`Backend::Threads`] — the original one-OS-thread-per-rank
//!   backend, kept as a differential-testing oracle. P² channel
//!   senders and one stack per rank cap it at a few hundred ranks.
//!
//! Selection: [`Backend::set_override`] (process-global, for tests)
//! beats the `MPSIM_BACKEND` environment variable (`events` |
//! `threads`), which beats the default (`events`).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::clock::Clock;
use crate::comm::{Communicator, Inner};
use crate::engine;
use crate::fault::FaultPlan;
use crate::netmodel::NetModel;
use crate::router;
use crate::stats::{RankStats, WorldStats};
use crate::topology::Topology;
use crate::trace::{RankTrace, TraceConfig, WorldTrace};

/// Which execution engine runs the ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One OS thread per rank: the original backend. Kept as the
    /// differential-testing oracle; use for small worlds only.
    Threads,
    /// Discrete-event fiber engine: all ranks run cooperatively on the
    /// calling thread, scheduled by virtual time. The default.
    Events,
}

/// 0 = no override, 1 = Threads, 2 = Events.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

impl Backend {
    /// The backend the next `World::run_*` call will use:
    /// [`Backend::set_override`] if set, else `MPSIM_BACKEND`
    /// (`events` | `threads`), else [`Backend::Events`].
    pub fn current() -> Backend {
        match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
            1 => return Backend::Threads,
            2 => return Backend::Events,
            _ => {}
        }
        match std::env::var("MPSIM_BACKEND") {
            Ok(v) if v == "threads" => Backend::Threads,
            Ok(v) if v == "events" => Backend::Events,
            Ok(v) => panic!("MPSIM_BACKEND={v:?}: expected \"events\" or \"threads\""),
            Err(_) => Backend::Events,
        }
    }

    /// Process-global backend override, strongest selector. Lets tests
    /// drive code that calls `World::run_*` internally (the trainers,
    /// the chaos campaign) onto a chosen backend. `None` restores env /
    /// default selection.
    pub fn set_override(backend: Option<Backend>) {
        let v = match backend {
            None => 0,
            Some(Backend::Threads) => 1,
            Some(Backend::Events) => 2,
        };
        BACKEND_OVERRIDE.store(v, Ordering::Relaxed);
    }
}

/// Entry point: runs `size` ranks — fibers on the event backend, scoped
/// OS threads on the threaded backend — hands each a world
/// [`Communicator`], and collects their return values in rank order.
pub struct World;

impl World {
    /// Runs `f` on every rank of a `size`-rank world under `model`.
    ///
    /// # Examples
    ///
    /// A two-rank ping: the receiver's virtual clock advances by
    /// `α + β·words`.
    ///
    /// ```
    /// use mpsim::{NetModel, World};
    ///
    /// let model = NetModel { alpha: 1e-6, beta: 1e-9, flops: f64::INFINITY };
    /// let out = World::run(2, model, |comm| {
    ///     if comm.rank() == 0 {
    ///         comm.send(1, 0, &[1.0, 2.0]).unwrap();
    ///         0.0
    ///     } else {
    ///         let data = comm.recv(0, 0).unwrap();
    ///         assert_eq!(data, vec![1.0, 2.0]);
    ///         comm.now()
    ///     }
    /// });
    /// assert!((out[1] - (1e-6 + 2.0 * 1e-9)).abs() < 1e-18);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`, and propagates a panic from any rank
    /// (after all ranks have completed). A rank returning early while
    /// peers still expect its messages surfaces as
    /// [`crate::Error::Disconnected`] on the peers.
    pub fn run<T, F>(size: usize, model: NetModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_with_stats(size, model, f).0
    }

    /// Like [`World::run`] but also returns traffic counters and final
    /// virtual clocks for every rank.
    ///
    /// # Panics
    ///
    /// As [`World::run`]: `size == 0`, or a rank panic.
    pub fn run_with_stats<T, F>(size: usize, model: NetModel, f: F) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_with_stats(size, model, Topology::flat(), f)
    }

    /// Runs under a hierarchical [`Topology`]: intra-node messages get
    /// their α/β scaled per the topology, modelling fat nodes.
    ///
    /// # Panics
    ///
    /// As [`World::run`]: `size == 0`, or a rank panic.
    pub fn run_topo<T, F>(size: usize, model: NetModel, topo: Topology, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_with_stats(size, model, topo, f).0
    }

    /// [`World::run_topo`] with statistics.
    ///
    /// # Panics
    ///
    /// As [`World::run`]: `size == 0`, or a rank panic.
    pub fn run_topo_with_stats<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        f: F,
    ) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_with_stats(size, model, topo, FaultPlan::default(), f)
    }

    /// Runs under a deterministic [`FaultPlan`]: drops, stragglers,
    /// corruption, and rank deaths are injected exactly as scripted.
    /// Returns per-rank results and the world statistics (whose fault
    /// counters record what was injected and detected).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`, if `plan` fails [`FaultPlan::validate`]
    /// (message `invalid fault plan: …`, raised before any rank runs),
    /// or if a rank panics.
    pub fn run_with_faults<T, F>(
        size: usize,
        model: NetModel,
        plan: FaultPlan,
        f: F,
    ) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_with_stats(size, model, Topology::flat(), plan, f)
    }

    /// The fully general entry point: topology + fault plan + stats.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`, if `plan` fails [`FaultPlan::validate`]
    /// (message `invalid fault plan: …`, raised before any rank runs),
    /// or if a rank panics.
    pub fn run_topo_faults_with_stats<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        f: F,
    ) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        let (out, stats, _) =
            Self::run_topo_faults_traced(size, model, topo, plan, TraceConfig::disabled(), f);
        (out, stats)
    }

    /// [`World::run_with_stats`] with per-rank event tracing. The
    /// returned [`WorldTrace`] holds every recorded span/instant; feed
    /// it to [`crate::TraceSink`] for Chrome Trace JSON or a summary.
    ///
    /// # Panics
    ///
    /// As [`World::run`]: `size == 0`, or a rank panic.
    pub fn run_traced_with_stats<T, F>(
        size: usize,
        model: NetModel,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_traced(
            size,
            model,
            Topology::flat(),
            FaultPlan::default(),
            trace,
            f,
        )
    }

    /// [`World::run_with_faults`] with per-rank event tracing.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`, if `plan` fails [`FaultPlan::validate`]
    /// (message `invalid fault plan: …`, raised before any rank runs),
    /// or if a rank panics.
    pub fn run_faults_traced<T, F>(
        size: usize,
        model: NetModel,
        plan: FaultPlan,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_traced(size, model, Topology::flat(), plan, trace, f)
    }

    /// The fully general entry point with tracing: topology + fault
    /// plan + stats + trace, on the currently selected [`Backend`].
    /// All other `run_*` variants delegate here (with tracing disabled
    /// they add zero work to the virtual clock — one boolean test per
    /// instrumented site).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`, if `plan` fails [`FaultPlan::validate`]
    /// (message `invalid fault plan: …`, raised before any rank runs),
    /// or if a rank panics (the panic is re-thrown after all ranks have
    /// completed; with several panicking ranks the lowest rank's
    /// payload wins on the event backend).
    pub fn run_topo_faults_traced<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_traced_on(Backend::current(), size, model, topo, plan, trace, f)
    }

    /// [`World::run_topo_faults_traced`] on an explicitly chosen
    /// [`Backend`], ignoring override/environment selection. This is
    /// the differential-testing entry point: run the same world twice,
    /// once per backend, and compare everything bit-for-bit.
    ///
    /// # Panics
    ///
    /// As [`World::run_topo_faults_traced`].
    pub fn run_topo_faults_traced_on<T, F>(
        backend: Backend,
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        assert!(size > 0, "world size must be positive");
        if let Err(msg) = plan.validate() {
            panic!("invalid fault plan: {msg}");
        }
        let joined = match backend {
            Backend::Threads => Self::run_threads(size, model, topo, plan, trace, &f),
            Backend::Events => Self::run_events(size, model, topo, plan, trace, &f),
        };
        let mut results = Vec::with_capacity(size);
        let mut stats = WorldStats::default();
        let mut traces = WorldTrace::default();
        for (out, rank_stats, clock, trace) in joined {
            results.push(out);
            stats.ranks.push(rank_stats);
            stats.clocks.push(clock);
            traces.ranks.push(trace);
        }
        (results, stats, traces)
    }

    /// Threaded backend: one scoped OS thread per rank, crossbeam
    /// channels, join in rank order.
    fn run_threads<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        trace: TraceConfig,
        f: &F,
    ) -> Vec<(T, RankStats, Clock, RankTrace)>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        let endpoints = router::build(size);
        let plan = Arc::new(plan);
        let mut joined: Vec<(T, RankStats, Clock, RankTrace)> = Vec::with_capacity(size);
        // Lowest-rank panic payload, re-thrown intact after every rank
        // has been joined — same contract as the event backend.
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, endpoint) in endpoints.into_iter().enumerate() {
                let plan = Arc::clone(&plan);
                handles.push(scope.spawn(move || {
                    let inner = Rc::new(RefCell::new(Inner::new(
                        rank, size, endpoint, model, topo, plan, trace,
                    )));
                    let comm = Communicator::world(Rc::clone(&inner));
                    let out = f(&comm);
                    let mut i = inner.borrow_mut();
                    let now = i.clock.now;
                    let trace = i.tracer.finish(rank, now);
                    (out, i.stats, i.clock, trace)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(v) => joined.push(v),
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
        });
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        joined
    }

    /// Event backend: every rank is a fiber on the discrete-event
    /// engine; the whole world runs on the calling thread.
    fn run_events<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        trace: TraceConfig,
        f: &F,
    ) -> Vec<(T, RankStats, Clock, RankTrace)>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        let plan = Arc::new(plan);
        let (fabric, endpoints) = router::build_event(size);
        type Slot<T> = Option<(T, RankStats, Clock, RankTrace)>;
        let slots: Rc<RefCell<Vec<Slot<T>>>> =
            Rc::new(RefCell::new((0..size).map(|_| None).collect()));
        let mut closures: Vec<Box<dyn FnOnce()>> = Vec::with_capacity(size);
        for (rank, endpoint) in endpoints.into_iter().enumerate() {
            let plan = Arc::clone(&plan);
            let slots = Rc::clone(&slots);
            let closure: Box<dyn FnOnce() + '_> = Box::new(move || {
                let inner = Rc::new(RefCell::new(Inner::new(
                    rank, size, endpoint, model, topo, plan, trace,
                )));
                let comm = Communicator::world(Rc::clone(&inner));
                let out = f(&comm);
                drop(comm);
                let mut i = inner.borrow_mut();
                let now = i.clock.now;
                let tr = i.tracer.finish(rank, now);
                slots.borrow_mut()[rank] = Some((out, i.stats, i.clock, tr));
            });
            // SAFETY: engine::run only returns — or unwinds — after
            // every fiber has completed and dropped its closure, so the
            // borrows of `f` and `slots` captured here never outlive
            // this stack frame. (If the engine itself has a bug it
            // leaks unfinished fibers rather than resume them later.)
            let closure: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(closure) };
            closures.push(closure);
        }
        engine::run(&fabric, closures);
        let slots = Rc::try_unwrap(slots)
            .ok()
            .expect("all fiber closures dropped")
            .into_inner();
        slots
            .into_iter()
            .enumerate()
            .map(|(rank, s)| s.unwrap_or_else(|| panic!("rank {rank} produced no result")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_rank_order() {
        let out = World::run(8, NetModel::free(), |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::run(1, NetModel::free(), |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            1
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn stats_collects_clock_per_rank() {
        let model = NetModel {
            alpha: 0.0,
            beta: 0.0,
            flops: 1e9,
        };
        let (_, stats) = World::run_with_stats(3, model, |comm| {
            comm.advance_flops((comm.rank() as f64 + 1.0) * 1e9);
        });
        assert!((stats.makespan() - 3.0).abs() < 1e-12);
        assert!((stats.max_compute() - 3.0).abs() < 1e-12);
        assert_eq!(stats.max_comm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_size_world_panics() {
        let _ = World::run(0, NetModel::free(), |_| ());
    }

    #[test]
    fn topology_scales_intra_node_messages() {
        use crate::topology::Topology;
        let model = NetModel {
            alpha: 1.0,
            beta: 1.0,
            flops: f64::INFINITY,
        };
        let topo = Topology {
            node_size: 2,
            intra_alpha_factor: 0.5,
            intra_beta_factor: 0.25,
        };
        // Ranks 0 and 1 share a node; ranks 0 and 2 do not.
        let out = World::run_topo(4, model, topo, |comm| match comm.rank() {
            0 => {
                comm.send(1, 0, &[0.0; 4]).unwrap();
                comm.send(2, 0, &[0.0; 4]).unwrap();
                0.0
            }
            1 => {
                comm.recv(0, 0).unwrap();
                comm.now()
            }
            2 => {
                comm.recv(0, 0).unwrap();
                comm.now()
            }
            _ => 0.0,
        });
        // Intra-node: 0.5*alpha + 0.25*4*beta = 1.5; inter: 1 + 4 = 5.
        assert!((out[1] - 1.5).abs() < 1e-12, "intra-node: {}", out[1]);
        assert!((out[2] - 5.0).abs() < 1e-12, "inter-node: {}", out[2]);
    }

    #[test]
    fn deterministic_replay_produces_identical_stats() {
        let run = || {
            World::run_with_stats(6, NetModel::cori_knl(), |comm| {
                // A little traffic with data-dependent sizes.
                let peer = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                let data = vec![comm.rank() as f64; comm.rank() + 1];
                comm.send(peer, 1, &data).unwrap();
                let got = comm.recv(prev, 1).unwrap();
                comm.advance_flops(got.len() as f64 * 1e6);
                comm.now()
            })
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "virtual times are bit-identical across runs");
        assert_eq!(sa.ranks, sb.ranks);
    }

    /// The two backends agree bit-for-bit on a plain workload.
    #[test]
    fn backends_agree_on_ring_workload() {
        let workload = |comm: &Communicator| {
            let peer = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let data = vec![comm.rank() as f64 + 0.25; comm.rank() + 3];
            comm.send(peer, 1, &data).unwrap();
            let got = comm.recv(prev, 1).unwrap();
            comm.advance_flops(got.len() as f64 * 1e7);
            comm.barrier().unwrap();
            (got, comm.now())
        };
        let run = |backend| {
            World::run_topo_faults_traced_on(
                backend,
                5,
                NetModel::cori_knl(),
                Topology::flat(),
                FaultPlan::default(),
                TraceConfig::disabled(),
                workload,
            )
        };
        let (ra, sa, _) = run(Backend::Threads);
        let (rb, sb, _) = run(Backend::Events);
        assert_eq!(ra, rb);
        assert_eq!(sa.ranks, sb.ranks);
        assert_eq!(sa.clocks, sb.clocks);
    }

    /// A world inside a world: the event engine nests (TLS save/restore
    /// around fiber resume), as the chaos campaign and benches rely on.
    #[test]
    fn nested_worlds_compose_on_event_backend() {
        let out = World::run_topo_faults_traced_on(
            Backend::Events,
            2,
            NetModel::free(),
            Topology::flat(),
            FaultPlan::default(),
            TraceConfig::disabled(),
            |comm| {
                let inner = World::run_topo_faults_traced_on(
                    Backend::Events,
                    3,
                    NetModel::free(),
                    Topology::flat(),
                    FaultPlan::default(),
                    TraceConfig::disabled(),
                    |c| c.rank() * 2,
                )
                .0;
                (comm.rank(), inner)
            },
        )
        .0;
        assert_eq!(out, vec![(0, vec![0, 2, 4]), (1, vec![0, 2, 4])]);
    }
}
