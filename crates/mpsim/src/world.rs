//! Spawning a simulated world of ranks.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use crate::clock::Clock;
use crate::comm::{Communicator, Inner};
use crate::fault::FaultPlan;
use crate::health::{DetectorConfig, HealthMonitor};
use crate::netmodel::NetModel;
use crate::router;
use crate::stats::{RankStats, WorldStats};
use crate::topology::Topology;
use crate::trace::{RankTrace, TraceConfig, Tracer, WorldTrace};

/// Entry point: spawns `size` ranks as scoped OS threads, hands each a
/// world [`Communicator`], and collects their return values in rank
/// order.
pub struct World;

impl World {
    /// Runs `f` on every rank of a `size`-rank world under `model`.
    ///
    /// # Examples
    ///
    /// A two-rank ping: the receiver's virtual clock advances by
    /// `α + β·words`.
    ///
    /// ```
    /// use mpsim::{NetModel, World};
    ///
    /// let model = NetModel { alpha: 1e-6, beta: 1e-9, flops: f64::INFINITY };
    /// let out = World::run(2, model, |comm| {
    ///     if comm.rank() == 0 {
    ///         comm.send(1, 0, &[1.0, 2.0]).unwrap();
    ///         0.0
    ///     } else {
    ///         let data = comm.recv(0, 0).unwrap();
    ///         assert_eq!(data, vec![1.0, 2.0]);
    ///         comm.now()
    ///     }
    /// });
    /// assert!((out[1] - (1e-6 + 2.0 * 1e-9)).abs() < 1e-18);
    /// ```
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank (after all threads are joined by
    /// the scope). A rank returning early while peers still expect its
    /// messages surfaces as [`crate::Error::Disconnected`] on the peers.
    pub fn run<T, F>(size: usize, model: NetModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_with_stats(size, model, f).0
    }

    /// Like [`World::run`] but also returns traffic counters and final
    /// virtual clocks for every rank.
    pub fn run_with_stats<T, F>(size: usize, model: NetModel, f: F) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_with_stats(size, model, Topology::flat(), f)
    }

    /// Runs under a hierarchical [`Topology`]: intra-node messages get
    /// their α/β scaled per the topology, modelling fat nodes.
    pub fn run_topo<T, F>(size: usize, model: NetModel, topo: Topology, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_with_stats(size, model, topo, f).0
    }

    /// [`World::run_topo`] with statistics.
    pub fn run_topo_with_stats<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        f: F,
    ) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_with_stats(size, model, topo, FaultPlan::default(), f)
    }

    /// Runs under a deterministic [`FaultPlan`]: drops, stragglers,
    /// corruption, and rank deaths are injected exactly as scripted.
    /// Returns per-rank results and the world statistics (whose fault
    /// counters record what was injected and detected).
    pub fn run_with_faults<T, F>(
        size: usize,
        model: NetModel,
        plan: FaultPlan,
        f: F,
    ) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_with_stats(size, model, Topology::flat(), plan, f)
    }

    /// The fully general entry point: topology + fault plan + stats.
    pub fn run_topo_faults_with_stats<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        f: F,
    ) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        let (out, stats, _) =
            Self::run_topo_faults_traced(size, model, topo, plan, TraceConfig::disabled(), f);
        (out, stats)
    }

    /// [`World::run_with_stats`] with per-rank event tracing. The
    /// returned [`WorldTrace`] holds every recorded span/instant; feed
    /// it to [`crate::TraceSink`] for Chrome Trace JSON or a summary.
    pub fn run_traced_with_stats<T, F>(
        size: usize,
        model: NetModel,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_traced(
            size,
            model,
            Topology::flat(),
            FaultPlan::default(),
            trace,
            f,
        )
    }

    /// [`World::run_with_faults`] with per-rank event tracing.
    pub fn run_faults_traced<T, F>(
        size: usize,
        model: NetModel,
        plan: FaultPlan,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        Self::run_topo_faults_traced(size, model, Topology::flat(), plan, trace, f)
    }

    /// The fully general entry point with tracing: topology + fault
    /// plan + stats + trace. All other `run_*` variants delegate here
    /// (with tracing disabled they add zero work to the virtual clock —
    /// one boolean test per instrumented site).
    pub fn run_topo_faults_traced<T, F>(
        size: usize,
        model: NetModel,
        topo: Topology,
        plan: FaultPlan,
        trace: TraceConfig,
        f: F,
    ) -> (Vec<T>, WorldStats, WorldTrace)
    where
        T: Send,
        F: Fn(&Communicator) -> T + Sync,
    {
        assert!(size > 0, "world size must be positive");
        if let Err(msg) = plan.validate() {
            panic!("invalid fault plan: {msg}");
        }
        let endpoints = router::build(size);
        let f = &f;
        let plan = Arc::new(plan);
        let mut joined: Vec<(T, RankStats, Clock, RankTrace)> = Vec::with_capacity(size);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, endpoint) in endpoints.into_iter().enumerate() {
                let plan = Arc::clone(&plan);
                handles.push(scope.spawn(move || {
                    let n_compute_flips = plan.compute_flip_entries();
                    let n_memory_flips = plan.memory_flip_entries();
                    let inner = Rc::new(RefCell::new(Inner {
                        global_rank: rank,
                        world_size: size,
                        endpoint,
                        pending: HashMap::new(),
                        clock: Clock::new(),
                        model,
                        topo,
                        stats: RankStats::default(),
                        split_seq: 0,
                        plan,
                        link_seq: vec![0; size],
                        dead_peers: BTreeMap::new(),
                        dead_surfaced: BTreeMap::new(),
                        aborted_peers: BTreeMap::new(),
                        fault_epoch: 0,
                        fault_sync_seq: 0,
                        died: false,
                        died_at: None,
                        revive_floor: f64::NEG_INFINITY,
                        health: HealthMonitor::new(DetectorConfig::from_model(&model), size),
                        rejoin_notices: BTreeMap::new(),
                        unreachable_peers: BTreeMap::new(),
                        unreachable_surfaced: BTreeMap::new(),
                        reorder_held: vec![Vec::new(); size],
                        nb_seq: HashMap::new(),
                        tracer: Tracer::new(trace),
                        fault_ctx: None,
                        compute_flips_spent: vec![false; n_compute_flips],
                        memory_flips_spent: vec![false; n_memory_flips],
                    }));
                    let comm = Communicator::world(Rc::clone(&inner));
                    let out = f(&comm);
                    let mut i = inner.borrow_mut();
                    let now = i.clock.now;
                    let trace = i.tracer.finish(rank, now);
                    (out, i.stats, i.clock, trace)
                }));
            }
            for h in handles {
                joined.push(h.join().expect("rank thread panicked"));
            }
        });
        let mut results = Vec::with_capacity(size);
        let mut stats = WorldStats::default();
        let mut traces = WorldTrace::default();
        for (out, rank_stats, clock, trace) in joined {
            results.push(out);
            stats.ranks.push(rank_stats);
            stats.clocks.push(clock);
            traces.ranks.push(trace);
        }
        (results, stats, traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_rank_order() {
        let out = World::run(8, NetModel::free(), |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::run(1, NetModel::free(), |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            1
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn stats_collects_clock_per_rank() {
        let model = NetModel {
            alpha: 0.0,
            beta: 0.0,
            flops: 1e9,
        };
        let (_, stats) = World::run_with_stats(3, model, |comm| {
            comm.advance_flops((comm.rank() as f64 + 1.0) * 1e9);
        });
        assert!((stats.makespan() - 3.0).abs() < 1e-12);
        assert!((stats.max_compute() - 3.0).abs() < 1e-12);
        assert_eq!(stats.max_comm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_size_world_panics() {
        let _ = World::run(0, NetModel::free(), |_| ());
    }

    #[test]
    fn topology_scales_intra_node_messages() {
        use crate::topology::Topology;
        let model = NetModel {
            alpha: 1.0,
            beta: 1.0,
            flops: f64::INFINITY,
        };
        let topo = Topology {
            node_size: 2,
            intra_alpha_factor: 0.5,
            intra_beta_factor: 0.25,
        };
        // Ranks 0 and 1 share a node; ranks 0 and 2 do not.
        let out = World::run_topo(4, model, topo, |comm| match comm.rank() {
            0 => {
                comm.send(1, 0, &[0.0; 4]).unwrap();
                comm.send(2, 0, &[0.0; 4]).unwrap();
                0.0
            }
            1 => {
                comm.recv(0, 0).unwrap();
                comm.now()
            }
            2 => {
                comm.recv(0, 0).unwrap();
                comm.now()
            }
            _ => 0.0,
        });
        // Intra-node: 0.5*alpha + 0.25*4*beta = 1.5; inter: 1 + 4 = 5.
        assert!((out[1] - 1.5).abs() < 1e-12, "intra-node: {}", out[1]);
        assert!((out[2] - 5.0).abs() < 1e-12, "inter-node: {}", out[2]);
    }

    #[test]
    fn deterministic_replay_produces_identical_stats() {
        let run = || {
            World::run_with_stats(6, NetModel::cori_knl(), |comm| {
                // A little traffic with data-dependent sizes.
                let peer = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                let data = vec![comm.rank() as f64; comm.rank() + 1];
                comm.send(peer, 1, &data).unwrap();
                let got = comm.recv(prev, 1).unwrap();
                comm.advance_flops(got.len() as f64 * 1e6);
                comm.now()
            })
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "virtual times are bit-identical across runs");
        assert_eq!(sa.ranks, sb.ranks);
    }
}
