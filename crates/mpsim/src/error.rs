//! Error type for simulator operations.

use std::fmt;

/// Errors surfaced by `mpsim` operations.
///
/// The simulator is intended for in-process experiments, so most misuse
/// (e.g. deadlock from mismatched send/recv) manifests as a hang rather
/// than an error; `Error` covers the conditions we can detect cheaply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A rank index was outside `0..size` for the communicator.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// The peer's channel was disconnected (its thread panicked or
    /// returned early).
    Disconnected {
        /// Global rank of the unreachable peer.
        peer: usize,
    },
    /// A received payload had a different length than the caller
    /// required (`recv_into` with a fixed-size buffer).
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// A collective was invoked with inconsistent arguments across
    /// ranks (detected opportunistically).
    CollectiveMismatch(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            Error::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected (thread panicked or exited early)")
            }
            Error::LengthMismatch { expected, got } => {
                write!(f, "payload length mismatch: expected {expected} elements, got {got}")
            }
            Error::CollectiveMismatch(msg) => write!(f, "collective argument mismatch: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
