//! Error type for simulator operations.

use std::fmt;

/// Where in the training computation a detected fault bit: the
/// iteration and the per-iteration operation index (GEMMs numbered in
/// execution order; forward layers first, then backward ops). Attached
/// to [`Error::Corrupted`] and [`Error::SilentCorruption`] so a
/// minimized chaos-plan report can say *where* a fault struck, not just
/// which link. `None` outside an instrumented trainer phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCtx {
    /// Training iteration in which the fault was detected.
    pub iter: u64,
    /// Per-iteration operation index at the detection point.
    pub op: u64,
}

impl fmt::Display for FaultCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iter {} op {}", self.iter, self.op)
    }
}

/// Errors surfaced by `mpsim` operations.
///
/// The simulator is intended for in-process experiments, so most misuse
/// (e.g. deadlock from mismatched send/recv) manifests as a hang rather
/// than an error; `Error` covers the conditions we can detect cheaply,
/// plus the fault conditions injected by a [`crate::FaultPlan`]
/// (timeouts, rank failure, payload corruption, collective aborts).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A rank index was outside `0..size` for the communicator.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// The peer's channel was disconnected (its thread panicked or
    /// returned early).
    Disconnected {
        /// Global rank of the unreachable peer.
        peer: usize,
    },
    /// A received payload had a different length than the caller
    /// required (`recv_into` with a fixed-size buffer).
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// A collective was invoked with inconsistent arguments across
    /// ranks (detected opportunistically).
    CollectiveMismatch(String),
    /// A receive deadline expired before a matching message arrived
    /// (either the message was dropped by the fault plan, or it is
    /// merely late — a retry may still succeed). `waited` is the
    /// virtual time spent waiting, charged to the clock as
    /// communication; it is `f64::INFINITY` when the simulator can
    /// prove the message will never arrive (a dropped message observed
    /// without a deadline).
    Timeout {
        /// Communicator-local rank the receive was posted against.
        rank: usize,
        /// Tag of the expected message.
        tag: crate::Tag,
        /// Virtual seconds waited before giving up.
        waited: f64,
    },
    /// A peer rank died (was killed by the fault plan). Reported with
    /// the *global* rank so the failure can be correlated across
    /// sub-communicators; also returned by every operation on the dead
    /// rank itself.
    RankFailed {
        /// Global rank of the failed peer (or of this rank, when it is
        /// the one that died).
        rank: usize,
    },
    /// A received payload failed checksum verification (the fault plan
    /// flipped a bit in flight). The transfer cost has already been
    /// charged; the corrupt data is discarded rather than delivered.
    Corrupted {
        /// Communicator-local rank the message came from.
        rank: usize,
        /// Tag of the corrupt message.
        tag: crate::Tag,
        /// Where in the training computation the corruption surfaced,
        /// when the detection site had a context registered.
        ctx: Option<FaultCtx>,
    },
    /// Silent data corruption detected *inside* a rank — an ABFT
    /// checksum mismatch on a GEMM output that could not be corrected
    /// in place, or a weight-memory audit failure. No wire message was
    /// involved; the rank's own state is suspect, so callers must
    /// escalate to checkpoint rollback.
    SilentCorruption {
        /// Global rank whose computation or memory was corrupted.
        rank: usize,
        /// What failed verification: `"gemm"` (uncorrectable ABFT
        /// residual) or `"weights"` (resident-parameter audit).
        what: &'static str,
        /// Where in the training computation the corruption was
        /// detected.
        ctx: Option<FaultCtx>,
    },
    /// A peer abandoned the current collective/data-plane phase after
    /// observing a fault, blaming global rank `culprit`. Callers should
    /// stop the phase and enter recovery.
    Aborted {
        /// Global rank blamed for the abort.
        culprit: usize,
    },
    /// A peer is unreachable across a network partition (or has parked
    /// in a minority fragment): it may well be alive, but no traffic
    /// from it can arrive until the partition heals. Reported with the
    /// *global* rank, like [`Error::RankFailed`].
    Unreachable {
        /// Global rank of the unreachable peer.
        rank: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            Error::Disconnected { peer } => {
                write!(
                    f,
                    "peer rank {peer} disconnected (thread panicked or exited early)"
                )
            }
            Error::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "payload length mismatch: expected {expected} elements, got {got}"
                )
            }
            Error::CollectiveMismatch(msg) => write!(f, "collective argument mismatch: {msg}"),
            Error::Timeout { rank, tag, waited } => {
                write!(
                    f,
                    "receive from rank {rank} (tag {tag}) timed out after {waited} virtual seconds"
                )
            }
            Error::RankFailed { rank } => write!(f, "rank {rank} failed (killed by fault plan)"),
            Error::Corrupted { rank, tag, ctx } => {
                write!(
                    f,
                    "payload from rank {rank} (tag {tag}) failed checksum verification"
                )?;
                if let Some(c) = ctx {
                    write!(f, " at {c}")?;
                }
                Ok(())
            }
            Error::SilentCorruption { rank, what, ctx } => {
                write!(f, "silent data corruption on rank {rank} ({what})")?;
                if let Some(c) = ctx {
                    write!(f, " at {c}")?;
                }
                Ok(())
            }
            Error::Aborted { culprit } => {
                write!(f, "collective aborted by a peer blaming rank {culprit}")
            }
            Error::Unreachable { rank } => {
                write!(f, "rank {rank} unreachable across a network partition")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Error> {
        vec![
            Error::RankOutOfRange { rank: 5, size: 4 },
            Error::Disconnected { peer: 2 },
            Error::LengthMismatch {
                expected: 8,
                got: 6,
            },
            Error::CollectiveMismatch("block sizes differ".into()),
            Error::Timeout {
                rank: 1,
                tag: 42,
                waited: 2.5,
            },
            Error::RankFailed { rank: 3 },
            Error::Corrupted {
                rank: 0,
                tag: 7,
                ctx: Some(FaultCtx { iter: 3, op: 2 }),
            },
            Error::Aborted { culprit: 6 },
            Error::Unreachable { rank: 4 },
            Error::SilentCorruption {
                rank: 5,
                what: "gemm",
                ctx: Some(FaultCtx { iter: 1, op: 4 }),
            },
        ]
    }

    #[test]
    fn display_mentions_the_key_facts() {
        let msgs: Vec<String> = all_variants().iter().map(|e| e.to_string()).collect();
        assert!(msgs[0].contains("rank 5") && msgs[0].contains("size 4"));
        assert!(msgs[1].contains("peer rank 2"));
        assert!(msgs[2].contains("expected 8") && msgs[2].contains("got 6"));
        assert!(msgs[3].contains("block sizes differ"));
        assert!(
            msgs[4].contains("rank 1") && msgs[4].contains("tag 42") && msgs[4].contains("2.5")
        );
        assert!(msgs[5].contains("rank 3") && msgs[5].contains("failed"));
        assert!(msgs[6].contains("rank 0") && msgs[6].contains("checksum"));
        assert!(
            msgs[6].contains("iter 3") && msgs[6].contains("op 2"),
            "context tag rendered: {}",
            msgs[6]
        );
        assert!(msgs[7].contains("rank 6") && msgs[7].contains("abort"));
        assert!(msgs[8].contains("rank 4") && msgs[8].contains("unreachable"));
        assert!(
            msgs[9].contains("rank 5")
                && msgs[9].contains("silent")
                && msgs[9].contains("gemm")
                && msgs[9].contains("iter 1"),
            "got: {}",
            msgs[9]
        );
        // Without a registered context the tag is simply absent.
        let bare = Error::Corrupted {
            rank: 0,
            tag: 7,
            ctx: None,
        }
        .to_string();
        assert!(!bare.contains("iter"), "got: {bare}");
    }

    #[test]
    fn implements_std_error_without_a_source() {
        for e in all_variants() {
            let dyn_err: &dyn std::error::Error = &e;
            assert!(dyn_err.source().is_none());
            assert!(!dyn_err.to_string().is_empty());
        }
    }

    #[test]
    fn equality_distinguishes_payloads() {
        assert_eq!(
            Error::Timeout {
                rank: 1,
                tag: 2,
                waited: 3.0
            },
            Error::Timeout {
                rank: 1,
                tag: 2,
                waited: 3.0
            }
        );
        assert_ne!(
            Error::Timeout {
                rank: 1,
                tag: 2,
                waited: 3.0
            },
            Error::Timeout {
                rank: 1,
                tag: 2,
                waited: 4.0
            }
        );
        assert_ne!(Error::RankFailed { rank: 1 }, Error::Aborted { culprit: 1 });
        // Clone + Debug round-trip (the traits tests rely on).
        let e = Error::Corrupted {
            rank: 2,
            tag: 9,
            ctx: None,
        };
        assert_eq!(e.clone(), e);
        assert!(format!("{e:?}").contains("Corrupted"));
        // The context participates in equality: same site, different
        // iteration → different error.
        assert_ne!(
            Error::SilentCorruption {
                rank: 1,
                what: "weights",
                ctx: Some(FaultCtx { iter: 0, op: 0 }),
            },
            Error::SilentCorruption {
                rank: 1,
                what: "weights",
                ctx: Some(FaultCtx { iter: 1, op: 0 }),
            }
        );
    }
}
