//! Per-rank virtual clocks.
//!
//! Each simulated rank owns one [`Clock`]. The clock is a plain `f64`
//! number of seconds plus an attribution of elapsed time to
//! communication vs. compute, which is what the paper's stacked bar
//! charts (Figs. 6–10) report.

use crate::netmodel::NetModel;

/// Virtual time of one rank, split by cause.
///
/// Besides the main timeline (`now = comm + compute`), the clock tracks
/// a **concurrent communication channel**: a second timeline on which
/// non-blocking collectives charge their transfers. Work scheduled on
/// the channel progresses while the main timeline runs compute, so
/// outstanding operations overlap with computation instead of summing
/// with it; the main timeline only pays for the channel when it blocks
/// in a `wait`/drain (see [`Clock::channel_transfer`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Clock {
    /// Current virtual time in seconds.
    pub now: f64,
    /// Portion of `now` attributed to communication (time spent blocked
    /// in `recv`/`wait`, including α–β transfer charges).
    pub comm: f64,
    /// Portion of `now` attributed to local compute.
    pub compute: f64,
    /// Absolute virtual time at which the concurrent comm channel is
    /// next free. Transfers scheduled on the channel serialize against
    /// each other (one NIC), not against the main timeline.
    pub comm_busy: f64,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Advances by an explicit amount of compute time.
    #[inline]
    pub fn advance_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        self.now += seconds;
        self.compute += seconds;
    }

    /// Charges `flops` floating-point operations at the machine rate.
    #[inline]
    pub fn advance_flops(&mut self, flops: f64, model: &NetModel) {
        self.advance_compute(model.compute(flops));
    }

    /// Advances by an explicit amount of communication time.
    #[inline]
    pub fn advance_comm(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative comm time");
        self.now += seconds;
        self.comm += seconds;
    }

    /// Completes a blocking receive whose message departed the sender at
    /// `depart` and needs `transfer` seconds on the wire. The receiver
    /// first waits (idle counts as communication time) until the message
    /// departs, then pays the transfer.
    #[inline]
    pub fn complete_recv(&mut self, depart: f64, transfer: f64) {
        debug_assert!(
            transfer.is_finite() && transfer >= 0.0,
            "transfer time must be finite and non-negative, got {transfer}"
        );
        let start = self.now.max(depart);
        let finish = start + transfer;
        self.comm += finish - self.now;
        self.now = finish;
    }

    /// Completes a `wait` on an overlapped receive that arrived at
    /// `arrival` (absolute virtual time). Only clamps the clock forward;
    /// if the data already arrived this is free.
    #[inline]
    pub fn complete_wait(&mut self, arrival: f64) {
        if arrival > self.now {
            self.comm += arrival - self.now;
            self.now = arrival;
        }
    }

    /// Jumps the clock to `t` if `t` is later, attributing the idle gap
    /// to communication (used by barriers and clock-synchronizing
    /// collectives).
    #[inline]
    pub fn sync_to(&mut self, t: f64) {
        if t > self.now {
            self.comm += t - self.now;
            self.now = t;
        }
    }

    /// Schedules `transfer` seconds on the concurrent comm channel: the
    /// transfer starts once the data is available (`avail`, an absolute
    /// virtual time — the sender-side departure plus any injected
    /// delay) *and* the channel is free, and occupies the channel until
    /// it finishes. Returns the absolute finish time.
    ///
    /// Does **not** advance `now`: the main timeline keeps computing
    /// and only pays when it blocks on the result (via
    /// [`Clock::complete_wait`] at drain time).
    ///
    /// A zero-length message is a zero-duration reservation: `finish ==
    /// start` and the channel horizon does not move past `max(comm_busy,
    /// avail)`. Transfer times must be finite — an `α + β·words` charge
    /// is finite for every word count, including 0, even on
    /// `flops: f64::INFINITY` machines (the FLOP rate never enters a
    /// transfer), and a non-finite value would poison `comm_busy` and
    /// every later overlap computation with NaN.
    #[inline]
    pub fn channel_transfer(&mut self, avail: f64, transfer: f64) -> f64 {
        debug_assert!(
            transfer.is_finite() && transfer >= 0.0,
            "transfer time must be finite and non-negative, got {transfer}"
        );
        debug_assert!(avail.is_finite(), "availability time must be finite");
        let start = self.comm_busy.max(avail);
        let finish = start + transfer;
        self.comm_busy = finish;
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_sums_to_now() {
        let mut c = Clock::new();
        c.advance_compute(1.5);
        c.advance_comm(0.5);
        c.complete_recv(3.0, 0.25);
        assert!((c.now - (c.comm + c.compute)).abs() < 1e-12);
    }

    #[test]
    fn recv_waits_for_departure() {
        let mut c = Clock::new();
        c.advance_compute(1.0);
        // Message departed at t=5, transfer 2s: finish at 7.
        c.complete_recv(5.0, 2.0);
        assert!((c.now - 7.0).abs() < 1e-12);
        assert!((c.comm - 6.0).abs() < 1e-12);
    }

    #[test]
    fn recv_of_already_departed_message_only_pays_transfer() {
        let mut c = Clock::new();
        c.advance_compute(10.0);
        c.complete_recv(5.0, 2.0);
        assert!((c.now - 12.0).abs() < 1e-12);
    }

    #[test]
    fn wait_is_free_when_data_arrived() {
        let mut c = Clock::new();
        c.advance_compute(10.0);
        c.complete_wait(7.0);
        assert!((c.now - 10.0).abs() < 1e-12);
        assert_eq!(c.comm, 0.0);
    }

    #[test]
    fn wait_clamps_forward_otherwise() {
        let mut c = Clock::new();
        c.advance_compute(1.0);
        c.complete_wait(4.0);
        assert!((c.now - 4.0).abs() < 1e-12);
        assert!((c.comm - 3.0).abs() < 1e-12);
    }

    #[test]
    fn channel_transfers_serialize_without_advancing_now() {
        let mut c = Clock::new();
        c.advance_compute(1.0);
        // Two back-to-back transfers: the second queues behind the first.
        let f1 = c.channel_transfer(0.5, 2.0);
        let f2 = c.channel_transfer(0.0, 1.0);
        assert!((f1 - 2.5).abs() < 1e-12);
        assert!((f2 - 3.5).abs() < 1e-12);
        assert!((c.now - 1.0).abs() < 1e-12, "main timeline untouched");
        assert!((c.now - (c.comm + c.compute)).abs() < 1e-12);
    }

    #[test]
    fn channel_waits_for_data_availability() {
        let mut c = Clock::new();
        let f = c.channel_transfer(4.0, 0.5);
        assert!((f - 4.5).abs() < 1e-12);
        // Draining clamps the main timeline forward as communication.
        c.advance_compute(1.0);
        c.complete_wait(f);
        assert!((c.now - 4.5).abs() < 1e-12);
        assert!((c.comm - 3.5).abs() < 1e-12);
    }

    #[test]
    fn channel_work_finished_under_compute_is_free_to_drain() {
        let mut c = Clock::new();
        let f = c.channel_transfer(0.0, 2.0);
        c.advance_compute(5.0);
        c.complete_wait(f);
        assert!((c.now - 5.0).abs() < 1e-12, "fully overlapped");
        assert_eq!(c.comm, 0.0);
    }

    #[test]
    fn zero_length_channel_transfer_is_a_zero_duration_span() {
        // Satellite regression: a 0-word message charges `fa·α` only
        // (0 under a free model) and must leave every clock field
        // finite — no `0 · ∞` NaN under `flops: f64::INFINITY`.
        let m = NetModel::free();
        let mut c = Clock::new();
        c.advance_flops(1e18, &m); // free compute: now stays 0
        let transfer = m.alpha + m.beta * 0.0; // 0-word transfer
        let f = c.channel_transfer(0.0, transfer);
        assert_eq!(f, 0.0, "zero-duration span: finish == start");
        assert_eq!(c.comm_busy, 0.0, "channel horizon unmoved");
        c.complete_wait(f);
        assert!(c.now.is_finite() && c.comm.is_finite() && c.compute.is_finite());
        assert_eq!(c.now, 0.0);

        // Same with a nonzero α: the span is exactly α long and lands
        // after the availability time.
        let m = NetModel {
            alpha: 2e-6,
            beta: 1e-9,
            flops: f64::INFINITY,
        };
        let mut c = Clock::new();
        let transfer = m.alpha + m.beta * 0.0;
        let f = c.channel_transfer(1.0, transfer);
        assert!((f - (1.0 + 2e-6)).abs() < 1e-18);
        assert!(f.is_finite());
    }

    #[test]
    fn back_to_back_zero_transfers_do_not_accumulate() {
        let mut c = Clock::new();
        for _ in 0..100 {
            let f = c.channel_transfer(0.5, 0.0);
            assert_eq!(f, 0.5);
        }
        assert_eq!(c.comm_busy, 0.5);
    }

    #[test]
    fn flops_use_model_rate() {
        let mut c = Clock::new();
        let m = NetModel {
            alpha: 0.0,
            beta: 0.0,
            flops: 1e9,
        };
        c.advance_flops(2e9, &m);
        assert!((c.now - 2.0).abs() < 1e-12);
    }
}
