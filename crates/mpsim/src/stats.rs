//! Traffic and timing statistics.

use crate::clock::Clock;

/// Per-rank traffic counters (data-plane only; control traffic is
/// counted separately because it is free in virtual time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Number of data messages sent.
    pub msgs_sent: u64,
    /// Total words sent across all data messages.
    pub words_sent: u64,
    /// Number of control messages sent.
    pub ctrl_msgs_sent: u64,
}

impl RankStats {
    /// Accumulates another rank's counters into `self`.
    pub fn merge(&mut self, other: &RankStats) {
        self.msgs_sent += other.msgs_sent;
        self.words_sent += other.words_sent;
        self.ctrl_msgs_sent += other.ctrl_msgs_sent;
    }
}

/// World-level summary returned by [`crate::World::run_with_stats`].
#[derive(Debug, Clone, Default)]
pub struct WorldStats {
    /// Per-rank traffic counters, indexed by global rank.
    pub ranks: Vec<RankStats>,
    /// Final virtual clock of each rank.
    pub clocks: Vec<Clock>,
}

impl WorldStats {
    /// The makespan: the latest final virtual time across ranks. This is
    /// the quantity the paper's bar charts plot per iteration/epoch.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().map(|c| c.now).fold(0.0, f64::max)
    }

    /// Maximum per-rank communication time.
    pub fn max_comm(&self) -> f64 {
        self.clocks.iter().map(|c| c.comm).fold(0.0, f64::max)
    }

    /// Maximum per-rank compute time.
    pub fn max_compute(&self) -> f64 {
        self.clocks.iter().map(|c| c.compute).fold(0.0, f64::max)
    }

    /// Total words moved across the whole world (sum over ranks).
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).sum()
    }

    /// Total data messages across the whole world.
    pub fn total_msgs(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = RankStats { msgs_sent: 1, words_sent: 10, ctrl_msgs_sent: 2 };
        let b = RankStats { msgs_sent: 3, words_sent: 5, ctrl_msgs_sent: 0 };
        a.merge(&b);
        assert_eq!(a, RankStats { msgs_sent: 4, words_sent: 15, ctrl_msgs_sent: 2 });
    }

    #[test]
    fn makespan_is_max_clock() {
        let stats = WorldStats {
            ranks: vec![RankStats::default(); 2],
            clocks: vec![
                Clock { now: 1.0, comm: 0.5, compute: 0.5 },
                Clock { now: 3.0, comm: 1.0, compute: 2.0 },
            ],
        };
        assert_eq!(stats.makespan(), 3.0);
        assert_eq!(stats.max_comm(), 1.0);
        assert_eq!(stats.max_compute(), 2.0);
    }
}
