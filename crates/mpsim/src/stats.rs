//! Traffic and timing statistics.

use crate::clock::Clock;

/// Per-rank traffic counters (data-plane only; control traffic is
/// counted separately because it is free in virtual time).
///
/// The fault counters are only non-zero when a [`crate::FaultPlan`] is
/// active; all of them are deterministic, because they are incremented
/// only at points whose occurrence is a pure function of the plan and
/// the program (send-side drops; surfaced timeouts, corruptions, and
/// failures — never at the instant a notice happens to be drained from
/// the transport channel, which depends on real-time interleaving).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Number of data messages sent.
    pub msgs_sent: u64,
    /// Total words sent across all data messages.
    pub words_sent: u64,
    /// Number of control messages sent.
    pub ctrl_msgs_sent: u64,
    /// Data messages this rank sent that the fault plan dropped.
    pub msgs_dropped: u64,
    /// Words lost in dropped messages.
    pub words_dropped: u64,
    /// Receive deadlines that expired on this rank.
    pub timeouts: u64,
    /// Receive retries attempted after a timeout.
    pub retries: u64,
    /// Payloads this rank rejected after checksum verification failed.
    pub corrupt_detected: u64,
    /// Distinct dead peers this rank detected (each counted once).
    pub failures_detected: u64,
    /// Collective abort notices this rank broadcast.
    pub aborts_sent: u64,
    /// Peers the adaptive detector newly flagged *suspect* (φ past the
    /// suspect threshold but under the dead threshold) at a query
    /// point; re-armed each time the peer is heard from again.
    pub suspects_flagged: u64,
    /// Speculative re-requests issued for suspect-but-not-dead peers
    /// after the regular retry schedule was exhausted.
    pub speculative_retries: u64,
    /// Times this rank revived from a scripted death and announced a
    /// rejoin.
    pub rejoins: u64,
    /// Virtual seconds of injected straggler delay absorbed by this
    /// rank's receives.
    pub straggler_wait: f64,
    /// Words written to checkpoints by this rank (recorded by
    /// fault-tolerant trainers via
    /// [`crate::Communicator::record_checkpoint_words`]).
    pub ckpt_words: u64,
    /// Virtual seconds this rank spent in failure recovery
    /// (re-planning, weight redistribution) — excludes replayed
    /// training iterations, which are reported by the trainer.
    pub recovery_secs: f64,
}

impl RankStats {
    /// Accumulates another rank's counters into `self`.
    pub fn merge(&mut self, other: &RankStats) {
        self.msgs_sent += other.msgs_sent;
        self.words_sent += other.words_sent;
        self.ctrl_msgs_sent += other.ctrl_msgs_sent;
        self.msgs_dropped += other.msgs_dropped;
        self.words_dropped += other.words_dropped;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.corrupt_detected += other.corrupt_detected;
        self.failures_detected += other.failures_detected;
        self.aborts_sent += other.aborts_sent;
        self.suspects_flagged += other.suspects_flagged;
        self.speculative_retries += other.speculative_retries;
        self.rejoins += other.rejoins;
        self.straggler_wait += other.straggler_wait;
        self.ckpt_words += other.ckpt_words;
        self.recovery_secs += other.recovery_secs;
    }
}

/// World-level summary returned by [`crate::World::run_with_stats`].
#[derive(Debug, Clone, Default)]
pub struct WorldStats {
    /// Per-rank traffic counters, indexed by global rank.
    pub ranks: Vec<RankStats>,
    /// Final virtual clock of each rank.
    pub clocks: Vec<Clock>,
}

impl WorldStats {
    /// The makespan: the latest final virtual time across ranks. This is
    /// the quantity the paper's bar charts plot per iteration/epoch.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().map(|c| c.now).fold(0.0, f64::max)
    }

    /// Maximum per-rank communication time.
    pub fn max_comm(&self) -> f64 {
        self.clocks.iter().map(|c| c.comm).fold(0.0, f64::max)
    }

    /// Maximum per-rank compute time.
    pub fn max_compute(&self) -> f64 {
        self.clocks.iter().map(|c| c.compute).fold(0.0, f64::max)
    }

    /// Total words moved across the whole world (sum over ranks).
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).sum()
    }

    /// Total data messages across the whole world.
    pub fn total_msgs(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total data messages dropped by the fault plan.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_dropped).sum()
    }

    /// Total receive timeouts surfaced across ranks.
    pub fn total_timeouts(&self) -> u64 {
        self.ranks.iter().map(|r| r.timeouts).sum()
    }

    /// Total receive retries across ranks.
    pub fn total_retries(&self) -> u64 {
        self.ranks.iter().map(|r| r.retries).sum()
    }

    /// Total corrupt payloads detected (and discarded) across ranks.
    pub fn total_corrupt_detected(&self) -> u64 {
        self.ranks.iter().map(|r| r.corrupt_detected).sum()
    }

    /// Total distinct (peer, detector) failure detections across ranks.
    pub fn total_failures_detected(&self) -> u64 {
        self.ranks.iter().map(|r| r.failures_detected).sum()
    }

    /// Total abort notices broadcast across ranks.
    pub fn total_aborts(&self) -> u64 {
        self.ranks.iter().map(|r| r.aborts_sent).sum()
    }

    /// Total suspect flags raised by the adaptive detector.
    pub fn total_suspects_flagged(&self) -> u64 {
        self.ranks.iter().map(|r| r.suspects_flagged).sum()
    }

    /// Total speculative re-requests across ranks.
    pub fn total_speculative_retries(&self) -> u64 {
        self.ranks.iter().map(|r| r.speculative_retries).sum()
    }

    /// Total rank revivals (rejoin announcements) across ranks.
    pub fn total_rejoins(&self) -> u64 {
        self.ranks.iter().map(|r| r.rejoins).sum()
    }

    /// Total injected straggler delay absorbed across ranks (virtual s).
    pub fn total_straggler_wait(&self) -> f64 {
        self.ranks.iter().map(|r| r.straggler_wait).sum()
    }

    /// Total words checkpointed across ranks.
    pub fn total_ckpt_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.ckpt_words).sum()
    }

    /// Largest per-rank recovery time (virtual s) — the recovery term
    /// of the makespan.
    pub fn max_recovery_secs(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.recovery_secs)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = RankStats {
            msgs_sent: 1,
            words_sent: 10,
            ctrl_msgs_sent: 2,
            timeouts: 1,
            straggler_wait: 0.5,
            ..RankStats::default()
        };
        let b = RankStats {
            msgs_sent: 3,
            words_sent: 5,
            msgs_dropped: 2,
            timeouts: 4,
            straggler_wait: 1.5,
            ..RankStats::default()
        };
        a.merge(&b);
        let want = RankStats {
            msgs_sent: 4,
            words_sent: 15,
            ctrl_msgs_sent: 2,
            msgs_dropped: 2,
            timeouts: 5,
            straggler_wait: 2.0,
            ..RankStats::default()
        };
        assert_eq!(a, want);
    }

    #[test]
    fn world_fault_totals_aggregate() {
        let stats = WorldStats {
            ranks: vec![
                RankStats {
                    msgs_dropped: 1,
                    words_dropped: 8,
                    timeouts: 2,
                    retries: 1,
                    corrupt_detected: 1,
                    failures_detected: 1,
                    aborts_sent: 1,
                    straggler_wait: 0.25,
                    ckpt_words: 100,
                    recovery_secs: 2.0,
                    ..RankStats::default()
                },
                RankStats {
                    timeouts: 1,
                    straggler_wait: 0.75,
                    ckpt_words: 50,
                    recovery_secs: 3.0,
                    suspects_flagged: 2,
                    speculative_retries: 1,
                    rejoins: 1,
                    ..RankStats::default()
                },
            ],
            clocks: vec![Clock::default(); 2],
        };
        assert_eq!(stats.total_dropped(), 1);
        assert_eq!(stats.total_suspects_flagged(), 2);
        assert_eq!(stats.total_speculative_retries(), 1);
        assert_eq!(stats.total_rejoins(), 1);
        assert_eq!(stats.total_timeouts(), 3);
        assert_eq!(stats.total_retries(), 1);
        assert_eq!(stats.total_corrupt_detected(), 1);
        assert_eq!(stats.total_failures_detected(), 1);
        assert_eq!(stats.total_aborts(), 1);
        assert!((stats.total_straggler_wait() - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_ckpt_words(), 150);
        assert!((stats.max_recovery_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_clock() {
        let stats = WorldStats {
            ranks: vec![RankStats::default(); 2],
            clocks: vec![
                Clock {
                    now: 1.0,
                    comm: 0.5,
                    compute: 0.5,
                },
                Clock {
                    now: 3.0,
                    comm: 1.0,
                    compute: 2.0,
                },
            ],
        };
        assert_eq!(stats.makespan(), 3.0);
        assert_eq!(stats.max_comm(), 1.0);
        assert_eq!(stats.max_compute(), 2.0);
    }
}
