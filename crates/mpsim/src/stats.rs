//! Traffic and timing statistics.

use crate::clock::Clock;

/// Per-rank traffic counters (data-plane only; control traffic is
/// counted separately because it is free in virtual time).
///
/// The fault counters are only non-zero when a [`crate::FaultPlan`] is
/// active; all of them are deterministic, because they are incremented
/// only at points whose occurrence is a pure function of the plan and
/// the program (send-side drops; surfaced timeouts, corruptions, and
/// failures — never at the instant a notice happens to be drained from
/// the transport channel, which depends on real-time interleaving).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Number of data messages sent.
    pub msgs_sent: u64,
    /// Total words sent across all data messages.
    pub words_sent: u64,
    /// Number of control messages sent.
    pub ctrl_msgs_sent: u64,
    /// Data messages this rank sent that the fault plan dropped.
    pub msgs_dropped: u64,
    /// Words lost in dropped messages.
    pub words_dropped: u64,
    /// Receive deadlines that expired on this rank.
    pub timeouts: u64,
    /// Receive retries attempted after a timeout.
    pub retries: u64,
    /// Payloads this rank rejected after checksum verification failed.
    pub corrupt_detected: u64,
    /// Distinct dead peers this rank detected (each counted once).
    pub failures_detected: u64,
    /// Collective abort notices this rank broadcast.
    pub aborts_sent: u64,
    /// Peers the adaptive detector newly flagged *suspect* (φ past the
    /// suspect threshold but under the dead threshold) at a query
    /// point; re-armed each time the peer is heard from again.
    pub suspects_flagged: u64,
    /// Speculative re-requests issued for suspect-but-not-dead peers
    /// after the regular retry schedule was exhausted.
    pub speculative_retries: u64,
    /// Times this rank revived from a scripted death and announced a
    /// rejoin.
    pub rejoins: u64,
    /// Virtual seconds of injected straggler delay absorbed by this
    /// rank's receives.
    pub straggler_wait: f64,
    /// Words written to checkpoints by this rank (recorded by
    /// fault-tolerant trainers via
    /// [`crate::Communicator::record_checkpoint_words`]).
    pub ckpt_words: u64,
    /// Virtual seconds this rank spent in failure recovery
    /// (re-planning, weight redistribution) — excludes replayed
    /// training iterations, which are reported by the trainer.
    pub recovery_secs: f64,
    /// Virtual seconds of transfer charged to this rank's concurrent
    /// comm channel by non-blocking collectives (the communication the
    /// overlap engine *attempted* to hide).
    pub channel_secs: f64,
    /// Virtual seconds the main timeline spent blocked draining
    /// outstanding non-blocking operations (channel work that was
    /// *not* hidden behind compute).
    pub comm_wait_secs: f64,
    /// Virtual seconds of channel transfer that ran concurrently with
    /// the main timeline (channel work that *was* hidden).
    pub overlapped_secs: f64,
    /// Blocking all-reduce calls issued by this rank.
    pub allreduce_calls: u64,
    /// Blocking all-gather calls issued by this rank.
    pub allgather_calls: u64,
    /// Non-blocking all-reduce launches by this rank.
    pub nb_allreduce_calls: u64,
    /// Non-blocking all-gather launches by this rank.
    pub nb_allgather_calls: u64,
}

impl RankStats {
    /// Accumulates another rank's counters into `self`.
    pub fn merge(&mut self, other: &RankStats) {
        self.msgs_sent += other.msgs_sent;
        self.words_sent += other.words_sent;
        self.ctrl_msgs_sent += other.ctrl_msgs_sent;
        self.msgs_dropped += other.msgs_dropped;
        self.words_dropped += other.words_dropped;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.corrupt_detected += other.corrupt_detected;
        self.failures_detected += other.failures_detected;
        self.aborts_sent += other.aborts_sent;
        self.suspects_flagged += other.suspects_flagged;
        self.speculative_retries += other.speculative_retries;
        self.rejoins += other.rejoins;
        self.straggler_wait += other.straggler_wait;
        self.ckpt_words += other.ckpt_words;
        self.recovery_secs += other.recovery_secs;
        self.channel_secs += other.channel_secs;
        self.comm_wait_secs += other.comm_wait_secs;
        self.overlapped_secs += other.overlapped_secs;
        self.allreduce_calls += other.allreduce_calls;
        self.allgather_calls += other.allgather_calls;
        self.nb_allreduce_calls += other.nb_allreduce_calls;
        self.nb_allgather_calls += other.nb_allgather_calls;
    }
}

/// World-level summary returned by [`crate::World::run_with_stats`].
#[derive(Debug, Clone, Default)]
pub struct WorldStats {
    /// Per-rank traffic counters, indexed by global rank.
    pub ranks: Vec<RankStats>,
    /// Final virtual clock of each rank.
    pub clocks: Vec<Clock>,
}

impl WorldStats {
    /// The makespan: the latest final virtual time across ranks. This is
    /// the quantity the paper's bar charts plot per iteration/epoch.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().map(|c| c.now).fold(0.0, f64::max)
    }

    /// Maximum per-rank communication time.
    pub fn max_comm(&self) -> f64 {
        self.clocks.iter().map(|c| c.comm).fold(0.0, f64::max)
    }

    /// Maximum per-rank compute time.
    pub fn max_compute(&self) -> f64 {
        self.clocks.iter().map(|c| c.compute).fold(0.0, f64::max)
    }

    /// Total words moved across the whole world (sum over ranks).
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).sum()
    }

    /// Total data messages across the whole world.
    pub fn total_msgs(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total data messages dropped by the fault plan.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_dropped).sum()
    }

    /// Total receive timeouts surfaced across ranks.
    pub fn total_timeouts(&self) -> u64 {
        self.ranks.iter().map(|r| r.timeouts).sum()
    }

    /// Total receive retries across ranks.
    pub fn total_retries(&self) -> u64 {
        self.ranks.iter().map(|r| r.retries).sum()
    }

    /// Total corrupt payloads detected (and discarded) across ranks.
    pub fn total_corrupt_detected(&self) -> u64 {
        self.ranks.iter().map(|r| r.corrupt_detected).sum()
    }

    /// Total distinct (peer, detector) failure detections across ranks.
    pub fn total_failures_detected(&self) -> u64 {
        self.ranks.iter().map(|r| r.failures_detected).sum()
    }

    /// Total abort notices broadcast across ranks.
    pub fn total_aborts(&self) -> u64 {
        self.ranks.iter().map(|r| r.aborts_sent).sum()
    }

    /// Total suspect flags raised by the adaptive detector.
    pub fn total_suspects_flagged(&self) -> u64 {
        self.ranks.iter().map(|r| r.suspects_flagged).sum()
    }

    /// Total speculative re-requests across ranks.
    pub fn total_speculative_retries(&self) -> u64 {
        self.ranks.iter().map(|r| r.speculative_retries).sum()
    }

    /// Total rank revivals (rejoin announcements) across ranks.
    pub fn total_rejoins(&self) -> u64 {
        self.ranks.iter().map(|r| r.rejoins).sum()
    }

    /// Total injected straggler delay absorbed across ranks (virtual s).
    pub fn total_straggler_wait(&self) -> f64 {
        self.ranks.iter().map(|r| r.straggler_wait).sum()
    }

    /// Total words checkpointed across ranks.
    pub fn total_ckpt_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.ckpt_words).sum()
    }

    /// Largest per-rank recovery time (virtual s) — the recovery term
    /// of the makespan.
    pub fn max_recovery_secs(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.recovery_secs)
            .fold(0.0, f64::max)
    }

    /// Total transfer seconds charged to the concurrent comm channels.
    pub fn total_channel_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.channel_secs).sum()
    }

    /// Total seconds spent blocked draining non-blocking operations.
    pub fn total_comm_wait_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm_wait_secs).sum()
    }

    /// Total channel transfer seconds hidden behind the main timeline.
    pub fn total_overlapped_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.overlapped_secs).sum()
    }

    /// Largest per-rank drain wait (virtual s).
    pub fn max_comm_wait_secs(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.comm_wait_secs)
            .fold(0.0, f64::max)
    }

    /// Total blocking + non-blocking collective calls, by kind:
    /// `(allreduce, allgather, nb_allreduce, nb_allgather)`.
    pub fn total_collective_calls(&self) -> (u64, u64, u64, u64) {
        self.ranks.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.allreduce_calls,
                acc.1 + r.allgather_calls,
                acc.2 + r.nb_allreduce_calls,
                acc.3 + r.nb_allgather_calls,
            )
        })
    }

    /// The *measured* overlap fraction: the share of executed
    /// communication that ran concurrently with compute,
    /// `Σ overlapped / (Σ overlapped + Σ clock.comm)`. The denominator
    /// is the total communication the run would have paid serialized
    /// (main-timeline comm — which already includes drain waits — plus
    /// the hidden channel seconds). Compare with the paper's assumed
    /// 2/3 backprop fraction (Fig. 8). Returns 0 when no communication
    /// happened.
    pub fn measured_overlap_fraction(&self) -> f64 {
        let hidden = self.total_overlapped_secs();
        let exposed: f64 = self.clocks.iter().map(|c| c.comm).sum();
        if hidden + exposed <= 0.0 {
            return 0.0;
        }
        hidden / (hidden + exposed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = RankStats {
            msgs_sent: 1,
            words_sent: 10,
            ctrl_msgs_sent: 2,
            timeouts: 1,
            straggler_wait: 0.5,
            ..RankStats::default()
        };
        let b = RankStats {
            msgs_sent: 3,
            words_sent: 5,
            msgs_dropped: 2,
            timeouts: 4,
            straggler_wait: 1.5,
            ..RankStats::default()
        };
        a.merge(&b);
        let want = RankStats {
            msgs_sent: 4,
            words_sent: 15,
            ctrl_msgs_sent: 2,
            msgs_dropped: 2,
            timeouts: 5,
            straggler_wait: 2.0,
            ..RankStats::default()
        };
        assert_eq!(a, want);
    }

    #[test]
    fn world_fault_totals_aggregate() {
        let stats = WorldStats {
            ranks: vec![
                RankStats {
                    msgs_dropped: 1,
                    words_dropped: 8,
                    timeouts: 2,
                    retries: 1,
                    corrupt_detected: 1,
                    failures_detected: 1,
                    aborts_sent: 1,
                    straggler_wait: 0.25,
                    ckpt_words: 100,
                    recovery_secs: 2.0,
                    ..RankStats::default()
                },
                RankStats {
                    timeouts: 1,
                    straggler_wait: 0.75,
                    ckpt_words: 50,
                    recovery_secs: 3.0,
                    suspects_flagged: 2,
                    speculative_retries: 1,
                    rejoins: 1,
                    ..RankStats::default()
                },
            ],
            clocks: vec![Clock::default(); 2],
        };
        assert_eq!(stats.total_dropped(), 1);
        assert_eq!(stats.total_suspects_flagged(), 2);
        assert_eq!(stats.total_speculative_retries(), 1);
        assert_eq!(stats.total_rejoins(), 1);
        assert_eq!(stats.total_timeouts(), 3);
        assert_eq!(stats.total_retries(), 1);
        assert_eq!(stats.total_corrupt_detected(), 1);
        assert_eq!(stats.total_failures_detected(), 1);
        assert_eq!(stats.total_aborts(), 1);
        assert!((stats.total_straggler_wait() - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_ckpt_words(), 150);
        assert!((stats.max_recovery_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_counters_merge_and_aggregate() {
        let mut a = RankStats {
            channel_secs: 2.0,
            comm_wait_secs: 0.5,
            overlapped_secs: 1.5,
            nb_allreduce_calls: 3,
            allgather_calls: 1,
            ..RankStats::default()
        };
        let b = RankStats {
            channel_secs: 1.0,
            overlapped_secs: 1.0,
            nb_allgather_calls: 2,
            allreduce_calls: 4,
            ..RankStats::default()
        };
        a.merge(&b);
        assert!((a.channel_secs - 3.0).abs() < 1e-12);
        assert!((a.overlapped_secs - 2.5).abs() < 1e-12);
        let stats = WorldStats {
            ranks: vec![a, b],
            clocks: vec![
                Clock {
                    now: 2.0,
                    comm: 1.0,
                    compute: 1.0,
                    ..Clock::default()
                };
                2
            ],
        };
        assert_eq!(stats.total_collective_calls(), (8, 1, 3, 4));
        assert!((stats.total_comm_wait_secs() - 0.5).abs() < 1e-12);
        assert!((stats.max_comm_wait_secs() - 0.5).abs() < 1e-12);
        // hidden = 2.5 + 1.0, exposed = 2 ranks × 1.0 comm.
        assert!((stats.measured_overlap_fraction() - 3.5 / 5.5).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_clock() {
        let stats = WorldStats {
            ranks: vec![RankStats::default(); 2],
            clocks: vec![
                Clock {
                    now: 1.0,
                    comm: 0.5,
                    compute: 0.5,
                    ..Clock::default()
                },
                Clock {
                    now: 3.0,
                    comm: 1.0,
                    compute: 2.0,
                    ..Clock::default()
                },
            ],
        };
        assert_eq!(stats.makespan(), 3.0);
        assert_eq!(stats.max_comm(), 1.0);
        assert_eq!(stats.max_compute(), 2.0);
    }
}
