//! Traffic and timing statistics.

use crate::clock::Clock;

/// Per-rank traffic counters (data-plane only; control traffic is
/// counted separately because it is free in virtual time).
///
/// The fault counters are only non-zero when a [`crate::FaultPlan`] is
/// active; all of them are deterministic, because they are incremented
/// only at points whose occurrence is a pure function of the plan and
/// the program (send-side drops; surfaced timeouts, corruptions, and
/// failures — never at the instant a notice happens to be drained from
/// the transport channel, which depends on real-time interleaving).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Number of data messages sent.
    pub msgs_sent: u64,
    /// Total words sent across all data messages.
    pub words_sent: u64,
    /// Number of control messages sent.
    pub ctrl_msgs_sent: u64,
    /// Data messages this rank sent that the fault plan dropped.
    pub msgs_dropped: u64,
    /// Words lost in dropped messages.
    pub words_dropped: u64,
    /// Receive deadlines that expired on this rank.
    pub timeouts: u64,
    /// Receive retries attempted after a timeout.
    pub retries: u64,
    /// Corruptions this rank detected *and repaired in place* (ABFT
    /// single-element GEMM corrections — no checkpoint restore).
    pub corrupt_corrected: u64,
    /// Corruptions this rank detected and escalated to rollback/replay:
    /// envelope-checksum rejections plus uncorrectable ABFT verdicts
    /// and weight-memory audit failures.
    pub corrupt_recovered: u64,
    /// Compute bit flips (GEMM-output SDC) the fault plan injected on
    /// this rank.
    pub bitflips_compute: u64,
    /// Memory bit flips (resident-weight SDC) the fault plan injected
    /// on this rank.
    pub bitflips_memory: u64,
    /// Distinct dead peers this rank detected (each counted once).
    pub failures_detected: u64,
    /// Collective abort notices this rank broadcast.
    pub aborts_sent: u64,
    /// Peers the adaptive detector newly flagged *suspect* (φ past the
    /// suspect threshold but under the dead threshold) at a query
    /// point; re-armed each time the peer is heard from again.
    pub suspects_flagged: u64,
    /// Speculative re-requests issued for suspect-but-not-dead peers
    /// after the regular retry schedule was exhausted.
    pub speculative_retries: u64,
    /// Times this rank revived from a scripted death and announced a
    /// rejoin.
    pub rejoins: u64,
    /// Virtual seconds of injected straggler delay absorbed by this
    /// rank's receives.
    pub straggler_wait: f64,
    /// Words written to checkpoints by this rank (recorded by
    /// fault-tolerant trainers via
    /// [`crate::Communicator::record_checkpoint_words`]).
    pub ckpt_words: u64,
    /// Virtual seconds this rank spent in failure recovery
    /// (re-planning, weight redistribution) — excludes replayed
    /// training iterations, which are reported by the trainer.
    pub recovery_secs: f64,
    /// Virtual seconds of transfer charged to this rank's concurrent
    /// comm channel by non-blocking collectives (the communication the
    /// overlap engine *attempted* to hide).
    pub channel_secs: f64,
    /// Virtual seconds the main timeline spent blocked draining
    /// outstanding non-blocking operations (channel work that was
    /// *not* hidden behind compute).
    pub comm_wait_secs: f64,
    /// Virtual seconds of channel transfer that ran concurrently with
    /// the main timeline (channel work that *was* hidden).
    pub overlapped_secs: f64,
    /// Blocking all-reduce calls issued by this rank.
    pub allreduce_calls: u64,
    /// Blocking all-gather calls issued by this rank.
    pub allgather_calls: u64,
    /// Non-blocking all-reduce launches by this rank.
    pub nb_allreduce_calls: u64,
    /// Non-blocking all-gather launches by this rank.
    pub nb_allgather_calls: u64,
    /// Virtual seconds of pure α–β data transfer charged to this rank's
    /// blocking receives (excludes idle waiting for a sender to reach
    /// its send point, which [`Clock::comm`] folds in). This is the
    /// measured quantity comparable to Eq. 8's analytic per-iteration
    /// communication term.
    pub transfer_secs: f64,
    /// Data messages this rank sent that an active partition severed.
    pub msgs_severed: u64,
    /// Duplicate message copies this rank sent (fault-plan injected).
    pub msgs_duplicated: u64,
    /// Duplicate copies this rank's matching layer absorbed on receive.
    pub dups_absorbed: u64,
    /// Data messages this rank's transport held back for reordering.
    pub msgs_reordered: u64,
    /// Distinct peers this rank resolved as unreachable across a
    /// partition (each counted once per partition episode).
    pub unreachable_detected: u64,
    /// Times this rank parked in a minority fragment (quorum loss).
    pub parks: u64,
}

impl RankStats {
    /// Accumulates another rank's counters into `self`.
    pub fn merge(&mut self, other: &RankStats) {
        self.msgs_sent += other.msgs_sent;
        self.words_sent += other.words_sent;
        self.ctrl_msgs_sent += other.ctrl_msgs_sent;
        self.msgs_dropped += other.msgs_dropped;
        self.words_dropped += other.words_dropped;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.corrupt_corrected += other.corrupt_corrected;
        self.corrupt_recovered += other.corrupt_recovered;
        self.bitflips_compute += other.bitflips_compute;
        self.bitflips_memory += other.bitflips_memory;
        self.failures_detected += other.failures_detected;
        self.aborts_sent += other.aborts_sent;
        self.suspects_flagged += other.suspects_flagged;
        self.speculative_retries += other.speculative_retries;
        self.rejoins += other.rejoins;
        self.straggler_wait += other.straggler_wait;
        self.ckpt_words += other.ckpt_words;
        self.recovery_secs += other.recovery_secs;
        self.channel_secs += other.channel_secs;
        self.comm_wait_secs += other.comm_wait_secs;
        self.overlapped_secs += other.overlapped_secs;
        self.allreduce_calls += other.allreduce_calls;
        self.allgather_calls += other.allgather_calls;
        self.nb_allreduce_calls += other.nb_allreduce_calls;
        self.nb_allgather_calls += other.nb_allgather_calls;
        self.transfer_secs += other.transfer_secs;
        self.msgs_severed += other.msgs_severed;
        self.msgs_duplicated += other.msgs_duplicated;
        self.dups_absorbed += other.dups_absorbed;
        self.msgs_reordered += other.msgs_reordered;
        self.unreachable_detected += other.unreachable_detected;
        self.parks += other.parks;
    }
}

/// World-level summary returned by [`crate::World::run_with_stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldStats {
    /// Per-rank traffic counters, indexed by global rank.
    pub ranks: Vec<RankStats>,
    /// Final virtual clock of each rank.
    pub clocks: Vec<Clock>,
}

/// Maximum over `values`, starting from 0, that **propagates NaN**
/// instead of masking it: `f64::max` silently ignores a NaN operand, so
/// a fold from 0.0 would report a clean 0 for a poisoned run. A NaN in
/// any per-rank statistic makes the aggregate NaN, which the regression
/// tests (and any `assert!(x.is_finite())` downstream) can catch.
fn max_or_nan(values: impl Iterator<Item = f64>) -> f64 {
    values.fold(0.0, |acc, v| {
        if acc.is_nan() || v.is_nan() {
            f64::NAN
        } else {
            acc.max(v)
        }
    })
}

impl WorldStats {
    /// The makespan: the latest final virtual time across ranks. This is
    /// the quantity the paper's bar charts plot per iteration/epoch.
    pub fn makespan(&self) -> f64 {
        max_or_nan(self.clocks.iter().map(|c| c.now))
    }

    /// Maximum per-rank communication time.
    pub fn max_comm(&self) -> f64 {
        max_or_nan(self.clocks.iter().map(|c| c.comm))
    }

    /// Maximum per-rank compute time.
    pub fn max_compute(&self) -> f64 {
        max_or_nan(self.clocks.iter().map(|c| c.compute))
    }

    /// Total words moved across the whole world (sum over ranks).
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).sum()
    }

    /// Total data messages across the whole world.
    pub fn total_msgs(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total data messages dropped by the fault plan.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_dropped).sum()
    }

    /// Total receive timeouts surfaced across ranks.
    pub fn total_timeouts(&self) -> u64 {
        self.ranks.iter().map(|r| r.timeouts).sum()
    }

    /// Total receive retries across ranks.
    pub fn total_retries(&self) -> u64 {
        self.ranks.iter().map(|r| r.retries).sum()
    }

    /// Total corruptions detected across ranks, however they were
    /// handled: in-place ABFT corrections plus rollback escalations.
    pub fn total_corrupt_detected(&self) -> u64 {
        self.total_corrupt_corrected() + self.total_corrupt_recovered()
    }

    /// Total corruptions repaired in place (ABFT) across ranks.
    pub fn total_corrupt_corrected(&self) -> u64 {
        self.ranks.iter().map(|r| r.corrupt_corrected).sum()
    }

    /// Total corruptions escalated to rollback/replay across ranks.
    pub fn total_corrupt_recovered(&self) -> u64 {
        self.ranks.iter().map(|r| r.corrupt_recovered).sum()
    }

    /// Total compute bit flips (GEMM-output SDC) injected across ranks.
    pub fn total_bitflips_compute(&self) -> u64 {
        self.ranks.iter().map(|r| r.bitflips_compute).sum()
    }

    /// Total memory bit flips (weight SDC) injected across ranks.
    pub fn total_bitflips_memory(&self) -> u64 {
        self.ranks.iter().map(|r| r.bitflips_memory).sum()
    }

    /// Total distinct (peer, detector) failure detections across ranks.
    pub fn total_failures_detected(&self) -> u64 {
        self.ranks.iter().map(|r| r.failures_detected).sum()
    }

    /// Total abort notices broadcast across ranks.
    pub fn total_aborts(&self) -> u64 {
        self.ranks.iter().map(|r| r.aborts_sent).sum()
    }

    /// Total suspect flags raised by the adaptive detector.
    pub fn total_suspects_flagged(&self) -> u64 {
        self.ranks.iter().map(|r| r.suspects_flagged).sum()
    }

    /// Total speculative re-requests across ranks.
    pub fn total_speculative_retries(&self) -> u64 {
        self.ranks.iter().map(|r| r.speculative_retries).sum()
    }

    /// Total rank revivals (rejoin announcements) across ranks.
    pub fn total_rejoins(&self) -> u64 {
        self.ranks.iter().map(|r| r.rejoins).sum()
    }

    /// Total data messages severed by partitions across ranks.
    pub fn total_severed(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_severed).sum()
    }

    /// Total duplicate copies injected across ranks.
    pub fn total_duplicated(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_duplicated).sum()
    }

    /// Total duplicate copies absorbed by receivers across ranks.
    pub fn total_dups_absorbed(&self) -> u64 {
        self.ranks.iter().map(|r| r.dups_absorbed).sum()
    }

    /// Total messages held back for reordering across ranks.
    pub fn total_reordered(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_reordered).sum()
    }

    /// Total distinct unreachable-peer detections across ranks.
    pub fn total_unreachable_detected(&self) -> u64 {
        self.ranks.iter().map(|r| r.unreachable_detected).sum()
    }

    /// Total minority-fragment parks across ranks.
    pub fn total_parks(&self) -> u64 {
        self.ranks.iter().map(|r| r.parks).sum()
    }

    /// Total injected straggler delay absorbed across ranks (virtual s).
    pub fn total_straggler_wait(&self) -> f64 {
        self.ranks.iter().map(|r| r.straggler_wait).sum()
    }

    /// Total words checkpointed across ranks.
    pub fn total_ckpt_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.ckpt_words).sum()
    }

    /// Largest per-rank recovery time (virtual s) — the recovery term
    /// of the makespan.
    pub fn max_recovery_secs(&self) -> f64 {
        max_or_nan(self.ranks.iter().map(|r| r.recovery_secs))
    }

    /// Total transfer seconds charged to the concurrent comm channels.
    pub fn total_channel_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.channel_secs).sum()
    }

    /// Total seconds spent blocked draining non-blocking operations.
    pub fn total_comm_wait_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm_wait_secs).sum()
    }

    /// Total channel transfer seconds hidden behind the main timeline.
    pub fn total_overlapped_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.overlapped_secs).sum()
    }

    /// Largest per-rank drain wait (virtual s).
    pub fn max_comm_wait_secs(&self) -> f64 {
        max_or_nan(self.ranks.iter().map(|r| r.comm_wait_secs))
    }

    /// Total blocking + non-blocking collective calls, by kind:
    /// `(allreduce, allgather, nb_allreduce, nb_allgather)`.
    pub fn total_collective_calls(&self) -> (u64, u64, u64, u64) {
        self.ranks.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.allreduce_calls,
                acc.1 + r.allgather_calls,
                acc.2 + r.nb_allreduce_calls,
                acc.3 + r.nb_allgather_calls,
            )
        })
    }

    /// The *measured* overlap fraction: the share of **channel-executed
    /// transfer time** that was hidden behind compute,
    /// `Σ overlapped / (Σ overlapped + Σ comm_wait)`. The denominator
    /// is exactly the time the non-blocking engine moved: the hidden
    /// part plus the exposed drain waits. Blocking-collective time
    /// deliberately does **not** enter — a run with only blocking
    /// collectives attempted no overlap and reports 0.0, rather than a
    /// spurious mix of hidden seconds against all main-timeline comm.
    /// Compare with the paper's assumed 2/3 backprop fraction (Fig. 8).
    /// Returns 0 when no channel communication happened.
    pub fn measured_overlap_fraction(&self) -> f64 {
        let hidden = self.total_overlapped_secs();
        let exposed = self.total_comm_wait_secs();
        if hidden + exposed <= 0.0 {
            return 0.0;
        }
        hidden / (hidden + exposed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = RankStats {
            msgs_sent: 1,
            words_sent: 10,
            ctrl_msgs_sent: 2,
            timeouts: 1,
            straggler_wait: 0.5,
            ..RankStats::default()
        };
        let b = RankStats {
            msgs_sent: 3,
            words_sent: 5,
            msgs_dropped: 2,
            timeouts: 4,
            straggler_wait: 1.5,
            ..RankStats::default()
        };
        a.merge(&b);
        let want = RankStats {
            msgs_sent: 4,
            words_sent: 15,
            ctrl_msgs_sent: 2,
            msgs_dropped: 2,
            timeouts: 5,
            straggler_wait: 2.0,
            ..RankStats::default()
        };
        assert_eq!(a, want);
    }

    #[test]
    fn world_fault_totals_aggregate() {
        let stats = WorldStats {
            ranks: vec![
                RankStats {
                    msgs_dropped: 1,
                    words_dropped: 8,
                    timeouts: 2,
                    retries: 1,
                    corrupt_recovered: 1,
                    failures_detected: 1,
                    aborts_sent: 1,
                    straggler_wait: 0.25,
                    ckpt_words: 100,
                    recovery_secs: 2.0,
                    ..RankStats::default()
                },
                RankStats {
                    timeouts: 1,
                    straggler_wait: 0.75,
                    ckpt_words: 50,
                    recovery_secs: 3.0,
                    corrupt_corrected: 2,
                    bitflips_compute: 2,
                    bitflips_memory: 1,
                    suspects_flagged: 2,
                    speculative_retries: 1,
                    rejoins: 1,
                    msgs_severed: 3,
                    msgs_duplicated: 2,
                    dups_absorbed: 2,
                    msgs_reordered: 1,
                    unreachable_detected: 4,
                    parks: 1,
                    ..RankStats::default()
                },
            ],
            clocks: vec![Clock::default(); 2],
        };
        assert_eq!(stats.total_dropped(), 1);
        assert_eq!(stats.total_suspects_flagged(), 2);
        assert_eq!(stats.total_speculative_retries(), 1);
        assert_eq!(stats.total_rejoins(), 1);
        assert_eq!(stats.total_timeouts(), 3);
        assert_eq!(stats.total_retries(), 1);
        assert_eq!(stats.total_corrupt_corrected(), 2);
        assert_eq!(stats.total_corrupt_recovered(), 1);
        assert_eq!(
            stats.total_corrupt_detected(),
            3,
            "detected = corrected + recovered"
        );
        assert_eq!(stats.total_bitflips_compute(), 2);
        assert_eq!(stats.total_bitflips_memory(), 1);
        assert_eq!(stats.total_failures_detected(), 1);
        assert_eq!(stats.total_aborts(), 1);
        assert!((stats.total_straggler_wait() - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_ckpt_words(), 150);
        assert!((stats.max_recovery_secs() - 3.0).abs() < 1e-12);
        assert_eq!(stats.total_severed(), 3);
        assert_eq!(stats.total_duplicated(), 2);
        assert_eq!(stats.total_dups_absorbed(), 2);
        assert_eq!(stats.total_reordered(), 1);
        assert_eq!(stats.total_unreachable_detected(), 4);
        assert_eq!(stats.total_parks(), 1);
    }

    #[test]
    fn overlap_counters_merge_and_aggregate() {
        let mut a = RankStats {
            channel_secs: 2.0,
            comm_wait_secs: 0.5,
            overlapped_secs: 1.5,
            nb_allreduce_calls: 3,
            allgather_calls: 1,
            ..RankStats::default()
        };
        let b = RankStats {
            channel_secs: 1.0,
            overlapped_secs: 1.0,
            nb_allgather_calls: 2,
            allreduce_calls: 4,
            ..RankStats::default()
        };
        a.merge(&b);
        assert!((a.channel_secs - 3.0).abs() < 1e-12);
        assert!((a.overlapped_secs - 2.5).abs() < 1e-12);
        let stats = WorldStats {
            ranks: vec![a, b],
            clocks: vec![
                Clock {
                    now: 2.0,
                    comm: 1.0,
                    compute: 1.0,
                    ..Clock::default()
                };
                2
            ],
        };
        assert_eq!(stats.total_collective_calls(), (8, 1, 3, 4));
        assert!((stats.total_comm_wait_secs() - 0.5).abs() < 1e-12);
        assert!((stats.max_comm_wait_secs() - 0.5).abs() < 1e-12);
        // hidden = 2.5 + 1.0, exposed = the 0.5 s of drain wait. The
        // ranks' 1.0 s of blocking comm is NOT in the denominator: it
        // was never a candidate for overlap.
        assert!((stats.measured_overlap_fraction() - 3.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_only_run_reports_zero_overlap_fraction() {
        // Regression for the denominator bugfix: plenty of blocking
        // comm, zero channel traffic → the fraction must be exactly 0,
        // not hidden/(hidden + blocking_comm).
        let stats = WorldStats {
            ranks: vec![
                RankStats {
                    allreduce_calls: 7,
                    ..RankStats::default()
                };
                2
            ],
            clocks: vec![
                Clock {
                    now: 5.0,
                    comm: 4.0,
                    compute: 1.0,
                    ..Clock::default()
                };
                2
            ],
        };
        assert_eq!(stats.measured_overlap_fraction(), 0.0);
    }

    #[test]
    fn nan_in_rank_stats_propagates_to_maxima() {
        // Regression for the NaN-masking bugfix: `f64::max` ignores a
        // NaN operand, so the old fold-from-0.0 reported clean zeros
        // for a poisoned run.
        let poisoned = WorldStats {
            ranks: vec![
                RankStats::default(),
                RankStats {
                    comm_wait_secs: f64::NAN,
                    recovery_secs: f64::NAN,
                    ..RankStats::default()
                },
            ],
            clocks: vec![
                Clock {
                    now: f64::NAN,
                    comm: f64::NAN,
                    compute: f64::NAN,
                    ..Clock::default()
                },
                Clock::default(),
            ],
        };
        assert!(poisoned.makespan().is_nan());
        assert!(poisoned.max_comm().is_nan());
        assert!(poisoned.max_compute().is_nan());
        assert!(poisoned.max_comm_wait_secs().is_nan());
        assert!(poisoned.max_recovery_secs().is_nan());
        // NaN anywhere, even in the first rank, still propagates.
        let first = WorldStats {
            ranks: vec![RankStats::default(); 2],
            clocks: vec![
                Clock {
                    now: f64::NAN,
                    ..Clock::default()
                },
                Clock {
                    now: 3.0,
                    ..Clock::default()
                },
            ],
        };
        assert!(first.makespan().is_nan());
    }

    #[test]
    fn corrupt_envelope_run_yields_finite_stats() {
        // End-to-end regression: a run where the fault plan corrupts a
        // payload (receiver detects and errors) must still produce
        // finite per-rank clocks and finite aggregate maxima — no NaN
        // sneaks in through the corruption path.
        use crate::fault::FaultPlan;
        use crate::netmodel::NetModel;
        use crate::world::World;
        let model = NetModel {
            alpha: 1e-6,
            beta: 1e-9,
            flops: f64::INFINITY,
        };
        let plan = FaultPlan::new(3).corrupt_nth(0, 1, 0);
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]).map(|_| Vec::new())
            } else {
                comm.recv(0, 7)
            }
        });
        assert!(
            matches!(out[1], Err(crate::Error::Corrupted { .. })),
            "receiver detected the corruption"
        );
        assert_eq!(stats.total_corrupt_detected(), 1);
        assert_eq!(
            stats.total_corrupt_recovered(),
            1,
            "an envelope rejection counts as escalated, not corrected"
        );
        assert_eq!(stats.total_corrupt_corrected(), 0);
        for c in &stats.clocks {
            assert!(c.now.is_finite() && c.comm.is_finite() && c.compute.is_finite());
        }
        assert!(stats.makespan().is_finite());
        assert!(stats.max_comm().is_finite());
        assert!(stats.max_comm_wait_secs().is_finite());
        assert!(stats.max_recovery_secs().is_finite());
        assert!(stats.measured_overlap_fraction().is_finite());
    }

    #[test]
    fn makespan_is_max_clock() {
        let stats = WorldStats {
            ranks: vec![RankStats::default(); 2],
            clocks: vec![
                Clock {
                    now: 1.0,
                    comm: 0.5,
                    compute: 0.5,
                    ..Clock::default()
                },
                Clock {
                    now: 3.0,
                    comm: 1.0,
                    compute: 2.0,
                    ..Clock::default()
                },
            ],
        };
        assert_eq!(stats.makespan(), 3.0);
        assert_eq!(stats.max_comm(), 1.0);
        assert_eq!(stats.max_compute(), 2.0);
    }
}
