//! The α–β–γ machine model that drives the virtual clocks.
//!
//! The paper's Table 1 fixes the interconnect of NERSC Cori at
//! `α = 2 µs` latency and `1/β = 6 GB/s` per-link bandwidth, and reads
//! compute time off an empirical KNL curve. `NetModel` carries the same
//! three knobs: per-message latency, per-*word* inverse bandwidth, and a
//! sustained FLOP rate for local compute. All costs in this repository
//! are expressed in **words** (one word = one model/activation scalar),
//! matching the unit the paper's Eqs. 3–9 count; the conversion from
//! bytes/s to seconds/word happens here, parameterized by the word size.

/// Network + compute cost parameters for one simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Inverse bandwidth β in seconds per *word*.
    pub beta: f64,
    /// Sustained local compute rate in FLOP/s, used by
    /// [`crate::Clock::advance_flops`].
    pub flops: f64,
}

impl NetModel {
    /// Builds a model from latency (seconds), link bandwidth
    /// (bytes/second) and the word size in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = mpsim::NetModel::from_bandwidth(2e-6, 6e9, 4, 1e12);
    /// assert!((m.beta - 4.0 / 6e9).abs() < 1e-18);
    /// ```
    pub fn from_bandwidth(alpha: f64, bytes_per_sec: f64, word_bytes: usize, flops: f64) -> Self {
        NetModel {
            alpha,
            beta: word_bytes as f64 / bytes_per_sec,
            flops,
        }
    }

    /// The paper's Table 1 interconnect: α = 2 µs, 1/β = 6 GB/s, fp32
    /// words, and a nominal 3 TFLOP/s sustained KNL rate (the paper
    /// takes compute from an empirical curve instead; this rate only
    /// matters for executable-simulation experiments that charge raw
    /// FLOPs).
    pub fn cori_knl() -> Self {
        NetModel::from_bandwidth(2e-6, 6e9, 4, 3e12)
    }

    /// A zero-latency, infinite-bandwidth model: collectives cost no
    /// virtual time. Useful for numerics-only tests.
    pub fn free() -> Self {
        NetModel {
            alpha: 0.0,
            beta: 0.0,
            flops: f64::INFINITY,
        }
    }

    /// Time to move `words` words point-to-point: `α + β·words`.
    #[inline]
    pub fn ptp(&self, words: usize) -> f64 {
        self.alpha + self.beta * words as f64
    }

    /// Time to execute `flops` floating-point operations locally.
    #[inline]
    pub fn compute(&self, flops: f64) -> f64 {
        if self.flops.is_infinite() {
            0.0
        } else {
            flops / self.flops
        }
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::cori_knl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_matches_table1() {
        let m = NetModel::cori_knl();
        assert_eq!(m.alpha, 2e-6);
        // 4-byte words at 6 GB/s.
        assert!((m.beta - 4.0 / 6e9).abs() < 1e-20);
    }

    #[test]
    fn ptp_is_affine() {
        let m = NetModel {
            alpha: 1.0,
            beta: 0.5,
            flops: 1.0,
        };
        assert_eq!(m.ptp(0), 1.0);
        assert_eq!(m.ptp(4), 3.0);
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = NetModel::free();
        assert_eq!(m.ptp(1_000_000), 0.0);
        assert_eq!(m.compute(1e18), 0.0);
    }

    #[test]
    fn compute_scales_with_rate() {
        let m = NetModel {
            alpha: 0.0,
            beta: 0.0,
            flops: 2e9,
        };
        assert!((m.compute(4e9) - 2.0).abs() < 1e-12);
    }
}
