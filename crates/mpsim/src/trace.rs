//! Per-rank event tracing with virtual-time-stamped spans.
//!
//! Every rank owns a [`Tracer`]: a bounded ring buffer of
//! [`TraceEvent`]s recorded at the *virtual* times of the simulation
//! (never wall-clock). Because each rank's `Inner` state is owned by
//! exactly one OS thread, the buffer needs no locks — "lock-free" the
//! easy way: there is nothing to contend on.
//!
//! Two timelines per rank mirror the clock model ([`crate::Clock`]):
//!
//! * [`Track::Main`] — the rank's main timeline (`now = comm +
//!   compute`). Spans on it never overlap: the clock is monotone and
//!   every span covers a contiguous `[t0, t1]` advance of `now`.
//! * [`Track::Channel`] — the concurrent comm channel
//!   (`Clock::comm_busy`). Transfers serialize against each other (one
//!   NIC), so channel spans are likewise non-overlapping, but they run
//!   concurrently with main-track spans — that concurrency *is* the
//!   measured overlap.
//!
//! ## Event taxonomy
//!
//! Leaf categories partition main-timeline time and carry the exact
//! accounting the simulator charges:
//!
//! | cat        | names                                   | meaning |
//! |------------|-----------------------------------------|---------|
//! | `compute`  | `compute`                               | local FLOPs / explicit compute |
//! | `comm`     | `recv`, `wait`, `timeout`, `backoff`, `sync`, `death_sync` | blocking main-timeline communication |
//! | `drain`    | `drain`                                 | exposed wait on the comm channel; `args`: `charged`, `hidden` |
//! | `fault`    | `dead_gap` (span), `died`/`peer_dead`/`rejoin` (instants) | fault-injection effects |
//! | `channel`  | `xfer`                                  | channel-track transfer spans |
//!
//! Scope categories (`collective`, `nb`, `trainer`) are nested guard
//! spans emitted by the `collectives` crate and the trainers via
//! [`crate::Communicator::trace_span`]; they wrap leaf spans and carry
//! context (`p`, `words`, `chunk`, `layer`, …) without double-counting
//! time.
//!
//! The `sched` category holds the bucket scheduler's zero-duration
//! instants — `bucket_flush` (a gradient bucket launched its row-group
//! all-reduce; args: `words`, `min_layer`, `max_layer`, `pending`) and
//! `progress_poll` (a backward-loop poll point drove one chunk step;
//! args: `pending`) — markers on the main timeline that never enter the
//! leaf-time partition.
//!
//! ## Exactness invariants
//!
//! The drain events accumulate the *same* floating-point values, in the
//! same order, as [`crate::RankStats`], so for every rank:
//!
//! * `Σ dur(drain)`      == `RankStats::comm_wait_secs` (bit-exact),
//! * `Σ drain.hidden`    == `RankStats::overlapped_secs` (bit-exact),
//! * `max t1` over spans == the rank's final `Clock::now` — every
//!   clock-advancing operation emits a span ending at the new `now`.
//!
//! The `trace_analyze` bench bin cross-checks all three to 1e-9.
//!
//! ## Drop policy
//!
//! The ring buffer keeps the **newest** `cap` events: when full, the
//! oldest event is evicted and counted in [`RankTrace::dropped`].
//! Keeping the tail preserves the `max t1` makespan invariant and the
//! most recent window of activity — the part a timeline viewer needs
//! when a run misbehaves at the end. The accounting invariants above
//! are only guaranteed when `dropped == 0` (raise the cap).
//!
//! Tracing is opt-in ([`TraceConfig::enabled`]) and adds **zero
//! overhead to the virtual clock**: no trace call ever reads or writes
//! a [`crate::Clock`] — timestamps are passed in by the already-updated
//! call sites, and with tracing disabled every record call is a single
//! branch on a bool.

use std::collections::VecDeque;

/// Default ring-buffer capacity (events per rank).
pub const DEFAULT_TRACE_CAP: usize = 1 << 20;

/// Which per-rank timeline an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// The main timeline (`Clock::now`).
    Main,
    /// The concurrent comm channel (`Clock::comm_busy`).
    Channel,
}

/// How an event extends in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span `[t0, t1]` (Chrome phase `"X"`).
    Span,
    /// A point event at `t0 == t1` (Chrome phase `"i"`).
    Instant,
}

/// One virtual-time-stamped event on a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Category (see the module docs for the taxonomy).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Timeline the event lives on.
    pub track: Track,
    /// Span or instant.
    pub kind: EventKind,
    /// Start virtual time (seconds).
    pub t0: f64,
    /// End virtual time (seconds); equals `t0` for instants.
    pub t1: f64,
    /// Nesting depth at record time (0 = top level). Leaf events
    /// emitted inside guard spans have depth ≥ 1.
    pub depth: u32,
    /// Numeric annotations (`words`, `peer`, `chunk`, `charged`, …).
    pub args: Vec<(&'static str, f64)>,
}

impl TraceEvent {
    /// Span duration in virtual seconds (0 for instants).
    #[inline]
    pub fn dur(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Looks up a numeric annotation by key.
    pub fn arg(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// A span opened by [`Tracer::begin`] and not yet closed.
#[derive(Debug, Clone)]
struct OpenSpan {
    cat: &'static str,
    name: &'static str,
    t0: f64,
    args: Vec<(&'static str, f64)>,
}

/// Configuration for per-rank tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record events at all. `false` makes every trace call a no-op.
    pub enabled: bool,
    /// Ring-buffer capacity in events per rank (oldest evicted first).
    pub cap: usize,
}

impl TraceConfig {
    /// Tracing on, with the default per-rank capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            cap: DEFAULT_TRACE_CAP,
        }
    }

    /// Tracing off (the default): zero clock overhead, no allocation.
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            cap: 0,
        }
    }

    /// Overrides the ring-buffer capacity.
    pub fn with_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be positive");
        self.cap = cap;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Per-rank event recorder: a bounded ring buffer plus the stack of
/// open guard spans. Owned by the rank's thread — no locks.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    open: Vec<OpenSpan>,
}

impl Tracer {
    /// Builds a tracer from a config.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            enabled: cfg.enabled,
            cap: if cfg.enabled { cfg.cap.max(1) } else { 0 },
            events: VecDeque::new(),
            dropped: 0,
            open: Vec::new(),
        }
    }

    /// A disabled tracer (every call is a no-op).
    pub fn disabled() -> Self {
        Tracer::new(TraceConfig::disabled())
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Records a complete span on a track.
    pub fn span(
        &mut self,
        cat: &'static str,
        name: &'static str,
        track: Track,
        t0: f64,
        t1: f64,
        args: &[(&'static str, f64)],
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(t0.is_finite() && t1.is_finite(), "non-finite span time");
        debug_assert!(t1 >= t0, "span ends before it starts");
        let depth = self.open.len() as u32;
        self.push(TraceEvent {
            cat,
            name,
            track,
            kind: EventKind::Span,
            t0,
            t1,
            depth,
            args: args.to_vec(),
        });
    }

    /// Records a point event.
    pub fn instant(
        &mut self,
        cat: &'static str,
        name: &'static str,
        t: f64,
        args: &[(&'static str, f64)],
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(t.is_finite(), "non-finite instant time");
        let depth = self.open.len() as u32;
        self.push(TraceEvent {
            cat,
            name,
            track: Track::Main,
            kind: EventKind::Instant,
            t0: t,
            t1: t,
            depth,
            args: args.to_vec(),
        });
    }

    /// Opens a nested guard span at `t0`; close with [`Tracer::end`].
    /// Guard spans live on the main track.
    pub fn begin(
        &mut self,
        cat: &'static str,
        name: &'static str,
        t0: f64,
        args: &[(&'static str, f64)],
    ) {
        if !self.enabled {
            return;
        }
        self.open.push(OpenSpan {
            cat,
            name,
            t0,
            args: args.to_vec(),
        });
    }

    /// Closes the innermost open guard span at `t1`.
    pub fn end(&mut self, t1: f64) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.open.pop() else {
            debug_assert!(false, "Tracer::end without matching begin");
            return;
        };
        let depth = self.open.len() as u32;
        // The clock is monotone, but be defensive: a span never ends
        // before it starts.
        let t1 = t1.max(open.t0);
        self.push(TraceEvent {
            cat: open.cat,
            name: open.name,
            track: Track::Main,
            kind: EventKind::Span,
            t0: open.t0,
            t1,
            depth,
            args: open.args,
        });
    }

    /// Discards all recorded events and open spans (used by
    /// `Communicator::reset_clock`: timestamps from before the reset
    /// would run backwards relative to the zeroed clock).
    pub fn clear(&mut self) {
        self.events.clear();
        self.open.clear();
        self.dropped = 0;
    }

    /// Consumes the tracer into a [`RankTrace`], force-closing any
    /// still-open guard spans at `now` (counted in
    /// [`RankTrace::unclosed`]; with the RAII guard API this stays 0
    /// even on error paths).
    pub fn finish(&mut self, rank: usize, now: f64) -> RankTrace {
        let unclosed = self.open.len() as u64;
        while !self.open.is_empty() {
            self.end(now);
        }
        RankTrace {
            rank,
            events: std::mem::take(&mut self.events).into(),
            dropped: self.dropped,
            unclosed,
        }
    }
}

/// The finished trace of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// Global rank the events belong to.
    pub rank: usize,
    /// Events in record order (spans are recorded when they *close*,
    /// so a parent guard span appears after its children).
    pub events: Vec<TraceEvent>,
    /// Events evicted by the ring buffer (oldest-first).
    pub dropped: u64,
    /// Guard spans force-closed at [`Tracer::finish`] (0 in well-formed
    /// programs — the RAII guards close on drop, even under `?`).
    pub unclosed: u64,
}

/// Leaf categories that partition main-timeline time (scope spans like
/// `collective`/`trainer` wrap these without double-counting).
pub const LEAF_CATS: [&str; 4] = ["compute", "comm", "drain", "fault"];

impl RankTrace {
    /// Latest event end time — with full instrumentation this equals
    /// the rank's final `Clock::now` (its contribution to the
    /// makespan).
    pub fn end_time(&self) -> f64 {
        self.events.iter().map(|e| e.t1).fold(0.0, f64::max)
    }

    /// Exposed drain wait reconstructed from the trace; bit-exact equal
    /// to [`crate::RankStats::comm_wait_secs`] when nothing was
    /// dropped.
    pub fn comm_wait_secs(&self) -> f64 {
        // `+ 0.0` normalizes the empty-sum identity (-0.0) to +0.0,
        // matching the stats accumulators; it is exact for every other
        // value.
        self.events
            .iter()
            .filter(|e| e.cat == "drain")
            .map(|e| e.dur())
            .sum::<f64>()
            + 0.0
    }

    /// Hidden channel seconds reconstructed from the trace; bit-exact
    /// equal to [`crate::RankStats::overlapped_secs`] when nothing was
    /// dropped.
    pub fn overlapped_secs(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.cat == "drain")
            .map(|e| e.arg("hidden").unwrap_or(0.0))
            .sum::<f64>()
            + 0.0
    }

    /// Channel-track transfer seconds reconstructed from the trace.
    pub fn channel_secs(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.track == Track::Channel)
            .map(|e| e.dur())
            .sum::<f64>()
            + 0.0
    }

    /// How many instants with the given category and name were
    /// recorded (e.g. `("sched", "bucket_flush")`,
    /// `("sched", "progress_poll")`, `("nb", "chunk_step")`).
    pub fn instant_count(&self, cat: &str, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.cat == cat && e.name == name)
            .count()
    }

    /// Main-timeline seconds per leaf category, in [`LEAF_CATS`] order.
    /// The sum over categories reconstructs the rank's final `now`.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        LEAF_CATS
            .iter()
            .map(|&cat| {
                let total: f64 = self
                    .events
                    .iter()
                    .filter(|e| e.cat == cat && e.track == Track::Main)
                    .map(|e| e.dur())
                    .sum::<f64>()
                    + 0.0;
                (cat, total)
            })
            .collect()
    }
}

/// All ranks' traces from one [`crate::World`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldTrace {
    /// Per-rank traces in rank order.
    pub ranks: Vec<RankTrace>,
}

impl WorldTrace {
    /// Makespan reconstructed from the trace alone.
    pub fn makespan(&self) -> f64 {
        self.ranks.iter().map(|r| r.end_time()).fold(0.0, f64::max)
    }

    /// Total recorded events across ranks.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// Total ring-buffer evictions across ranks.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped).sum()
    }
}

/// Exporter: Chrome Trace Event JSON (Perfetto / `chrome://tracing`)
/// and a compact per-rank summary table.
pub struct TraceSink<'a> {
    trace: &'a WorldTrace,
}

/// Minimal JSON string escaping (names are static identifiers, but the
/// exporter never trusts that).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<'a> TraceSink<'a> {
    /// Wraps a finished world trace for export.
    pub fn new(trace: &'a WorldTrace) -> Self {
        TraceSink { trace }
    }

    /// Serializes the trace in Chrome Trace Event JSON ("JSON object
    /// format": `{"traceEvents": [...]}`).
    ///
    /// Mapping: `pid` = rank, `tid` 0 = main timeline, `tid` 1 = comm
    /// channel; virtual seconds × 1e6 → the format's microsecond `ts`.
    /// Spans use phase `"X"` (complete events), instants phase `"i"`
    /// with thread scope. Metadata events name each process/thread.
    /// The vendored serde stub has no serializer, so the JSON is
    /// written by hand (same convention as the bench bins).
    pub fn chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };
        for r in &self.trace.ranks {
            emit(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"rank {}\"}}}}",
                    r.rank, r.rank
                ),
                &mut out,
            );
            for (tid, tname) in [(0, "main"), (1, "channel")] {
                emit(
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\
                         \"args\":{{\"name\":\"{tname}\"}}}}",
                        r.rank
                    ),
                    &mut out,
                );
            }
            for e in &r.events {
                let tid = match e.track {
                    Track::Main => 0,
                    Track::Channel => 1,
                };
                let ts = e.t0 * 1e6;
                let mut line = format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{tid},\"ts\":{ts}",
                    json_escape(e.name),
                    json_escape(e.cat),
                    r.rank
                );
                match e.kind {
                    EventKind::Span => {
                        let _ = write!(line, ",\"ph\":\"X\",\"dur\":{}", e.dur() * 1e6);
                    }
                    EventKind::Instant => line.push_str(",\"ph\":\"i\",\"s\":\"t\""),
                }
                if !e.args.is_empty() {
                    line.push_str(",\"args\":{");
                    for (i, (k, v)) in e.args.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        let _ = write!(line, "\"{}\":{v}", json_escape(k));
                    }
                    line.push('}');
                }
                line.push('}');
                emit(line, &mut out);
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes [`TraceSink::chrome_json`] to a file.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_json())
    }

    /// A compact per-rank summary table: event counts and the leaf
    /// time breakdown (virtual seconds).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>7} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "rank", "events", "dropped", "end", "compute", "comm", "drain", "hidden", "channel"
        );
        for r in &self.trace.ranks {
            let b = r.breakdown();
            let leaf = |cat: &str| {
                b.iter()
                    .find(|(c, _)| *c == cat)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0)
            };
            let _ = writeln!(
                out,
                "{:>4} {:>7} {:>7} {:>12.6e} {:>12.6e} {:>12.6e} {:>12.6e} {:>12.6e} {:>12.6e}",
                r.rank,
                r.events.len(),
                r.dropped,
                r.end_time(),
                leaf("compute"),
                leaf("comm"),
                leaf("drain"),
                r.overlapped_secs(),
                r.channel_secs(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(cap: usize) -> Tracer {
        Tracer::new(TraceConfig::enabled().with_cap(cap))
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.span("compute", "compute", Track::Main, 0.0, 1.0, &[]);
        t.instant("fault", "died", 0.5, &[]);
        t.begin("trainer", "forward", 0.0, &[]);
        t.end(2.0);
        let rt = t.finish(0, 2.0);
        assert!(rt.events.is_empty());
        assert_eq!(rt.dropped, 0);
        assert_eq!(rt.unclosed, 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut t = traced(3);
        for i in 0..5 {
            t.span(
                "compute",
                "compute",
                Track::Main,
                i as f64,
                i as f64 + 0.5,
                &[],
            );
        }
        let rt = t.finish(0, 5.0);
        assert_eq!(rt.events.len(), 3);
        assert_eq!(rt.dropped, 2);
        // Newest events survive: the makespan invariant holds.
        assert!((rt.end_time() - 4.5).abs() < 1e-12);
        assert!((rt.events[0].t0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn begin_end_nesting_sets_depth() {
        let mut t = traced(16);
        t.begin("trainer", "iteration", 0.0, &[]);
        t.begin("collective", "allreduce_ring", 0.5, &[("p", 4.0)]);
        t.span("comm", "recv", Track::Main, 0.5, 1.0, &[]);
        t.end(1.0); // allreduce_ring
        t.end(2.0); // iteration
        let rt = t.finish(0, 2.0);
        assert_eq!(rt.unclosed, 0);
        // Record order: leaf first (depth 2), then the collective
        // (depth 1), then the iteration (depth 0).
        assert_eq!(rt.events[0].depth, 2);
        assert_eq!(rt.events[1].depth, 1);
        assert_eq!(rt.events[1].arg("p"), Some(4.0));
        assert_eq!(rt.events[2].depth, 0);
        assert!((rt.events[2].t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finish_force_closes_open_spans() {
        let mut t = traced(16);
        t.begin("trainer", "forward", 1.0, &[]);
        let rt = t.finish(0, 3.0);
        assert_eq!(rt.unclosed, 1);
        assert_eq!(rt.events.len(), 1);
        assert!((rt.events[0].t1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn drain_accounting_round_trips() {
        let mut t = traced(16);
        t.span(
            "drain",
            "drain",
            Track::Main,
            1.0,
            1.25,
            &[("charged", 0.75), ("hidden", 0.5)],
        );
        t.span(
            "drain",
            "drain",
            Track::Main,
            2.0,
            2.0,
            &[("charged", 0.1), ("hidden", 0.1)],
        );
        let rt = t.finish(0, 2.0);
        assert!((rt.comm_wait_secs() - 0.25).abs() < 1e-15);
        assert!((rt.overlapped_secs() - 0.6).abs() < 1e-15);
    }

    #[test]
    fn breakdown_partitions_leaf_time() {
        let mut t = traced(16);
        t.span("compute", "compute", Track::Main, 0.0, 2.0, &[]);
        t.span("comm", "recv", Track::Main, 2.0, 3.0, &[]);
        t.span("drain", "drain", Track::Main, 3.0, 3.5, &[("hidden", 0.0)]);
        t.span("channel", "xfer", Track::Channel, 0.5, 1.5, &[]);
        // A scope span must not double-count.
        t.begin("collective", "allreduce_ring", 0.0, &[]);
        t.end(3.5);
        let rt = t.finish(0, 3.5);
        let total: f64 = rt.breakdown().iter().map(|&(_, v)| v).sum();
        assert!((total - 3.5).abs() < 1e-12);
        assert!((rt.channel_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sched_instants_never_enter_the_leaf_partition() {
        let mut t = traced(16);
        t.span("compute", "compute", Track::Main, 0.0, 2.0, &[]);
        t.instant(
            "sched",
            "bucket_flush",
            0.5,
            &[("words", 8192.0), ("min_layer", 2.0), ("max_layer", 3.0)],
        );
        t.instant("sched", "progress_poll", 1.0, &[("pending", 1.0)]);
        t.instant("sched", "progress_poll", 1.5, &[("pending", 1.0)]);
        t.span("drain", "drain", Track::Main, 2.0, 2.5, &[("hidden", 0.25)]);
        let rt = t.finish(0, 2.5);
        let total: f64 = rt.breakdown().iter().map(|&(_, v)| v).sum();
        assert!((total - 2.5).abs() < 1e-12, "instants add no leaf time");
        assert_eq!(rt.instant_count("sched", "bucket_flush"), 1);
        assert_eq!(rt.instant_count("sched", "progress_poll"), 2);
        assert_eq!(rt.instant_count("sched", "missing"), 0);
        assert!((rt.end_time() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn chrome_json_is_structurally_valid() {
        let mut t = traced(16);
        t.span(
            "compute",
            "compute",
            Track::Main,
            0.0,
            1e-3,
            &[("flops", 12.0)],
        );
        t.instant("fault", "died", 5e-4, &[]);
        t.span(
            "channel",
            "xfer",
            Track::Channel,
            0.0,
            2e-3,
            &[("words", 64.0)],
        );
        let world = WorldTrace {
            ranks: vec![t.finish(0, 1e-3)],
        };
        let json = TraceSink::new(&world).chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces/brackets (hand-written writer sanity).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // One complete span per Span event, instants use "i".
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"tid\":1"), "channel thread present");
        assert!(json.contains("\"args\":{\"words\":64}"));
    }

    #[test]
    fn summary_lists_every_rank() {
        let mut a = traced(8);
        a.span("compute", "compute", Track::Main, 0.0, 1.0, &[]);
        let world = WorldTrace {
            ranks: vec![a.finish(0, 1.0), Tracer::disabled().finish(1, 0.0)],
        };
        let s = TraceSink::new(&world).summary();
        assert_eq!(s.lines().count(), 3, "header + two ranks");
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = traced(2);
        t.span("compute", "compute", Track::Main, 0.0, 1.0, &[]);
        t.span("compute", "compute", Track::Main, 1.0, 2.0, &[]);
        t.span("compute", "compute", Track::Main, 2.0, 3.0, &[]);
        t.begin("trainer", "forward", 3.0, &[]);
        t.clear();
        let rt = t.finish(0, 3.0);
        assert!(rt.events.is_empty());
        assert_eq!(rt.dropped, 0);
        assert_eq!(rt.unclosed, 0);
    }
}
