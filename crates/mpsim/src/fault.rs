//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seedable, fully deterministic script of network
//! and rank failures that the simulator consults at well-defined points:
//! per-link message counters index drops / corruptions / straggler
//! delays, and each rank's own virtual clock triggers its death. Because
//! every decision is a pure function of `(seed, src, dst, per-link
//! sequence number)` or of virtual time — never of wall-clock or OS
//! scheduling — a run with faults is exactly as replayable as a run
//! without: same plan, same program ⇒ bit-identical virtual times,
//! losses, and recovery decisions.
//!
//! Fault classes:
//!
//! * **Stragglers** — extra latency (plus optional deterministic jitter)
//!   added to the transfer time of messages on one `src → dst` link,
//!   either for a single message ([`Span::Once`]) or all of them
//!   ([`Span::All`]). Charged at the receiver like any α–β cost and
//!   recorded in [`crate::RankStats::straggler_wait`].
//! * **Drops** — the n-th data message on a link is silently lost. The
//!   simulator delivers a *tombstone* in its place so the receiver's
//!   timeout machinery can observe the loss deterministically instead of
//!   hanging (see [`crate::Communicator::recv_timeout`]).
//! * **Corruption** — a single bit of one payload word is flipped after
//!   the envelope checksum is stamped, so the receiver's checksum
//!   verification detects it ([`crate::Error::Corrupted`]). The flip
//!   targets mantissa bits only, keeping the word finite.
//! * **Rank death** — a rank dies at the first communication operation
//!   at or after a virtual time `T`: it broadcasts a death notice to
//!   every rank (so no peer can hang waiting on it) and every subsequent
//!   operation on it returns [`crate::Error::RankFailed`].
//! * **Rank rejoin** — a killed rank is scripted to come back at a
//!   virtual time `T`: [`crate::Communicator::revive`] clears its death
//!   flag (spending the kill that felled it), fast-forwards its clock
//!   to `T`, and broadcasts a rejoin announcement. Survivors consult
//!   the same script ([`FaultPlan::rejoin_time_after`]) to decide
//!   re-admission, so the decision is a pure function of the plan and
//!   virtual time — deterministic, like every other fault decision.
//! * **Partitions** — from virtual time `T` until a scripted heal, a
//!   set of ranks is cut off from the rest of the world: data messages
//!   crossing the cut become tombstones (so timeouts observe the loss),
//!   control messages surface as unreachable, and death/abort/park
//!   notices crossing the cut are demoted to bare unreachability
//!   markers — neither side learns anything about the other beyond
//!   "cannot reach". The asymmetric variant severs only the
//!   `group → outside` direction, modeling one-way reachability. The
//!   cut decision is keyed on the *sender's* virtual clock at post
//!   time, so it is exactly as replayable as every other fault.
//! * **Duplication** — the n-th data message on a link is delivered
//!   twice. The second copy is flagged in flight and deterministically
//!   absorbed by the receiver's matching layer, so results never
//!   change; the fault exercises the queueing paths.
//! * **Bounded reordering** — the n-th data message on a link is held
//!   back by the sender's transport and released after up to `depth`
//!   later messages on the same link. Per-`(ctx, tag)` flow order is
//!   preserved (a same-flow send flushes the held message first), so
//!   the receiver's `(ctx, src, tag)` matching absorbs the shuffle
//!   bit-identically — which is precisely the property the chaos
//!   proptests pin.
//! * **Compute bit flips** — silent data corruption inside a rank: one
//!   mantissa/exponent bit of one element of a GEMM *output* is flipped
//!   at a scripted `(rank, iter, op)` site. Unlike wire corruption this
//!   never crosses a link, so no envelope checksum can see it — only
//!   algorithm-based fault tolerance (checksummed GEMM in `distmm`)
//!   or end-state divergence detects it. Each scripted flip fires at
//!   most once per rank (spend-once), so a rollback/replay of the same
//!   iteration re-executes clean.
//! * **Memory bit flips** — silent corruption of *resident weights*: a
//!   scripted bit of a scripted parameter word is flipped between
//!   iterations. ABFT on the GEMMs cannot catch this (the products are
//!   self-consistent with the corrupted operand); the trainer's
//!   weight-checksum audit escalates it straight to rollback. Also
//!   spend-once.

/// Which messages on a link a straggler entry applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// Only the `n`-th data message on the link (0-based).
    Once(u64),
    /// Every data message on the link.
    All,
}

impl Span {
    fn matches(&self, seq: u64) -> bool {
        match *self {
            Span::Once(n) => seq == n,
            Span::All => true,
        }
    }
}

#[derive(Debug, Clone)]
struct Straggler {
    src: usize,
    dst: usize,
    extra: f64,
    jitter: f64,
    span: Span,
}

#[derive(Debug, Clone, Copy)]
struct LinkEvent {
    src: usize,
    dst: usize,
    nth: u64,
}

#[derive(Debug, Clone, Copy)]
struct Reorder {
    src: usize,
    dst: usize,
    nth: u64,
    depth: u64,
}

#[derive(Debug, Clone)]
struct Partition {
    group: Vec<usize>,
    at: f64,
    oneway: bool,
}

#[derive(Debug, Clone, Copy)]
struct ComputeFlip {
    rank: usize,
    iter: u64,
    op: u64,
    bit: u32,
}

#[derive(Debug, Clone, Copy)]
struct MemoryFlip {
    rank: usize,
    iter: u64,
    param: u64,
    bit: u32,
}

/// A scripted single-bit flip resolved for one call site, handed to the
/// layer that owns the buffer (GEMM wrapper or trainer) to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Index of the plan entry that produced this flip — the key for
    /// the communicator's spend-once bookkeeping.
    pub entry: usize,
    /// Element selector: a deterministic hash for compute flips (the
    /// applier reduces it modulo the output length) or the scripted
    /// flat parameter index for memory flips.
    pub index: u64,
    /// Which bit of the f64 word to flip (0..=62; bit 63 — the sign —
    /// is rejected by [`FaultPlan::validate`]).
    pub bit: u32,
}

/// Applies resolved flips to `data`, XOR-ing `1 << bit` into the word
/// at `index % data.len()`. When two flips select the same word the
/// second advances to the next free word, so scripted multi-flip
/// faults never silently cancel. Returns the flat indices actually
/// hit (empty when `data` is empty).
pub fn apply_flips(data: &mut [f64], flips: &[BitFlip]) -> Vec<usize> {
    let mut hit: Vec<usize> = Vec::with_capacity(flips.len());
    if data.is_empty() {
        return hit;
    }
    for f in flips {
        let mut at = (f.index % data.len() as u64) as usize;
        while hit.contains(&at) && hit.len() < data.len() {
            at = (at + 1) % data.len();
        }
        data[at] = f64::from_bits(data[at].to_bits() ^ (1u64 << f.bit));
        hit.push(at);
    }
    hit
}

/// A deterministic script of injected faults. See the module docs for
/// the fault classes and their semantics.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    default_timeout: Option<f64>,
    stragglers: Vec<Straggler>,
    drops: Vec<LinkEvent>,
    corruptions: Vec<LinkEvent>,
    duplicates: Vec<LinkEvent>,
    reorders: Vec<Reorder>,
    kills: Vec<(usize, f64)>,
    rejoins: Vec<(usize, f64)>,
    partitions: Vec<Partition>,
    heals: Vec<(Vec<usize>, f64)>,
    compute_flips: Vec<ComputeFlip>,
    memory_flips: Vec<MemoryFlip>,
}

impl FaultPlan {
    /// An empty plan with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds `extra + jitter·u` seconds of latency (with `u` a
    /// deterministic uniform draw in `[0, 1)` keyed on the seed and the
    /// message's link sequence number) to messages from global rank
    /// `src` to `dst` covered by `span`.
    pub fn straggle(mut self, src: usize, dst: usize, extra: f64, jitter: f64, span: Span) -> Self {
        assert!(
            extra.is_finite() && jitter.is_finite() && extra >= 0.0 && jitter >= 0.0,
            "straggler delay must be finite and non-negative (extra={extra}, jitter={jitter})"
        );
        self.stragglers.push(Straggler {
            src,
            dst,
            extra,
            jitter,
            span,
        });
        self
    }

    /// Drops the `nth` (0-based) data message sent from `src` to `dst`.
    pub fn drop_nth(mut self, src: usize, dst: usize, nth: u64) -> Self {
        self.drops.push(LinkEvent { src, dst, nth });
        self
    }

    /// Flips one payload bit of the `nth` data message from `src` to
    /// `dst` (after its checksum is stamped, so the receiver detects it).
    pub fn corrupt_nth(mut self, src: usize, dst: usize, nth: u64) -> Self {
        self.corruptions.push(LinkEvent { src, dst, nth });
        self
    }

    /// Kills global rank `rank` at its first communication operation at
    /// or after virtual time `at`.
    pub fn kill(mut self, rank: usize, at: f64) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "kill time must be finite and non-negative, got {at}"
        );
        self.kills.push((rank, at));
        self
    }

    /// Schedules global rank `rank` to rejoin (revive) at virtual time
    /// `at`. Only meaningful after a [`FaultPlan::kill`] of the same
    /// rank that fires strictly before `at`; survivors use the same
    /// entry to decide deterministic re-admission.
    pub fn rejoin(mut self, rank: usize, at: f64) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "rejoin time must be finite and non-negative, got {at}"
        );
        self.rejoins.push((rank, at));
        self
    }

    /// Delivers the `nth` (0-based) data message from `src` to `dst`
    /// twice; the duplicate copy is absorbed by the receiver's matching
    /// layer, so results are unchanged.
    pub fn duplicate_nth(mut self, src: usize, dst: usize, nth: u64) -> Self {
        self.duplicates.push(LinkEvent { src, dst, nth });
        self
    }

    /// Holds the `nth` (0-based) data message from `src` to `dst` back
    /// in the sender's transport until up to `depth` later messages on
    /// the same link have been posted (bounded reordering). Per-flow
    /// `(ctx, tag)` order is preserved, so results are unchanged.
    pub fn reorder_nth(mut self, src: usize, dst: usize, nth: u64, depth: u64) -> Self {
        self.reorders.push(Reorder {
            src,
            dst,
            nth,
            depth,
        });
        self
    }

    /// Cuts the links between `group` and the rest of the world (both
    /// directions) from virtual time `at` until a matching
    /// [`FaultPlan::heal`], or forever if none is scripted.
    pub fn partition(mut self, group: &[usize], at: f64) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "partition time must be finite and non-negative, got {at}"
        );
        self.partitions.push(Partition {
            group: sorted_group(group),
            at,
            oneway: false,
        });
        self
    }

    /// Asymmetric (one-way) partition: from virtual time `at`, messages
    /// *from* `group` *to* the rest of the world are severed, while the
    /// reverse direction still flows — the group can hear but not be
    /// heard.
    pub fn partition_oneway(mut self, group: &[usize], at: f64) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "partition time must be finite and non-negative, got {at}"
        );
        self.partitions.push(Partition {
            group: sorted_group(group),
            at,
            oneway: true,
        });
        self
    }

    /// Heals the earliest still-open partition of exactly this `group`
    /// at virtual time `at`. Healing a never-partitioned set is
    /// rejected by [`FaultPlan::validate`].
    pub fn heal(mut self, group: &[usize], at: f64) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "heal time must be finite and non-negative, got {at}"
        );
        self.heals.push((sorted_group(group), at));
        self
    }

    /// Flips bit `bit` of one element of the output of the `op_idx`-th
    /// GEMM that global rank `rank` executes in training iteration
    /// `iter` (silent *compute* corruption). The element is a
    /// deterministic hash draw over the output buffer; the flip fires
    /// at most once per rank even across rollback/replay.
    pub fn bitflip_compute(mut self, rank: usize, iter: u64, op_idx: u64, bit: u32) -> Self {
        self.compute_flips.push(ComputeFlip {
            rank,
            iter,
            op: op_idx,
            bit,
        });
        self
    }

    /// Flips bit `bit` of the `param_idx`-th resident weight word
    /// (flat index across the rank's layer shards, modulo their total
    /// length) on global rank `rank` at the start of training iteration
    /// `iter` (silent *memory* corruption). Spend-once, like
    /// [`FaultPlan::bitflip_compute`].
    pub fn bitflip_memory(mut self, rank: usize, iter: u64, param_idx: u64, bit: u32) -> Self {
        self.memory_flips.push(MemoryFlip {
            rank,
            iter,
            param: param_idx,
            bit,
        });
        self
    }

    /// Sets the deadline (in virtual seconds) that plain
    /// [`crate::Communicator::recv`] applies when this plan is active,
    /// so applications that never call `recv_timeout` still fail fast
    /// instead of hanging on a dropped message.
    pub fn with_default_timeout(mut self, timeout: f64) -> Self {
        assert!(
            timeout.is_finite() && timeout > 0.0,
            "timeout must be finite and positive, got {timeout}"
        );
        self.default_timeout = Some(timeout);
        self
    }

    /// Checks the plan for contradictory schedules and returns a
    /// descriptive error for the first one found. Enforced by
    /// [`crate::World`] before any rank starts, so an undefined
    /// interleaving is rejected up front instead of silently producing
    /// arbitrary behavior.
    pub fn validate(&self) -> std::result::Result<(), String> {
        // Every scheduled time and delay must be a finite float: NaN
        // poisons the total order the event engine sorts by, and ±inf
        // times silently degenerate into "never" / "always". (They also
        // do not survive the chaos-plan JSON round trip — `NaN`/`inf`
        // are not JSON tokens.)
        for &(r, t) in &self.kills {
            if !t.is_finite() {
                return Err(format!("kill of rank {r} at non-finite time {t}"));
            }
        }
        for &(r, t) in &self.rejoins {
            if !t.is_finite() {
                return Err(format!("rejoin of rank {r} at non-finite time {t}"));
            }
        }
        for p in &self.partitions {
            if !p.at.is_finite() {
                return Err(format!(
                    "partition of {:?} at non-finite time {}",
                    p.group, p.at
                ));
            }
        }
        for (group, at) in &self.heals {
            if !at.is_finite() {
                return Err(format!("heal of {group:?} at non-finite time {at}"));
            }
        }
        for s in &self.stragglers {
            if !s.extra.is_finite() || !s.jitter.is_finite() {
                return Err(format!(
                    "straggler on link {} -> {} has non-finite delay (extra={}, jitter={})",
                    s.src, s.dst, s.extra, s.jitter
                ));
            }
        }
        if let Some(t) = self.default_timeout {
            if !t.is_finite() {
                return Err(format!("default timeout {t} is not finite"));
            }
        }
        // A rejoin must revive a rank that died strictly before it:
        // walk each rank's alternating kill/rejoin lifetimes.
        let mut ranks: Vec<usize> = self.rejoins.iter().map(|&(r, _)| r).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for r in ranks {
            let mut after = f64::NEG_INFINITY;
            loop {
                let k = self.kill_time_after(r, after);
                let j = earliest_after(&self.rejoins, r, after);
                match (k, j) {
                    (None, Some(t)) => {
                        return Err(format!(
                            "rejoin of rank {r} at t={t} without a kill strictly before it \
                             (kill and rejoin must alternate, kill first)"
                        ));
                    }
                    (Some(kt), Some(jt)) if jt <= kt => {
                        return Err(format!(
                            "rejoin of rank {r} at t={jt} does not follow its kill at t={kt} \
                             (same-epoch kill+rejoin is contradictory)"
                        ));
                    }
                    (Some(kt), Some(_)) => match self.rejoin_time_after(r, kt) {
                        Some(jt) => after = jt,
                        None => break,
                    },
                    _ => break,
                }
            }
        }
        // Straggler spans on one link must not overlap: summing two
        // entries for the same message is almost always a typo.
        for (i, a) in self.stragglers.iter().enumerate() {
            for b in &self.stragglers[i + 1..] {
                if a.src != b.src || a.dst != b.dst {
                    continue;
                }
                let overlap = match (a.span, b.span) {
                    (Span::All, _) | (_, Span::All) => true,
                    (Span::Once(n), Span::Once(m)) => n == m,
                };
                if overlap {
                    return Err(format!(
                        "overlapping straggler spans on link {} -> {} ({:?} and {:?})",
                        a.src, a.dst, a.span, b.span
                    ));
                }
            }
        }
        // Every heal must close a partition of exactly that group that
        // started strictly before it.
        for (group, at) in &self.heals {
            let opened = self
                .partitions
                .iter()
                .any(|p| &p.group == group && p.at < *at);
            if !opened {
                return Err(format!(
                    "heal of {group:?} at t={at} does not match any partition of that group \
                     starting strictly before it"
                ));
            }
        }
        for p in &self.partitions {
            if p.group.is_empty() {
                return Err("partition group must be non-empty".into());
            }
        }
        for r in &self.reorders {
            if r.depth == 0 {
                return Err(format!(
                    "reorder of message {} on link {} -> {} has depth 0 (a no-op; \
                     use depth >= 1)",
                    r.nth, r.src, r.dst
                ));
            }
        }
        // Bit flips must stay inside the mantissa/exponent field: a
        // sign flip (bit 63) is a different fault model and out-of-range
        // bits would panic in the shift.
        for f in &self.compute_flips {
            if f.bit > 62 {
                return Err(format!(
                    "compute bitflip on rank {} (iter {}, op {}) targets bit {} \
                     (only bits 0..=62 are valid)",
                    f.rank, f.iter, f.op, f.bit
                ));
            }
        }
        for f in &self.memory_flips {
            if f.bit > 62 {
                return Err(format!(
                    "memory bitflip on rank {} (iter {}, param {}) targets bit {} \
                     (only bits 0..=62 are valid)",
                    f.rank, f.iter, f.param, f.bit
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan injects anything at all. An inactive plan is
    /// skipped entirely on the send/recv fast paths.
    pub fn active(&self) -> bool {
        !(self.stragglers.is_empty()
            && self.drops.is_empty()
            && self.corruptions.is_empty()
            && self.duplicates.is_empty()
            && self.reorders.is_empty()
            && self.kills.is_empty()
            && self.rejoins.is_empty()
            && self.partitions.is_empty()
            && self.compute_flips.is_empty()
            && self.memory_flips.is_empty())
            || self.default_timeout.is_some()
    }

    /// Whether the plan scripts any compute or memory bit flips at all
    /// (a cheap gate for the per-GEMM / per-iteration query sites).
    pub fn has_bitflips(&self) -> bool {
        !(self.compute_flips.is_empty() && self.memory_flips.is_empty())
    }

    /// Total number of scripted compute-flip entries (each fires at
    /// most once).
    pub fn compute_flip_entries(&self) -> usize {
        self.compute_flips.len()
    }

    /// Total number of scripted memory-flip entries.
    pub fn memory_flip_entries(&self) -> usize {
        self.memory_flips.len()
    }

    /// The compute flips scripted for the `op`-th GEMM of iteration
    /// `iter` on global rank `rank`. The element hash is keyed on
    /// `(seed, rank, iter, op, entry)`, so distinct entries landing on
    /// the same GEMM pick independent elements (the applier resolves
    /// residual collisions by advancing).
    pub fn compute_flips_at(&self, rank: usize, iter: u64, op: u64) -> Vec<BitFlip> {
        self.compute_flips
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rank == rank && f.iter == iter && f.op == op)
            .map(|(entry, f)| BitFlip {
                entry,
                index: splitmix(self.seed ^ mix3(rank as u64, iter ^ (op << 32), entry as u64)),
                bit: f.bit,
            })
            .collect()
    }

    /// The memory flips scripted for the start of iteration `iter` on
    /// global rank `rank`; `index` is the scripted flat parameter
    /// index verbatim.
    pub fn memory_flips_at(&self, rank: usize, iter: u64) -> Vec<BitFlip> {
        self.memory_flips
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rank == rank && f.iter == iter)
            .map(|(entry, f)| BitFlip {
                entry,
                index: f.param,
                bit: f.bit,
            })
            .collect()
    }

    /// The default deadline plain `recv` applies under this plan.
    pub fn default_timeout(&self) -> Option<f64> {
        self.default_timeout
    }

    /// Total extra latency injected into the `seq`-th data message on
    /// the `src → dst` link.
    pub fn extra_delay(&self, src: usize, dst: usize, seq: u64) -> f64 {
        let mut extra = 0.0;
        for s in &self.stragglers {
            if s.src == src && s.dst == dst && s.span.matches(seq) {
                extra += s.extra + s.jitter * self.unit(src, dst, seq);
            }
        }
        extra
    }

    /// Whether the `seq`-th data message on `src → dst` is dropped.
    pub fn dropped(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.drops
            .iter()
            .any(|e| e.src == src && e.dst == dst && e.nth == seq)
    }

    /// Whether the `seq`-th data message on `src → dst` is corrupted.
    pub fn corrupted(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.corruptions
            .iter()
            .any(|e| e.src == src && e.dst == dst && e.nth == seq)
    }

    /// Whether the `seq`-th data message on `src → dst` is duplicated.
    pub fn duplicated(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.duplicates
            .iter()
            .any(|e| e.src == src && e.dst == dst && e.nth == seq)
    }

    /// The reorder depth for the `seq`-th data message on `src → dst`,
    /// if the plan holds it back.
    pub fn reorder_depth(&self, src: usize, dst: usize, seq: u64) -> Option<u64> {
        self.reorders
            .iter()
            .find(|r| r.src == src && r.dst == dst && r.nth == seq)
            .map(|r| r.depth)
    }

    /// The virtual time at which partition `p` heals: the earliest heal
    /// entry of exactly the same group strictly after the partition
    /// starts, or `f64::INFINITY` if it never heals.
    fn heal_time(&self, p: &Partition) -> f64 {
        self.heals
            .iter()
            .filter(|(g, t)| g == &p.group && *t > p.at)
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether a message posted from `src` to `dst` at (sender) virtual
    /// time `t` is severed by an active partition. For a symmetric
    /// partition any link crossing the cut is severed; for a one-way
    /// partition only `group → outside` is.
    pub fn link_cut(&self, src: usize, dst: usize, t: f64) -> bool {
        self.partitions.iter().any(|p| {
            if t < p.at || t >= self.heal_time(p) {
                return false;
            }
            let sin = p.group.binary_search(&src).is_ok();
            let din = p.group.binary_search(&dst).is_ok();
            sin != din && (!p.oneway || sin)
        })
    }

    /// Whether any partition severs traffic in either direction between
    /// `a` and `b` at virtual time `t`.
    pub fn pair_cut(&self, a: usize, b: usize, t: f64) -> bool {
        self.link_cut(a, b, t) || self.link_cut(b, a, t)
    }

    /// The virtual time at which every partition active at `t` has
    /// healed: `None` when no partition is active, `f64::INFINITY` when
    /// one of them never heals. A parked minority rank fast-forwards
    /// its clock here before announcing itself for re-admission.
    pub fn heal_horizon(&self, t: f64) -> Option<f64> {
        let mut horizon: Option<f64> = None;
        for p in &self.partitions {
            let end = self.heal_time(p);
            if t >= p.at && t < end {
                horizon = Some(horizon.map_or(end, |h: f64| h.max(end)));
            }
        }
        horizon
    }

    /// Whether the plan says `rank` is alive at virtual time `t`: not
    /// killed, or revived by a rejoin in `(kill, t]`. Used by survivors
    /// to avoid welcoming a rank the plan has permanently removed.
    pub fn alive_at(&self, rank: usize, t: f64) -> bool {
        let mut after = f64::NEG_INFINITY;
        loop {
            match self.kill_time_after(rank, after) {
                None => return true,
                Some(k) if k > t => return true,
                Some(k) => match self.rejoin_time_after(rank, k) {
                    Some(j) if j <= t => after = j,
                    _ => return false,
                },
            }
        }
    }

    /// The virtual time at which `rank` dies, if the plan kills it.
    pub fn kill_time(&self, rank: usize) -> Option<f64> {
        self.kill_time_after(rank, f64::NEG_INFINITY)
    }

    /// The earliest scripted kill of `rank` strictly after virtual time
    /// `after` (a revival spends every kill at or before the rejoin
    /// time; a later second kill can still fire).
    pub fn kill_time_after(&self, rank: usize, after: f64) -> Option<f64> {
        earliest_after(&self.kills, rank, after)
    }

    /// The earliest scripted rejoin of `rank` strictly after virtual
    /// time `after` (its death time, so a pre-death rejoin entry is
    /// never matched).
    pub fn rejoin_time_after(&self, rank: usize, after: f64) -> Option<f64> {
        earliest_after(&self.rejoins, rank, after)
    }

    /// Flips a deterministic mantissa bit of one word of `data` (the
    /// corruption applied to a message the plan marks as corrupted).
    pub fn corrupt_payload(&self, data: &mut [f64], src: usize, dst: usize, seq: u64) {
        if data.is_empty() {
            return;
        }
        let h = splitmix(self.seed ^ mix3(src as u64, dst as u64, seq));
        let word = (h % data.len() as u64) as usize;
        // Bits 0..52 are mantissa bits of an f64: flipping one perturbs
        // the value but cannot produce an infinity or NaN.
        let bit = (h >> 32) % 52;
        data[word] = f64::from_bits(data[word].to_bits() ^ (1u64 << bit));
    }

    /// Deterministic uniform draw in `[0, 1)` for jitter.
    fn unit(&self, src: usize, dst: usize, seq: u64) -> f64 {
        let h = splitmix(self.seed ^ mix3(src as u64, dst as u64, seq));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The plan's jitter seed (also keys retry-backoff jitter).
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }
}

fn sorted_group(group: &[usize]) -> Vec<usize> {
    let mut g = group.to_vec();
    g.sort_unstable();
    g.dedup();
    g
}

fn earliest_after(events: &[(usize, f64)], rank: usize, after: f64) -> Option<f64> {
    events
        .iter()
        .filter(|&&(r, t)| r == rank && t > after)
        .map(|&(_, t)| t)
        .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
}

/// Deterministic uniform draw in `[0, 1)` keyed on `(seed, a, b, c)` —
/// shared by straggler jitter and retry-backoff jitter.
pub(crate) fn jitter_unit(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = splitmix(seed ^ mix3(a, b, c));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ splitmix(b) ^ c.rotate_left(32))
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a checksum over the bit patterns of a word payload. Stamped on
/// every data envelope while a plan is active and re-verified by the
/// receiver, out of band of the α–β cost model (word counts are
/// unchanged, so cost-fidelity tests hold under fault injection).
pub fn checksum(words: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_validate_reject_non_finite_times() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // NaN and ±inf are refused at construction with a message
        // naming finiteness.
        for t in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for build in [
                Box::new(move || drop(FaultPlan::new(1).kill(0, t))) as Box<dyn Fn()>,
                Box::new(move || drop(FaultPlan::new(1).rejoin(0, t))),
                Box::new(move || drop(FaultPlan::new(1).partition(&[0, 1], t))),
                Box::new(move || drop(FaultPlan::new(1).partition_oneway(&[0], t))),
                Box::new(move || drop(FaultPlan::new(1).heal(&[0, 1], t))),
                Box::new(move || drop(FaultPlan::new(1).straggle(0, 1, t, 0.0, Span::All))),
                Box::new(move || drop(FaultPlan::new(1).straggle(0, 1, 0.0, t, Span::All))),
                Box::new(move || drop(FaultPlan::new(1).with_default_timeout(t))),
            ] {
                let caught = catch_unwind(AssertUnwindSafe(&build)).expect_err("accepted {t}");
                let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
                assert!(msg.contains("finite"), "bad panic message: {msg:?}");
            }
        }
        // `validate` backstops plans assembled without the builders
        // (the chaos JSON path constructs literals).
        let mut p = FaultPlan::new(1).kill(0, 0.5);
        p.kills[0].1 = f64::INFINITY;
        let err = p.validate().unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        // Extreme *finite* times remain valid.
        assert_eq!(
            FaultPlan::new(1).kill(0, 5e-324).kill(1, 1e300).validate(),
            Ok(())
        );
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultPlan::default().active());
        assert!(!FaultPlan::new(7).active());
        assert!(FaultPlan::new(7).drop_nth(0, 1, 0).active());
        assert!(FaultPlan::new(7).with_default_timeout(1.0).active());
    }

    #[test]
    fn straggler_spans_select_messages() {
        let p = FaultPlan::new(1).straggle(0, 1, 2.5, 0.0, Span::Once(3));
        assert_eq!(p.extra_delay(0, 1, 3), 2.5);
        assert_eq!(p.extra_delay(0, 1, 2), 0.0);
        assert_eq!(p.extra_delay(1, 0, 3), 0.0, "other direction unaffected");
        let all = FaultPlan::new(1).straggle(0, 1, 1.0, 0.0, Span::All);
        assert_eq!(all.extra_delay(0, 1, 0), 1.0);
        assert_eq!(all.extra_delay(0, 1, 99), 1.0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = FaultPlan::new(42).straggle(0, 1, 1.0, 0.5, Span::All);
        let a = p.extra_delay(0, 1, 7);
        let b = FaultPlan::new(42)
            .straggle(0, 1, 1.0, 0.5, Span::All)
            .extra_delay(0, 1, 7);
        assert_eq!(a, b, "same seed, same jitter");
        assert!((1.0..1.5).contains(&a));
        let c = FaultPlan::new(43)
            .straggle(0, 1, 1.0, 0.5, Span::All)
            .extra_delay(0, 1, 7);
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn drop_and_corrupt_index_by_link_sequence() {
        let p = FaultPlan::new(0).drop_nth(2, 3, 5).corrupt_nth(3, 2, 0);
        assert!(p.dropped(2, 3, 5));
        assert!(!p.dropped(2, 3, 4));
        assert!(!p.dropped(3, 2, 5));
        assert!(p.corrupted(3, 2, 0));
        assert!(!p.corrupted(2, 3, 0));
    }

    #[test]
    fn kill_time_takes_earliest() {
        let p = FaultPlan::new(0).kill(4, 10.0).kill(4, 3.0).kill(5, 1.0);
        assert_eq!(p.kill_time(4), Some(3.0));
        assert_eq!(p.kill_time(5), Some(1.0));
        assert_eq!(p.kill_time(0), None);
    }

    #[test]
    fn kill_and_rejoin_windows_are_strictly_after() {
        let p = FaultPlan::new(0)
            .kill(4, 3.0)
            .rejoin(4, 7.0)
            .kill(4, 12.0)
            .rejoin(4, 20.0);
        assert!(p.active());
        // First life: dies at 3, rejoins at 7 (not the later 20).
        assert_eq!(p.kill_time(4), Some(3.0));
        assert_eq!(p.rejoin_time_after(4, 3.0), Some(7.0));
        // Second life: the revival spends kills ≤ 7; the 12.0 kill is
        // next, then the 20.0 rejoin.
        assert_eq!(p.kill_time_after(4, 7.0), Some(12.0));
        assert_eq!(p.rejoin_time_after(4, 12.0), Some(20.0));
        // No third life.
        assert_eq!(p.kill_time_after(4, 20.0), None);
        assert_eq!(p.rejoin_time_after(4, 20.0), None);
        // Other ranks unaffected.
        assert_eq!(p.rejoin_time_after(5, 0.0), None);
    }

    #[test]
    fn corruption_flips_exactly_one_finite_bit() {
        let p = FaultPlan::new(9);
        let orig = vec![1.0, -2.5, 3.25, 0.0];
        let mut v = orig.clone();
        p.corrupt_payload(&mut v, 0, 1, 0);
        let flipped: u32 = orig
            .iter()
            .zip(&v)
            .map(|(a, b)| (a.to_bits() ^ b.to_bits()).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
        assert!(v.iter().all(|x| x.is_finite()), "corruption stays finite");
        assert_ne!(checksum(&orig), checksum(&v));
        // Deterministic: same plan corrupts the same bit.
        let mut w = orig.clone();
        p.corrupt_payload(&mut w, 0, 1, 0);
        assert_eq!(v, w);
    }

    #[test]
    fn symmetric_partition_cuts_both_directions_until_heal() {
        let p = FaultPlan::new(0).partition(&[1, 3], 2.0).heal(&[1, 3], 5.0);
        assert!(p.active());
        assert!(!p.link_cut(1, 0, 1.9), "not yet partitioned");
        assert!(p.link_cut(1, 0, 2.0), "group -> outside severed");
        assert!(p.link_cut(0, 3, 2.0), "outside -> group severed");
        assert!(!p.link_cut(1, 3, 3.0), "intra-group traffic flows");
        assert!(!p.link_cut(0, 2, 3.0), "outside traffic flows");
        assert!(!p.link_cut(1, 0, 5.0), "healed at the heal instant");
        assert!(p.pair_cut(0, 1, 3.0));
        assert!(!p.pair_cut(0, 2, 3.0));
    }

    #[test]
    fn oneway_partition_cuts_only_group_to_outside() {
        let p = FaultPlan::new(0).partition_oneway(&[2], 1.0);
        assert!(p.link_cut(2, 0, 1.5), "group cannot be heard");
        assert!(!p.link_cut(0, 2, 1.5), "group can still hear");
        assert!(p.pair_cut(0, 2, 1.5), "the pair is still impaired");
        // Never healed: cut forever.
        assert!(p.link_cut(2, 0, 1e12));
        assert_eq!(p.heal_horizon(1.5), Some(f64::INFINITY));
        assert_eq!(p.heal_horizon(0.5), None);
    }

    #[test]
    fn heal_horizon_takes_the_latest_active_heal() {
        let p = FaultPlan::new(0)
            .partition(&[1], 1.0)
            .heal(&[1], 4.0)
            .partition(&[2, 3], 2.0)
            .heal(&[2, 3], 6.0);
        assert_eq!(p.heal_horizon(2.5), Some(6.0));
        assert_eq!(p.heal_horizon(4.5), Some(6.0));
        assert_eq!(p.heal_horizon(6.0), None, "everything healed");
    }

    #[test]
    fn alive_at_follows_kill_rejoin_lifetimes() {
        let p = FaultPlan::new(0).kill(4, 3.0).rejoin(4, 7.0).kill(4, 12.0);
        assert!(p.alive_at(4, 2.9));
        assert!(!p.alive_at(4, 3.0));
        assert!(!p.alive_at(4, 6.9));
        assert!(p.alive_at(4, 7.0));
        assert!(!p.alive_at(4, 12.0));
        assert!(p.alive_at(0, 100.0), "unkilled ranks are always alive");
    }

    #[test]
    fn duplicate_and_reorder_index_by_link_sequence() {
        let p = FaultPlan::new(0)
            .duplicate_nth(0, 1, 4)
            .reorder_nth(1, 0, 2, 3);
        assert!(p.active());
        assert!(p.duplicated(0, 1, 4));
        assert!(!p.duplicated(0, 1, 3));
        assert!(!p.duplicated(1, 0, 4));
        assert_eq!(p.reorder_depth(1, 0, 2), Some(3));
        assert_eq!(p.reorder_depth(1, 0, 1), None);
        assert_eq!(p.reorder_depth(0, 1, 2), None);
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let p = FaultPlan::new(3)
            .kill(4, 3.0)
            .rejoin(4, 7.0)
            .straggle(0, 1, 1.0, 0.0, Span::Once(2))
            .straggle(0, 1, 1.0, 0.0, Span::Once(3))
            .partition(&[1, 2], 1.0)
            .heal(&[1, 2], 2.0)
            .duplicate_nth(0, 1, 0)
            .reorder_nth(0, 1, 1, 2);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(FaultPlan::default().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_rejoin_without_prior_kill() {
        let err = FaultPlan::new(0).rejoin(4, 5.0).validate().unwrap_err();
        assert!(err.contains("rejoin of rank 4"), "got: {err}");
        assert!(err.contains("without a kill"), "got: {err}");
    }

    #[test]
    fn validate_rejects_same_epoch_kill_and_rejoin() {
        let err = FaultPlan::new(0)
            .kill(2, 4.0)
            .rejoin(2, 4.0)
            .validate()
            .unwrap_err();
        assert!(err.contains("rank 2"), "got: {err}");
        assert!(err.contains("contradictory"), "got: {err}");
    }

    #[test]
    fn validate_rejects_overlapping_straggler_spans() {
        let all2 = FaultPlan::new(0)
            .straggle(0, 1, 1.0, 0.0, Span::All)
            .straggle(0, 1, 2.0, 0.0, Span::All);
        assert!(all2.validate().unwrap_err().contains("overlapping"));
        let all_once = FaultPlan::new(0)
            .straggle(0, 1, 1.0, 0.0, Span::All)
            .straggle(0, 1, 2.0, 0.0, Span::Once(3));
        assert!(all_once.validate().unwrap_err().contains("0 -> 1"));
        let same_once = FaultPlan::new(0)
            .straggle(2, 3, 1.0, 0.0, Span::Once(7))
            .straggle(2, 3, 2.0, 0.0, Span::Once(7));
        assert!(same_once.validate().unwrap_err().contains("2 -> 3"));
        // Distinct messages or distinct links are fine.
        assert!(FaultPlan::new(0)
            .straggle(0, 1, 1.0, 0.0, Span::Once(1))
            .straggle(0, 1, 2.0, 0.0, Span::Once(2))
            .validate()
            .is_ok());
        assert!(FaultPlan::new(0)
            .straggle(0, 1, 1.0, 0.0, Span::All)
            .straggle(1, 0, 2.0, 0.0, Span::All)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_heal_of_never_partitioned_set() {
        let err = FaultPlan::new(0).heal(&[1, 2], 5.0).validate().unwrap_err();
        assert!(err.contains("heal of [1, 2]"), "got: {err}");
        // A heal before (or at) the partition start is just as wrong.
        let err = FaultPlan::new(0)
            .partition(&[1, 2], 5.0)
            .heal(&[1, 2], 5.0)
            .validate()
            .unwrap_err();
        assert!(err.contains("strictly before"), "got: {err}");
        // Group mismatch does not pair either.
        let err = FaultPlan::new(0)
            .partition(&[1, 2], 1.0)
            .heal(&[1, 3], 2.0)
            .validate()
            .unwrap_err();
        assert!(err.contains("[1, 3]"), "got: {err}");
    }

    #[test]
    fn validate_rejects_zero_depth_reorders() {
        let err = FaultPlan::new(0)
            .reorder_nth(0, 1, 5, 0)
            .validate()
            .unwrap_err();
        assert!(err.contains("depth 0"), "got: {err}");
    }

    #[test]
    fn bitflips_index_by_rank_iter_and_op() {
        let p = FaultPlan::new(5)
            .bitflip_compute(2, 3, 1, 50)
            .bitflip_memory(1, 4, 17, 40);
        assert!(p.active());
        assert!(p.has_bitflips());
        assert_eq!(p.compute_flip_entries(), 1);
        assert_eq!(p.memory_flip_entries(), 1);
        assert_eq!(p.compute_flips_at(2, 3, 1).len(), 1);
        assert!(p.compute_flips_at(2, 3, 0).is_empty());
        assert!(p.compute_flips_at(2, 2, 1).is_empty());
        assert!(p.compute_flips_at(0, 3, 1).is_empty());
        let m = p.memory_flips_at(1, 4);
        assert_eq!(
            m,
            vec![BitFlip {
                entry: 0,
                index: 17,
                bit: 40
            }]
        );
        assert!(p.memory_flips_at(1, 3).is_empty());
        assert!(p.memory_flips_at(0, 4).is_empty());
        // Deterministic element draw; entry index keys the spend-once
        // bookkeeping.
        let a = p.compute_flips_at(2, 3, 1);
        let b = p.compute_flips_at(2, 3, 1);
        assert_eq!(a, b);
        assert_eq!(a[0].entry, 0);
        assert_eq!(a[0].bit, 50);
    }

    #[test]
    fn apply_flips_advances_past_collisions() {
        // Two flips selecting the same word must hit distinct words.
        let flips = [
            BitFlip {
                entry: 0,
                index: 2,
                bit: 51,
            },
            BitFlip {
                entry: 1,
                index: 2,
                bit: 48,
            },
        ];
        let orig = vec![1.0, 2.0, 3.0, 4.0];
        let mut v = orig.clone();
        let hit = apply_flips(&mut v, &flips);
        assert_eq!(hit, vec![2, 3]);
        let changed: Vec<usize> = orig
            .iter()
            .zip(&v)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(changed, vec![2, 3]);
        // Flipping a scripted bit is an involution: re-applying restores.
        apply_flips(&mut v, &flips);
        assert_eq!(v, orig);
        // Empty buffers are a no-op.
        assert!(apply_flips(&mut [], &flips).is_empty());
    }

    #[test]
    fn validate_rejects_sign_bit_flips() {
        let err = FaultPlan::new(0)
            .bitflip_compute(0, 0, 0, 63)
            .validate()
            .unwrap_err();
        assert!(err.contains("bit 63"), "got: {err}");
        let err = FaultPlan::new(0)
            .bitflip_memory(0, 0, 0, 64)
            .validate()
            .unwrap_err();
        assert!(err.contains("bit 64"), "got: {err}");
        assert!(FaultPlan::new(0)
            .bitflip_compute(0, 0, 0, 62)
            .bitflip_memory(0, 0, 0, 0)
            .validate()
            .is_ok());
    }

    #[test]
    fn checksum_detects_single_word_changes() {
        let a = vec![0.5; 64];
        let mut b = a.clone();
        b[17] = 0.5000000001;
        assert_ne!(checksum(&a), checksum(&b));
        assert_eq!(checksum(&a), checksum(&a.clone()));
        assert_eq!(checksum(&[]), checksum(&[]));
    }
}
