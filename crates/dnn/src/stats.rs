//! Aggregate network statistics used by reports and cost models.

use crate::network::Network;

/// Summary of the per-layer quantities the paper's sums range over.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// `L` — number of weighted layers.
    pub weighted_layers: usize,
    /// Convolutional layer count.
    pub conv_layers: usize,
    /// Fully-connected layer count.
    pub fc_layers: usize,
    /// `Σ|W_i|` — total parameters.
    pub total_weights: usize,
    /// Parameters held in conv layers.
    pub conv_weights: usize,
    /// Parameters held in FC layers.
    pub fc_weights: usize,
    /// `Σ d_i` — total output-activation length per sample.
    pub sum_d_out: usize,
    /// `Σ_{i≥2} d_{i−1}` — total input-activation length over layers
    /// 2..L (the term backpropagation all-reduces range over).
    pub sum_d_in_tail: usize,
    /// Training FLOPs per sample (3 matmuls per layer).
    pub train_flops_per_sample: f64,
}

impl NetworkStats {
    /// Computes the summary for a network.
    pub fn of(net: &Network) -> Self {
        let wl = net.weighted_layers();
        let conv_weights: usize = wl.iter().filter(|l| l.is_conv()).map(|l| l.weights).sum();
        let fc_weights: usize = wl.iter().filter(|l| !l.is_conv()).map(|l| l.weights).sum();
        NetworkStats {
            weighted_layers: wl.len(),
            conv_layers: wl.iter().filter(|l| l.is_conv()).count(),
            fc_layers: wl.iter().filter(|l| !l.is_conv()).count(),
            total_weights: conv_weights + fc_weights,
            conv_weights,
            fc_weights,
            sum_d_out: wl.iter().map(|l| l.d_out()).sum(),
            sum_d_in_tail: wl.iter().skip(1).map(|l| l.d_in()).sum(),
            train_flops_per_sample: net.train_flops_per_sample(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{alexnet, mlp};

    #[test]
    fn alexnet_summary() {
        let s = NetworkStats::of(&alexnet());
        assert_eq!(s.weighted_layers, 8);
        assert_eq!(s.conv_layers, 5);
        assert_eq!(s.fc_layers, 3);
        assert_eq!(s.total_weights, s.conv_weights + s.fc_weights);
        // Per-sample training flops for AlexNet are a few GFLOP.
        assert!(s.train_flops_per_sample > 1e9 && s.train_flops_per_sample < 1e10);
    }

    #[test]
    fn tail_sum_skips_first_layer() {
        let net = mlp("m", &[8, 16, 4]);
        let s = NetworkStats::of(&net);
        assert_eq!(s.sum_d_out, 16 + 4);
        assert_eq!(s.sum_d_in_tail, 16, "only layer 2's input counts");
    }
}
