//! AlexNet (Krizhevsky et al., 2012), single-tower variant — the
//! network fixed by the paper's Table 1: "5 convolutional and 3 fully
//! connected layers, parameters: 61M".
//!
//! Our layer-by-layer weight count is 62.37 M (the commonly quoted
//! "61M" rounds the same architecture; bias terms and the two-tower
//! grouping of the original paper account for small differences).

use crate::layer::LayerSpec;
use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// ImageNet LSVRC-2012 training-set size used by the paper's Table 1.
pub const IMAGENET_TRAIN_IMAGES: usize = 1_281_167;

/// ImageNet class count.
pub const IMAGENET_CLASSES: usize = 1000;

/// Builds AlexNet with 227×227 RGB inputs.
pub fn alexnet() -> Network {
    NetworkBuilder::new("alexnet", Shape::new(3, 227, 227))
        // Stage 1: conv1 11x11/4, LRN, pool /2.
        .layer(LayerSpec::Conv {
            out_c: 96,
            kh: 11,
            kw: 11,
            stride: 4,
            pad: 0,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::LocalResponseNorm)
        .layer(LayerSpec::MaxPool { k: 3, stride: 2 })
        // Stage 2: conv2 5x5 same-pad, LRN, pool /2.
        .layer(LayerSpec::Conv {
            out_c: 256,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::LocalResponseNorm)
        .layer(LayerSpec::MaxPool { k: 3, stride: 2 })
        // Stage 3-5: three 3x3 same-pad convs, then pool /2.
        .layer(LayerSpec::Conv {
            out_c: 384,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::Conv {
            out_c: 384,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::Conv {
            out_c: 256,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::MaxPool { k: 3, stride: 2 })
        // Classifier: fc6, fc7, fc8.
        .layer(LayerSpec::FullyConnected { out: 4096 })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::Dropout { rate: 0.5 })
        .layer(LayerSpec::FullyConnected { out: 4096 })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::Dropout { rate: 0.5 })
        .layer(LayerSpec::FullyConnected {
            out: IMAGENET_CLASSES,
        })
        .build()
        .expect("AlexNet shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn has_5_conv_and_3_fc_layers() {
        let wl = alexnet().weighted_layers();
        assert_eq!(wl.len(), 8);
        let convs = wl.iter().filter(|l| l.is_conv()).count();
        assert_eq!(convs, 5);
    }

    #[test]
    fn activation_shapes_match_literature() {
        let wl = alexnet().weighted_layers();
        assert_eq!(wl[0].out_shape, Shape::new(96, 55, 55));
        assert_eq!(wl[1].out_shape, Shape::new(256, 27, 27));
        assert_eq!(wl[2].out_shape, Shape::new(384, 13, 13));
        assert_eq!(wl[3].out_shape, Shape::new(384, 13, 13));
        assert_eq!(wl[4].out_shape, Shape::new(256, 13, 13));
        assert_eq!(wl[5].in_shape.dim(), 9216, "fc6 input = 256*6*6");
        assert_eq!(wl[7].out_shape, Shape::flat(1000));
    }

    #[test]
    fn weight_counts_per_layer() {
        let wl = alexnet().weighted_layers();
        let counts: Vec<usize> = wl.iter().map(|l| l.weights).collect();
        assert_eq!(
            counts,
            vec![
                11 * 11 * 3 * 96,
                5 * 5 * 96 * 256,
                3 * 3 * 256 * 384,
                3 * 3 * 384 * 384,
                3 * 3 * 384 * 256,
                9216 * 4096,
                4096 * 4096,
                4096 * 1000,
            ]
        );
    }

    #[test]
    fn total_weights_approx_61m() {
        let total = alexnet().total_weights();
        assert!(
            (60_000_000..64_000_000).contains(&total),
            "Table 1 says ~61M; got {total}"
        );
    }

    #[test]
    fn conv3_is_the_eq5_example_layer() {
        // The paper's Eq. 5 example: "3x3 filters on 13x13x384
        // activations" — that is conv4/conv5's input; check conv4.
        let wl = alexnet().weighted_layers();
        assert_eq!(wl[3].in_shape, Shape::new(384, 13, 13));
        assert_eq!(wl[3].kind, LayerKind::Conv { kh: 3, kw: 3 });
    }

    #[test]
    fn fc_layers_dominate_weights() {
        let wl = alexnet().weighted_layers();
        let conv: usize = wl.iter().filter(|l| l.is_conv()).map(|l| l.weights).sum();
        let fc: usize = wl.iter().filter(|l| !l.is_conv()).map(|l| l.weights).sum();
        assert!(fc > 10 * conv, "conv={conv} fc={fc}");
    }
}
