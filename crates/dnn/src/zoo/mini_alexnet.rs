//! A faithfully-scaled miniature AlexNet.
//!
//! Same stage structure as the paper's fixed network — a strided
//! large-kernel conv1, two overlapping 3×3/2 max-pools, a 5×5
//! same-padded conv2, three 3×3 same-padded convs, and an FC head —
//! shrunk to 35×35 inputs so the *executable* trainers can run it
//! end-to-end in milliseconds. `integrated::cnn` trains this network
//! with integrated batch+domain parallelism and verifies the weights
//! against serial SGD.

use crate::layer::LayerSpec;
use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds the miniature AlexNet (3×35×35 inputs, 10 classes).
pub fn mini_alexnet() -> Network {
    NetworkBuilder::new("mini_alexnet", Shape::new(3, 35, 35))
        // Stage 1: strided large-kernel conv + LRN + overlapping pool.
        .layer(LayerSpec::Conv {
            out_c: 8,
            kh: 7,
            kw: 7,
            stride: 2,
            pad: 0,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::LocalResponseNorm)
        .layer(LayerSpec::MaxPool { k: 3, stride: 2 })
        // Stage 2: 5x5 same-pad conv + LRN + overlapping pool.
        .layer(LayerSpec::Conv {
            out_c: 12,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::LocalResponseNorm)
        .layer(LayerSpec::MaxPool { k: 3, stride: 2 })
        // Stages 3-5: 3x3 same-pad convs.
        .layer(LayerSpec::Conv {
            out_c: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::Conv {
            out_c: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::Conv {
            out_c: 12,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        })
        .layer(LayerSpec::ReLU)
        // Classifier.
        .layer(LayerSpec::FullyConnected { out: 32 })
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::FullyConnected { out: 10 })
        .build()
        .expect("mini AlexNet shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_alexnet_stage_structure() {
        let wl = mini_alexnet().weighted_layers();
        assert_eq!(wl.len(), 7, "5 convs + 2 FC");
        assert_eq!(wl.iter().filter(|l| l.is_conv()).count(), 5);
    }

    #[test]
    fn shapes_chain_through_strided_stages() {
        let wl = mini_alexnet().weighted_layers();
        // conv1: (35-7)/2+1 = 15.
        assert_eq!(wl[0].out_shape, Shape::new(8, 15, 15));
        // conv2 input: overlapping pool (15-3)/2+1 = 7.
        assert_eq!(wl[1].in_shape, Shape::new(8, 7, 7));
        // conv3 input: pool (7-3)/2+1 = 3.
        assert_eq!(wl[2].in_shape, Shape::new(12, 3, 3));
        // FC head input: 12*3*3.
        assert_eq!(wl[5].d_in(), 108);
    }

    #[test]
    fn small_enough_to_train_in_tests() {
        let net = mini_alexnet();
        assert!(net.total_weights() < 50_000, "got {}", net.total_weights());
    }
}
