//! VGG-16 (Simonyan & Zisserman): all-3×3 convolutions with an even
//! heavier fully-connected tail than AlexNet — the regime where the
//! paper's integrated model+batch parallelism pays off most.

use crate::layer::LayerSpec;
use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds VGG-16 with 224×224 RGB inputs (configuration D).
pub fn vgg16() -> Network {
    let mut b = NetworkBuilder::new("vgg16", Shape::new(3, 224, 224));
    let stages: &[&[usize]] = &[
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    for stage in stages {
        for &out_c in *stage {
            b = b
                .layer(LayerSpec::Conv {
                    out_c,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    pad: 1,
                })
                .layer(LayerSpec::ReLU);
        }
        b = b.layer(LayerSpec::MaxPool { k: 2, stride: 2 });
    }
    b.fc_relu(4096)
        .layer(LayerSpec::Dropout { rate: 0.5 })
        .fc_relu(4096)
        .layer(LayerSpec::Dropout { rate: 0.5 })
        .layer(LayerSpec::FullyConnected { out: 1000 })
        .build()
        .expect("VGG-16 shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_13_conv_and_3_fc() {
        let wl = vgg16().weighted_layers();
        assert_eq!(wl.len(), 16);
        assert_eq!(wl.iter().filter(|l| l.is_conv()).count(), 13);
    }

    #[test]
    fn total_weights_about_138m() {
        let total = vgg16().total_weights();
        // VGG-16 has ~138M parameters (weights only, no biases: 137.7M).
        assert!((130_000_000..140_000_000).contains(&total), "got {total}");
    }

    #[test]
    fn fc6_input_is_25088() {
        let wl = vgg16().weighted_layers();
        let fc6 = wl.iter().find(|l| !l.is_conv()).unwrap();
        assert_eq!(fc6.d_in(), 512 * 7 * 7);
    }

    #[test]
    fn spatial_halves_each_stage() {
        let wl = vgg16().weighted_layers();
        assert_eq!(wl[0].out_shape, Shape::new(64, 224, 224));
        assert_eq!(wl[2].in_shape, Shape::new(64, 112, 112));
        assert_eq!(wl[12].out_shape, Shape::new(512, 14, 14));
    }
}
