//! A ResNet-18-style plain convolutional stack.
//!
//! The paper points at He et al.'s residual networks when noting that
//! 1×1 convolutions "are actually becoming a dominant portion of the
//! network in recent architectures" and that domain parallelism needs
//! **no communication at all** for them (Eq. 7 with `⌊1/2⌋ = 0`). This
//! model reproduces the ResNet-18 shape progression including the 1×1
//! downsample projections; the residual element-wise adds are omitted
//! because they carry no weights and no communication in any of the
//! paper's schemes.

use crate::layer::LayerSpec;
use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

fn conv(out_c: usize, k: usize, stride: usize, pad: usize) -> LayerSpec {
    LayerSpec::Conv {
        out_c,
        kh: k,
        kw: k,
        stride,
        pad,
    }
}

/// Builds the ResNet-18-style stack with 224×224 RGB inputs.
pub fn resnet18ish() -> Network {
    let mut b = NetworkBuilder::new("resnet18ish", Shape::new(3, 224, 224))
        .layer(conv(64, 7, 2, 3))
        .layer(LayerSpec::ReLU)
        .layer(LayerSpec::MaxPool { k: 3, stride: 2 }); // 64 x 55 -> 27? see test
                                                        // Stage template: (channels, first-stride). Each stage is two basic
                                                        // blocks of two 3x3 convs; stages after the first open with a
                                                        // stride-2 3x3 conv plus a 1x1 projection.
    for (ch, first_stride) in [(64usize, 1usize), (128, 2), (256, 2), (512, 2)] {
        if first_stride != 1 {
            // 1x1 projection (the residual downsample path, kept as a
            // real layer because its cost is what we study).
            b = b.layer(conv(ch, 1, 2, 0)).layer(LayerSpec::ReLU);
        }
        for _ in 0..4 {
            b = b.layer(conv(ch, 3, 1, 1)).layer(LayerSpec::ReLU);
        }
    }
    // Global pooling to 1x1, then the classifier.
    b.layer(LayerSpec::MaxPool { k: 6, stride: 6 })
        .layer(LayerSpec::FullyConnected { out: 1000 })
        .build()
        .expect("resnet18ish shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn contains_1x1_convolutions() {
        let wl = resnet18ish().weighted_layers();
        let ones = wl
            .iter()
            .filter(|l| l.kind == LayerKind::Conv { kh: 1, kw: 1 })
            .count();
        assert_eq!(ones, 3, "one 1x1 projection per downsampling stage");
    }

    #[test]
    fn one_by_one_convs_have_zero_halo() {
        let wl = resnet18ish().weighted_layers();
        for l in wl
            .iter()
            .filter(|l| l.kind == LayerKind::Conv { kh: 1, kw: 1 })
        {
            let (kh, kw) = l.halo_kernel();
            assert_eq!(kh / 2, 0);
            assert_eq!(kw / 2, 0);
        }
    }

    #[test]
    fn parameter_count_in_resnet18_ballpark() {
        let total = resnet18ish().total_weights();
        // ResNet-18 has ~11.7M parameters; the plain stack lands nearby.
        assert!((8_000_000..16_000_000).contains(&total), "got {total}");
    }

    #[test]
    fn single_fc_classifier() {
        let wl = resnet18ish().weighted_layers();
        let fcs = wl.iter().filter(|l| !l.is_conv()).count();
        assert_eq!(fcs, 1);
        assert_eq!(wl.last().unwrap().out_shape, Shape::flat(1000));
    }
}
