//! Model zoo.
//!
//! [`alexnet`] is the paper's fixed evaluation network (Table 1). The
//! others exist to show the cost framework is architecture-generic, as
//! the paper's Limitations section claims: VGG-16 (heavier FC tail),
//! a ResNet-18-style stack (1×1 convolutions — the "no halo" case the
//! paper highlights), MLPs (for the executable distributed trainer),
//! and an unrolled RNN (FC-dominated, the paper's explicitly-mentioned
//! extension).

mod alexnet;
mod mini_alexnet;
mod mlp;
mod resnet;
mod rnn;
mod vgg;

pub use alexnet::{alexnet, IMAGENET_CLASSES, IMAGENET_TRAIN_IMAGES};
pub use mini_alexnet::mini_alexnet;
pub use mlp::{mlp, mlp_tiny};
pub use resnet::resnet18ish;
pub use rnn::rnn_unrolled;
pub use vgg::vgg16;
