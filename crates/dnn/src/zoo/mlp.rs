//! Multi-layer perceptrons.
//!
//! MLPs are pure stacks of the `Y = W·X` products the paper analyzes,
//! which makes them the network family the executable distributed
//! trainer (`integrated::trainer`) runs end-to-end on the simulated
//! cluster.

use crate::layer::LayerSpec;
use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds an MLP through the given layer widths: `dims[0]` is the input
/// width, each subsequent width adds an FC layer, with ReLU between
/// hidden layers (none after the final logits layer).
///
/// # Panics
///
/// Panics if fewer than two widths are given.
pub fn mlp(name: impl Into<String>, dims: &[usize]) -> Network {
    assert!(
        dims.len() >= 2,
        "an MLP needs an input and at least one layer"
    );
    let mut b = NetworkBuilder::new(name, Shape::flat(dims[0]));
    for (i, &out) in dims[1..].iter().enumerate() {
        b = b.layer(LayerSpec::FullyConnected { out });
        let is_last = i + 2 == dims.len();
        if !is_last {
            b = b.layer(LayerSpec::ReLU);
        }
    }
    b.build().expect("MLP shapes are consistent")
}

/// A small MLP (64→48→32→10) used by distributed-training tests:
/// big enough for interesting shard shapes, small enough to train in
/// milliseconds.
pub fn mlp_tiny() -> Network {
    mlp("mlp_tiny", &[64, 48, 32, 10])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_chain() {
        let net = mlp("m", &[8, 16, 4]);
        let wl = net.weighted_layers();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].d_in(), 8);
        assert_eq!(wl[0].d_out(), 16);
        assert_eq!(wl[1].d_out(), 4);
        assert_eq!(net.total_weights(), 8 * 16 + 16 * 4);
    }

    #[test]
    fn no_relu_after_logits() {
        let net = mlp("m", &[8, 16, 4]);
        let last = net.layers().last().unwrap();
        assert!(matches!(last.0, LayerSpec::FullyConnected { out: 4 }));
    }

    #[test]
    fn tiny_preset_shape() {
        let net = mlp_tiny();
        assert_eq!(net.input, Shape::flat(64));
        assert_eq!(net.output(), Shape::flat(10));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_single_width() {
        let _ = mlp("bad", &[8]);
    }
}
