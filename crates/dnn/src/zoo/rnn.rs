//! An unrolled recurrent network.
//!
//! The paper's Limitations section: "cases with Recurrent Neural
//! Networks mainly consist of fully connected layers and our analysis
//! naturally extends to those cases." We model a vanilla RNN unrolled
//! over `steps` timesteps as the corresponding chain of FC layers: an
//! input projection, `steps` hidden-to-hidden transitions (with tanh),
//! and an output head. Weight *sharing* across timesteps affects only
//! the ∆W all-reduce volume — which the cost model reads from
//! `total_weights`, so callers comparing against a weight-shared
//! implementation should divide that term by `steps`; every activation
//! (all-gather) term is per-timestep regardless of sharing.

use crate::layer::LayerSpec;
use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds an unrolled vanilla RNN: `input_dim → hidden` then
/// `steps − 1` further `hidden → hidden` transitions, then
/// `hidden → classes`.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn rnn_unrolled(input_dim: usize, hidden: usize, steps: usize, classes: usize) -> Network {
    assert!(steps > 0, "an RNN needs at least one timestep");
    let mut b = NetworkBuilder::new(format!("rnn_h{hidden}_t{steps}"), Shape::flat(input_dim));
    b = b
        .layer(LayerSpec::FullyConnected { out: hidden })
        .layer(LayerSpec::Tanh);
    for _ in 1..steps {
        b = b
            .layer(LayerSpec::FullyConnected { out: hidden })
            .layer(LayerSpec::Tanh);
    }
    b.layer(LayerSpec::FullyConnected { out: classes })
        .build()
        .expect("RNN shapes are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_scales_with_steps() {
        let net = rnn_unrolled(128, 256, 4, 10);
        // 1 input proj + 3 transitions + 1 head = 5 weighted layers.
        assert_eq!(net.weighted_layers().len(), 5);
    }

    #[test]
    fn all_layers_are_fully_connected() {
        let net = rnn_unrolled(64, 32, 3, 5);
        assert!(net.weighted_layers().iter().all(|l| !l.is_conv()));
    }

    #[test]
    fn weights_count() {
        let net = rnn_unrolled(64, 32, 3, 5);
        assert_eq!(net.total_weights(), 64 * 32 + 2 * 32 * 32 + 32 * 5);
    }
}
