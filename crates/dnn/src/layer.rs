//! Layer specifications.

use serde::{Deserialize, Serialize};

use crate::shape::Shape;

/// One layer of a network, as named in the paper's §2.1: convolutional,
/// fully connected, activation, dropout (plus pooling and LRN, which
/// AlexNet uses between stages).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution with `out_c` filters of size `kh × kw`.
    Conv {
        /// Output channels `Y_C` (filter count).
        out_c: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride (both dimensions).
        stride: usize,
        /// Zero padding (all sides).
        pad: usize,
    },
    /// Fully connected layer to `out` units.
    FullyConnected {
        /// Output width `d_i`.
        out: usize,
    },
    /// Max pooling with square window `k` and `stride`.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Element-wise ReLU (shape- and parameter-free).
    ReLU,
    /// Element-wise tanh.
    Tanh,
    /// Dropout; shape-preserving, parameter-free. The rate only affects
    /// training dynamics, never communication volume, so the cost model
    /// ignores it.
    Dropout {
        /// Drop probability.
        rate: f64,
    },
    /// Local response normalization (AlexNet); shape-preserving,
    /// parameter-free.
    LocalResponseNorm,
}

/// The coarse classification the cost model cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolutional weighted layer with kernel `kh × kw`.
    Conv {
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
    },
    /// Fully connected weighted layer.
    FullyConnected,
}

impl LayerSpec {
    /// Whether this layer carries weights (enters the paper's sums over
    /// `i = 1..L`).
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            LayerSpec::Conv { .. } | LayerSpec::FullyConnected { .. }
        )
    }

    /// Output shape for a given input shape, or an error message if the
    /// layer cannot be applied.
    pub fn out_shape(&self, input: Shape) -> Result<Shape, String> {
        match *self {
            LayerSpec::Conv {
                out_c,
                kh,
                kw,
                stride,
                pad,
            } => {
                let h_eff = input.h + 2 * pad;
                let w_eff = input.w + 2 * pad;
                if kh > h_eff || kw > w_eff {
                    return Err(format!(
                        "conv kernel {kh}x{kw} larger than padded input {h_eff}x{w_eff}"
                    ));
                }
                if stride == 0 {
                    return Err("conv stride must be positive".into());
                }
                Ok(Shape::new(
                    out_c,
                    (h_eff - kh) / stride + 1,
                    (w_eff - kw) / stride + 1,
                ))
            }
            LayerSpec::FullyConnected { out } => Ok(Shape::flat(out)),
            LayerSpec::MaxPool { k, stride } => {
                if k > input.h || k > input.w {
                    return Err(format!(
                        "pool window {k} larger than input {}x{}",
                        input.h, input.w
                    ));
                }
                if stride == 0 {
                    return Err("pool stride must be positive".into());
                }
                Ok(Shape::new(
                    input.c,
                    (input.h - k) / stride + 1,
                    (input.w - k) / stride + 1,
                ))
            }
            LayerSpec::ReLU
            | LayerSpec::Tanh
            | LayerSpec::Dropout { .. }
            | LayerSpec::LocalResponseNorm => Ok(input),
        }
    }

    /// Weight count given the input shape (Eq. 2): conv
    /// `kh·kw·X_C·Y_C`, FC `d_{i−1}·d_i`, 0 otherwise.
    pub fn weight_count(&self, input: Shape) -> usize {
        match *self {
            LayerSpec::Conv { out_c, kh, kw, .. } => kh * kw * input.c * out_c,
            LayerSpec::FullyConnected { out } => input.dim() * out,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_matches_eq2_with_padding() {
        // AlexNet conv1: 227x227x3, 11x11, stride 4, no pad -> 55x55x96.
        let conv1 = LayerSpec::Conv {
            out_c: 96,
            kh: 11,
            kw: 11,
            stride: 4,
            pad: 0,
        };
        assert_eq!(
            conv1.out_shape(Shape::new(3, 227, 227)).unwrap(),
            Shape::new(96, 55, 55)
        );
        // AlexNet conv2 (same-pad): 27x27x96 -> 27x27x256.
        let conv2 = LayerSpec::Conv {
            out_c: 256,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        assert_eq!(
            conv2.out_shape(Shape::new(96, 27, 27)).unwrap(),
            Shape::new(256, 27, 27)
        );
    }

    #[test]
    fn fc_flattens() {
        let fc = LayerSpec::FullyConnected { out: 4096 };
        assert_eq!(
            fc.out_shape(Shape::new(256, 6, 6)).unwrap(),
            Shape::flat(4096)
        );
        assert_eq!(fc.weight_count(Shape::new(256, 6, 6)), 9216 * 4096);
    }

    #[test]
    fn weight_counts() {
        let conv = LayerSpec::Conv {
            out_c: 96,
            kh: 11,
            kw: 11,
            stride: 4,
            pad: 0,
        };
        assert_eq!(conv.weight_count(Shape::new(3, 227, 227)), 11 * 11 * 3 * 96);
        assert_eq!(LayerSpec::ReLU.weight_count(Shape::flat(10)), 0);
    }

    #[test]
    fn shape_preserving_layers() {
        let s = Shape::new(64, 13, 13);
        for l in [
            LayerSpec::ReLU,
            LayerSpec::Tanh,
            LayerSpec::Dropout { rate: 0.5 },
            LayerSpec::LocalResponseNorm,
        ] {
            assert_eq!(l.out_shape(s).unwrap(), s);
            assert!(!l.is_weighted());
        }
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let conv = LayerSpec::Conv {
            out_c: 8,
            kh: 9,
            kw: 9,
            stride: 1,
            pad: 0,
        };
        assert!(conv.out_shape(Shape::new(3, 5, 5)).is_err());
    }

    #[test]
    fn zero_stride_is_rejected() {
        let conv = LayerSpec::Conv {
            out_c: 8,
            kh: 3,
            kw: 3,
            stride: 0,
            pad: 0,
        };
        assert!(conv.out_shape(Shape::new(3, 5, 5)).is_err());
        let pool = LayerSpec::MaxPool { k: 2, stride: 0 };
        assert!(pool.out_shape(Shape::new(3, 5, 5)).is_err());
    }
}
