//! Networks and the weighted-layer view the cost model consumes.

use serde::{Deserialize, Serialize};

use crate::layer::{LayerKind, LayerSpec};
use crate::shape::Shape;

/// A full network: an input shape plus an ordered list of layers with
/// all shapes inferred.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Human-readable name ("alexnet", …).
    pub name: String,
    /// Shape of one input sample.
    pub input: Shape,
    layers: Vec<(LayerSpec, Shape, Shape)>, // (spec, in, out)
}

/// One weighted layer in the form the paper's Eqs. 3–9 consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedLayer {
    /// Position among weighted layers (1-based, matching the paper's
    /// `i = 1..L`).
    pub index: usize,
    /// Descriptive name, e.g. `conv3` or `fc7`.
    pub name: String,
    /// Conv (with kernel extents) or fully connected.
    pub kind: LayerKind,
    /// Input activation shape (`X_C × X_H × X_W`).
    pub in_shape: Shape,
    /// Output activation shape (`Y_C × Y_H × Y_W`).
    pub out_shape: Shape,
    /// `|W_i|` — weight count.
    pub weights: usize,
}

impl WeightedLayer {
    /// `d_{i−1}` — input activation length per sample.
    pub fn d_in(&self) -> usize {
        self.in_shape.dim()
    }

    /// `d_i` — output activation length per sample.
    pub fn d_out(&self) -> usize {
        self.out_shape.dim()
    }

    /// The kernel extents used by the domain-parallel halo terms:
    /// `(kh, kw)` for conv; `(X_H, X_W)` for FC layers, where the paper
    /// notes "the halo exchange region will consist of all of the input
    /// activations".
    pub fn halo_kernel(&self) -> (usize, usize) {
        match self.kind {
            LayerKind::Conv { kh, kw } => (kh, kw),
            LayerKind::FullyConnected => (self.in_shape.h.max(1), self.in_shape.w.max(1)),
        }
    }

    /// Whether this layer is convolutional.
    pub fn is_conv(&self) -> bool {
        matches!(self.kind, LayerKind::Conv { .. })
    }

    /// FLOPs for the forward matmul on one sample: `2·|W_i|` per output
    /// spatial position for conv (each filter weight participates once
    /// per position), `2·|W_i|` for FC.
    pub fn forward_flops_per_sample(&self) -> f64 {
        match self.kind {
            LayerKind::Conv { .. } => {
                2.0 * self.weights as f64 * (self.out_shape.h * self.out_shape.w) as f64
            }
            LayerKind::FullyConnected => 2.0 * self.weights as f64,
        }
    }

    /// FLOPs for one training step on one sample: forward plus the two
    /// backward products (`∆W = ∆Y·Xᵀ`, `∆X = Wᵀ·∆Y`), i.e. 3× forward
    /// — the "3 matrix multiplications" of the paper's §1.
    pub fn train_flops_per_sample(&self) -> f64 {
        3.0 * self.forward_flops_per_sample()
    }
}

impl Network {
    /// All layers with their inferred input/output shapes.
    pub fn layers(&self) -> impl Iterator<Item = (&LayerSpec, Shape, Shape)> {
        self.layers.iter().map(|(s, i, o)| (s, *i, *o))
    }

    /// Number of layers (of any kind).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Shape of the network output.
    pub fn output(&self) -> Shape {
        self.layers.last().map(|&(_, _, o)| o).unwrap_or(self.input)
    }

    /// The weighted layers in order — `L` entries, the unit of the
    /// paper's per-layer sums.
    pub fn weighted_layers(&self) -> Vec<WeightedLayer> {
        let mut out = Vec::new();
        let mut conv_n = 0usize;
        let mut fc_n = 0usize;
        for &(ref spec, in_shape, out_shape) in &self.layers {
            match *spec {
                LayerSpec::Conv { kh, kw, .. } => {
                    conv_n += 1;
                    out.push(WeightedLayer {
                        index: out.len() + 1,
                        name: format!("conv{conv_n}"),
                        kind: LayerKind::Conv { kh, kw },
                        in_shape,
                        out_shape,
                        weights: spec.weight_count(in_shape),
                    });
                }
                LayerSpec::FullyConnected { .. } => {
                    fc_n += 1;
                    out.push(WeightedLayer {
                        index: out.len() + 1,
                        name: format!("fc{fc_n}"),
                        kind: LayerKind::FullyConnected,
                        in_shape,
                        out_shape,
                        weights: spec.weight_count(in_shape),
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Total parameter count `Σ|W_i|`.
    pub fn total_weights(&self) -> usize {
        self.weighted_layers().iter().map(|l| l.weights).sum()
    }

    /// Training FLOPs per sample across all weighted layers.
    pub fn train_flops_per_sample(&self) -> f64 {
        self.weighted_layers()
            .iter()
            .map(|l| l.train_flops_per_sample())
            .sum()
    }
}

/// Incremental network builder with shape inference.
///
/// ```
/// use dnn::{LayerSpec, NetworkBuilder, Shape};
/// let net = NetworkBuilder::new("tiny", Shape::new(3, 8, 8))
///     .layer(LayerSpec::Conv { out_c: 4, kh: 3, kw: 3, stride: 1, pad: 1 })
///     .layer(LayerSpec::ReLU)
///     .layer(LayerSpec::FullyConnected { out: 10 })
///     .build()
///     .unwrap();
/// assert_eq!(net.output(), Shape::flat(10));
/// ```
pub struct NetworkBuilder {
    name: String,
    input: Shape,
    layers: Vec<LayerSpec>,
}

impl NetworkBuilder {
    /// Starts a builder for a network with the given input shape.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        NetworkBuilder {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    #[must_use]
    pub fn layer(mut self, spec: LayerSpec) -> Self {
        self.layers.push(spec);
        self
    }

    /// Convenience: conv + ReLU.
    #[must_use]
    pub fn conv_relu(self, out_c: usize, k: usize, stride: usize, pad: usize) -> Self {
        self.layer(LayerSpec::Conv {
            out_c,
            kh: k,
            kw: k,
            stride,
            pad,
        })
        .layer(LayerSpec::ReLU)
    }

    /// Convenience: FC + ReLU.
    #[must_use]
    pub fn fc_relu(self, out: usize) -> Self {
        self.layer(LayerSpec::FullyConnected { out })
            .layer(LayerSpec::ReLU)
    }

    /// Runs shape inference and produces the network, or the first
    /// shape error annotated with its layer index.
    pub fn build(self) -> Result<Network, String> {
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut shape = self.input;
        for (idx, spec) in self.layers.into_iter().enumerate() {
            let out = spec
                .out_shape(shape)
                .map_err(|e| format!("layer {idx} ({spec:?}): {e}"))?;
            layers.push((spec, shape, out));
            shape = out;
        }
        Ok(Network {
            name: self.name,
            input: self.input,
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        NetworkBuilder::new("tiny", Shape::new(3, 8, 8))
            .conv_relu(4, 3, 1, 1)
            .layer(LayerSpec::MaxPool { k: 2, stride: 2 })
            .fc_relu(10)
            .build()
            .unwrap()
    }

    #[test]
    fn shape_inference_chains() {
        let net = tiny();
        assert_eq!(net.output(), Shape::flat(10));
        let shapes: Vec<Shape> = net.layers().map(|(_, _, o)| o).collect();
        assert_eq!(shapes[0], Shape::new(4, 8, 8));
        assert_eq!(shapes[2], Shape::new(4, 4, 4));
    }

    #[test]
    fn weighted_layers_are_numbered_and_named() {
        let net = tiny();
        let wl = net.weighted_layers();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].name, "conv1");
        assert_eq!(wl[0].index, 1);
        assert_eq!(wl[1].name, "fc1");
        assert_eq!(wl[1].index, 2);
    }

    #[test]
    fn weighted_layer_dims() {
        let net = tiny();
        let wl = net.weighted_layers();
        assert_eq!(wl[0].d_in(), 3 * 8 * 8);
        assert_eq!(wl[0].d_out(), 4 * 8 * 8);
        assert_eq!(wl[0].weights, 3 * 3 * 3 * 4);
        assert_eq!(wl[1].d_in(), 4 * 4 * 4);
        assert_eq!(wl[1].weights, 64 * 10);
    }

    #[test]
    fn fc_halo_kernel_covers_whole_input() {
        let net = tiny();
        let wl = net.weighted_layers();
        assert_eq!(wl[0].halo_kernel(), (3, 3));
        assert_eq!(wl[1].halo_kernel(), (4, 4), "FC halo = full spatial input");
    }

    #[test]
    fn flops_counts() {
        let net = tiny();
        let wl = net.weighted_layers();
        // conv: 2 * 108 weights * 64 positions.
        assert_eq!(wl[0].forward_flops_per_sample(), 2.0 * 108.0 * 64.0);
        assert_eq!(wl[1].forward_flops_per_sample(), 2.0 * 640.0);
        assert_eq!(
            net.train_flops_per_sample(),
            3.0 * (2.0 * 108.0 * 64.0 + 2.0 * 640.0)
        );
    }

    #[test]
    fn builder_reports_layer_errors() {
        let err = NetworkBuilder::new("bad", Shape::new(3, 4, 4))
            .layer(LayerSpec::Conv {
                out_c: 1,
                kh: 9,
                kw: 9,
                stride: 1,
                pad: 0,
            })
            .build()
            .unwrap_err();
        assert!(err.contains("layer 0"), "{err}");
    }

    #[test]
    fn empty_network_output_is_input() {
        let net = NetworkBuilder::new("id", Shape::flat(7)).build().unwrap();
        assert_eq!(net.output(), Shape::flat(7));
        assert!(net.weighted_layers().is_empty());
        assert_eq!(net.total_weights(), 0);
    }
}
