//! # dnn — network descriptions and shape algebra
//!
//! The paper's cost model consumes a network as a list of *weighted*
//! layers, each characterized by (its Eq. 2):
//!
//! * `d_{i−1} = X_H·X_W·X_C` — input activation length per sample,
//! * `d_i = Y_H·Y_W·Y_C` — output activation length per sample,
//! * `|W_i|` — weight count (`kh·kw·X_C·Y_C` for conv, `d_i·d_{i−1}`
//!   for fully connected), and
//! * the kernel extent `(kh, kw)` — which determines the halo volume
//!   for domain parallelism (with `kh = X_H`, `kw = X_W` for FC layers,
//!   making their halo the entire input, as the paper notes).
//!
//! This crate provides layer specs, forward shape inference, the
//! [`network::Network`] container with its derived
//! [`network::WeightedLayer`] view, and a model zoo: AlexNet (the
//! paper's fixed evaluation network, Table 1), VGG-16, a ResNet-18
//! style stack (whose 1×1 convolutions exercise the "no halo needed"
//! special case), MLPs, and an unrolled RNN (the paper observes its
//! analysis "naturally extends" to RNNs because they are FC-dominated).

pub mod layer;
pub mod network;
pub mod shape;
pub mod stats;
pub mod zoo;

pub use layer::{LayerKind, LayerSpec};
pub use network::{Network, NetworkBuilder, WeightedLayer};
pub use shape::Shape;
