//! Activation shapes.

use serde::{Deserialize, Serialize};

/// The shape of one sample's activation: channels × height × width.
/// Fully-connected activations are represented as `d × 1 × 1`, so every
/// layer has well-defined spatial extents (the paper's domain-parallel
/// formulas use `X_H`, `X_W`, `X_C` even for FC layers, where the halo
/// degenerates to the whole input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Channel count `X_C`.
    pub c: usize,
    /// Height `X_H`.
    pub h: usize,
    /// Width `X_W`.
    pub w: usize,
}

impl Shape {
    /// A spatial shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Shape { c, h, w }
    }

    /// A flat (fully-connected) shape of length `d`.
    pub fn flat(d: usize) -> Self {
        Shape { c: d, h: 1, w: 1 }
    }

    /// Total activation length `d = c·h·w` per sample.
    pub fn dim(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether this is a flat 1×1 shape.
    pub fn is_flat(&self) -> bool {
        self.h == 1 && self.w == 1
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_flat() {
            write!(f, "{}", self.c)
        } else {
            write!(f, "{}x{}x{}", self.c, self.h, self.w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_is_product() {
        assert_eq!(Shape::new(3, 227, 227).dim(), 3 * 227 * 227);
        assert_eq!(Shape::flat(4096).dim(), 4096);
    }

    #[test]
    fn flat_detection() {
        assert!(Shape::flat(10).is_flat());
        assert!(!Shape::new(3, 2, 1).is_flat());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::new(96, 55, 55).to_string(), "96x55x55");
        assert_eq!(Shape::flat(4096).to_string(), "4096");
    }
}
