//! # collectives — collective communication over `mpsim`
//!
//! The paper's cost analysis (its §2.2) assumes specific collective
//! algorithms, citing Thakur, Rabenseifner & Gropp (IJHPCA 2005):
//!
//! * **ring all-reduce** for gradient sums (`∆W`, `∆X`) — bandwidth
//!   `2·n·(P−1)/P`, and
//! * **Bruck all-gather** for activation assembly in the model-parallel
//!   dimension — latency `⌈log₂ P⌉·α`, bandwidth `n·(P−1)/P`.
//!
//! This crate implements those algorithms (plus recursive doubling,
//! Rabenseifner all-reduce, binomial broadcast/reduce, and the
//! non-blocking halo exchange of the paper's Fig. 3) so they can be
//! *executed* on the `mpsim` virtual machine, and provides the matching
//! closed-form [`cost::CostTerms`] so tests can assert that execution
//! time equals the formula.
//!
//! The default entry points [`allreduce`] and [`allgather`] use the
//! algorithms the paper assumes (ring and Bruck respectively).

// Index-based loops are the clearest way to write rank/block index
// arithmetic; the clippy suggestions (iterators, is_multiple_of) obscure
// the correspondence with the paper's formulas.
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]
pub mod alltoall;
pub mod binomial;
pub mod bruck;
pub mod chunks;
pub mod cost;
pub mod ft;
pub mod halo;
pub mod nonblocking;
pub mod op;
pub mod recursive;
pub mod ring;

pub use ft::{Deadline, FtConfig};
pub use nonblocking::{
    iallgather, iallgather_ft, iallreduce, iallreduce_ft, waitall, IallgatherHandle,
    IallreduceHandle,
};
pub use op::ReduceOp;

use mpsim::{Communicator, Result};

/// All-reduce with the paper's assumed algorithm (ring).
///
/// # Examples
///
/// ```
/// use collectives::{allreduce, ReduceOp};
/// use mpsim::{NetModel, World};
///
/// let out = World::run(4, NetModel::free(), |comm| {
///     let mut data = vec![comm.rank() as f64 + 1.0; 8];
///     allreduce(comm, &mut data, ReduceOp::Sum).unwrap();
///     data[0]
/// });
/// assert_eq!(out, vec![10.0; 4]); // 1+2+3+4 on every rank
/// ```
pub fn allreduce(comm: &Communicator, data: &mut [f64], op: ReduceOp) -> Result<()> {
    ring::allreduce_ring(comm, data, op)
}

/// All-gather with the paper's assumed algorithm (Bruck). `mine` is this
/// rank's block; the returned vector concatenates all ranks' blocks in
/// rank order. All ranks must pass equal-length blocks.
pub fn allgather(comm: &Communicator, mine: &[f64]) -> Result<Vec<f64>> {
    bruck::allgather_bruck(comm, mine)
}

/// Broadcast from `root` (binomial tree).
pub fn bcast(comm: &Communicator, data: &mut Vec<f64>, root: usize) -> Result<()> {
    binomial::bcast_binomial(comm, data, root)
}
