//! Non-blocking, chunk-pipelined ring collectives (the `MPI_Iallreduce`
//! / `MPI_Iallgather` analogues the paper's Fig. 8 overlap assumes).
//!
//! A handle ([`IallreduceHandle`], [`IallgatherHandle`]) is a paused
//! ring collective: the same data movement as
//! [`crate::ring::allreduce_ring`] / [`crate::ring::allgather_ring`],
//! but each ring step charges its α–β transfer to the rank's
//! **concurrent comm channel** ([`mpsim::Communicator::recv_channel`])
//! instead of the main timeline. The caller launches the operation,
//! keeps computing (optionally poking [`IallreduceHandle::progress`]
//! between kernels to drive chunk steps), and pays only the *exposed*
//! remainder when it finally [`IallreduceHandle::wait`]s.
//!
//! Two invariants tie the handles to their blocking twins:
//!
//! * **bit-identical values** — the chunk partition
//!   ([`crate::chunks::block_range`]), ring schedule, and reduction
//!   order are exactly those of the blocking ring, so the result is the
//!   same to the last bit; and
//! * **no slower than blocking** — launched-then-immediately-waited,
//!   the channel recursion `ready(k) = max(ready(k−1), peer_depart(k)) +
//!   t_k` is the blocking ring's clock recursion with `ready` in place
//!   of `now`, so the makespan is identical; any compute between launch
//!   and wait can only hide, never add, time.
//!
//! Chunks are forwarded with their channel-completion time as the
//! departure time ([`mpsim::Communicator::send_vec_at`]): a chunk the
//! NIC finished at `t` leaves at `t` even if the main timeline is still
//! deep in a matmul — that is what lets the pipeline run ahead of the
//! compute it hides behind.
//!
//! The `_ft` constructors bound every chunk receive by the
//! [`FtConfig`] deadline and cascade a group abort on any fault, like
//! the blocking collectives in [`crate::ft`].

use mpsim::{ChannelRecv, Communicator, Result, Tag};

use crate::chunks::block_range;
use crate::ft::FtConfig;
use crate::op::ReduceOp;

/// Shared per-handle progress state: ring position, channel times, and
/// the optional fault-tolerance policy.
struct Progress {
    comm: Communicator,
    /// Next ring step to issue, in `0..steps`.
    step: usize,
    /// Total ring steps (`2(P−1)` for all-reduce, `P−1` for all-gather).
    steps: usize,
    /// Departure time for the next forwarded chunk: launch time for the
    /// first step, then the channel-completion time of the last receive.
    next_depart: f64,
    /// Absolute virtual time at which the operation's channel work is
    /// (so far) complete.
    ready_at: f64,
    /// Transfer seconds charged to the channel by this operation.
    charged: f64,
    ft: Option<FtConfig>,
}

impl Progress {
    fn new(comm: &Communicator, steps: usize, ft: Option<FtConfig>) -> Self {
        let now = comm.now();
        Progress {
            comm: comm.clone(),
            step: 0,
            steps,
            next_depart: now,
            ready_at: now,
            charged: 0.0,
            ft,
        }
    }

    /// One chunk receive on the channel, deadline-bounded when an
    /// [`FtConfig`] is attached.
    fn recv_chunk(&self, prev: usize, tag: Tag) -> Result<ChannelRecv> {
        match &self.ft {
            Some(cfg) => {
                let t = cfg.deadline.resolve(&self.comm, prev);
                self.comm.recv_channel_deadline(prev, tag, Some(t))
            }
            None => self.comm.recv_channel(prev, tag),
        }
    }

    /// Folds a completed chunk receive into the pipeline times.
    fn absorb(&mut self, got: &ChannelRecv) {
        self.comm.trace_instant(
            "nb",
            "chunk_step",
            &[("step", self.step as f64), ("ready_at", got.ready_at)],
        );
        self.next_depart = got.ready_at;
        self.ready_at = got.ready_at;
        self.charged += got.transfer;
        self.step += 1;
    }

    fn done(&self) -> bool {
        self.step >= self.steps
    }

    /// On a fault error, cascades a group abort blaming the culprit
    /// (mirrors the blocking collectives' guard in [`crate::ft`]).
    fn guard<T>(&self, res: Result<T>) -> Result<T> {
        res.inspect_err(|e| {
            if self.ft.is_some() {
                if let Some(culprit) = crate::ft::blame(&self.comm, e) {
                    let _ = self.comm.send_abort(culprit);
                }
            }
        })
    }

    /// Blocks the main timeline on the channel completing and settles
    /// the overlap accounting.
    fn complete(&self) {
        self.comm.complete_channel(self.ready_at, self.charged);
    }
}

/// An in-flight non-blocking ring all-reduce (reduce-scatter followed
/// by all-gather, `2(P−1)` chunk steps).
pub struct IallreduceHandle {
    pr: Progress,
    data: Vec<f64>,
    op: ReduceOp,
    rs_tag: Tag,
    ag_tag: Tag,
}

/// Launches a non-blocking ring all-reduce of `data`. Every member of
/// the communicator must launch its non-blocking operations in the same
/// order (SPMD), like [`mpsim::Communicator::split`].
///
/// The launch itself charges no time; drive the pipeline with
/// [`IallreduceHandle::progress`] between compute calls (optional) and
/// collect the reduced vector with [`IallreduceHandle::wait`].
///
/// # Examples
///
/// ```
/// use collectives::nonblocking::iallreduce;
/// use collectives::ReduceOp;
/// use mpsim::{NetModel, World};
///
/// let out = World::run(4, NetModel::free(), |comm| {
///     let data = vec![comm.rank() as f64 + 1.0; 8];
///     let h = iallreduce(comm, data, ReduceOp::Sum).unwrap();
///     comm.advance_compute(1.0); // overlapped with the transfers
///     h.wait().unwrap()[0]
/// });
/// assert_eq!(out, vec![10.0; 4]);
/// ```
pub fn iallreduce(comm: &Communicator, data: Vec<f64>, op: ReduceOp) -> Result<IallreduceHandle> {
    let p = comm.size();
    if p > 1 {
        // A single-member communicator moves no bytes: recording a
        // launch would inflate the nb-allreduce count while contributing
        // nothing to the overlap fraction's denominator (the pc=1 grids'
        // "16 launches, 0.0 fraction" anomaly).
        comm.record_nb_allreduce();
    }
    let base = comm.alloc_nb_tags();
    let steps = if p > 1 { 2 * (p - 1) } else { 0 };
    comm.trace_instant(
        "nb",
        "iallreduce_launch",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    Ok(IallreduceHandle {
        pr: Progress::new(comm, steps, None),
        data,
        op,
        rs_tag: base,
        ag_tag: base + 1,
    })
}

/// [`iallreduce`] with deadline-bounded chunk receives and group abort
/// on faults, composing with the recovery protocol of [`crate::ft`].
pub fn iallreduce_ft(
    comm: &Communicator,
    data: Vec<f64>,
    op: ReduceOp,
    cfg: &FtConfig,
) -> Result<IallreduceHandle> {
    let mut h = iallreduce(comm, data, op)?;
    h.pr.ft = Some(*cfg);
    Ok(h)
}

impl IallreduceHandle {
    /// Issues one pending chunk step (send + channel receive). Returns
    /// `true` once every step has been issued. Calling this between
    /// compute kernels keeps per-handle memory bounded; skipping it is
    /// also fine — [`IallreduceHandle::wait`] drives the remainder with
    /// identical virtual timing, because channel steps never advance
    /// the main clock.
    pub fn progress(&mut self) -> Result<bool> {
        if self.pr.done() {
            return Ok(true);
        }
        let res = self.step_once();
        self.pr.guard(res)?;
        Ok(self.pr.done())
    }

    /// Whether every chunk step has been issued — [`progress`]
    /// (`IallreduceHandle::progress`) has nothing left to drive. The
    /// channel work may still finish in the rank's future; see
    /// [`IallreduceHandle::ready_at`]. Unlike [`test`]
    /// (`IallreduceHandle::test`) this never drives a step, so
    /// schedulers can use it to pick *which* handle to progress.
    pub fn issued(&self) -> bool {
        self.pr.done()
    }

    /// MPI_Test-like poll: drives one step and reports whether the
    /// operation has completed *and* its result is already available to
    /// the main timeline without blocking.
    pub fn test(&mut self) -> Result<bool> {
        let issued = self.progress()?;
        Ok(issued && self.pr.ready_at <= self.pr.comm.now())
    }

    /// Absolute virtual time at which the operation's channel work is
    /// complete (meaningful once all steps are issued).
    pub fn ready_at(&self) -> f64 {
        self.pr.ready_at
    }

    /// Drives any remaining steps, blocks the main timeline until the
    /// channel work is complete (exposed wait is communication time;
    /// the hidden part is credited to
    /// [`mpsim::RankStats::overlapped_secs`]), and returns the fully
    /// reduced vector.
    pub fn wait(mut self) -> Result<Vec<f64>> {
        while !self.pr.done() {
            let res = self.step_once();
            self.pr.guard(res)?;
        }
        self.pr.complete();
        Ok(self.data)
    }

    fn step_once(&mut self) -> Result<()> {
        let p = self.pr.comm.size();
        let r = self.pr.comm.rank();
        let n = self.data.len();
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        if self.pr.step < p - 1 {
            // Reduce-scatter phase: same schedule as the blocking ring.
            let s = self.pr.step;
            let send_idx = (r + p - s) % p;
            let recv_idx = (r + p - s - 1) % p;
            let block = self.data[block_range(n, p, send_idx)].to_vec();
            self.pr
                .comm
                .send_vec_at(next, self.rs_tag, block, self.pr.next_depart)?;
            let got = self.pr.recv_chunk(prev, self.rs_tag)?;
            self.op
                .apply(&mut self.data[block_range(n, p, recv_idx)], &got.data);
            self.pr.absorb(&got);
        } else {
            // All-gather phase.
            let s = self.pr.step - (p - 1);
            let send_idx = (r + 1 + p - s) % p;
            let recv_idx = (r + p - s) % p;
            let block = self.data[block_range(n, p, send_idx)].to_vec();
            self.pr
                .comm
                .send_vec_at(next, self.ag_tag, block, self.pr.next_depart)?;
            let got = self.pr.recv_chunk(prev, self.ag_tag)?;
            self.data[block_range(n, p, recv_idx)].copy_from_slice(&got.data);
            self.pr.absorb(&got);
        }
        Ok(())
    }
}

/// An in-flight non-blocking ring all-gather of equal-size blocks
/// (`P−1` chunk steps).
pub struct IallgatherHandle {
    pr: Progress,
    out: Vec<f64>,
    m: usize,
    tag: Tag,
}

/// Launches a non-blocking ring all-gather of this rank's block `mine`;
/// [`IallgatherHandle::wait`] returns all ranks' blocks concatenated in
/// rank order, bit-identical to [`crate::ring::allgather_ring`]. SPMD
/// launch order required, like [`iallreduce`].
pub fn iallgather(comm: &Communicator, mine: &[f64]) -> Result<IallgatherHandle> {
    let p = comm.size();
    if p > 1 {
        comm.record_nb_allgather();
    }
    let base = comm.alloc_nb_tags();
    let r = comm.rank();
    let m = mine.len();
    let mut out = vec![0.0; m * p];
    out[r * m..(r + 1) * m].copy_from_slice(mine);
    let steps = p.saturating_sub(1);
    comm.trace_instant(
        "nb",
        "iallgather_launch",
        &[("p", p as f64), ("words", (m * p) as f64)],
    );
    Ok(IallgatherHandle {
        pr: Progress::new(comm, steps, None),
        out,
        m,
        tag: base,
    })
}

/// [`iallgather`] with deadline-bounded chunk receives and group abort
/// on faults.
pub fn iallgather_ft(
    comm: &Communicator,
    mine: &[f64],
    cfg: &FtConfig,
) -> Result<IallgatherHandle> {
    let mut h = iallgather(comm, mine)?;
    h.pr.ft = Some(*cfg);
    Ok(h)
}

impl IallgatherHandle {
    /// Issues one pending chunk step; `true` once all steps are issued.
    pub fn progress(&mut self) -> Result<bool> {
        if self.pr.done() {
            return Ok(true);
        }
        let res = self.step_once();
        self.pr.guard(res)?;
        Ok(self.pr.done())
    }

    /// MPI_Test-like poll; see [`IallreduceHandle::test`].
    pub fn test(&mut self) -> Result<bool> {
        let issued = self.progress()?;
        Ok(issued && self.pr.ready_at <= self.pr.comm.now())
    }

    /// Drives any remaining steps, settles the overlap accounting, and
    /// returns the gathered vector.
    pub fn wait(mut self) -> Result<Vec<f64>> {
        while !self.pr.done() {
            let res = self.step_once();
            self.pr.guard(res)?;
        }
        self.pr.complete();
        Ok(self.out)
    }

    fn step_once(&mut self) -> Result<()> {
        let p = self.pr.comm.size();
        let r = self.pr.comm.rank();
        let m = self.m;
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        let s = self.pr.step;
        let send_idx = (r + p - s) % p;
        let recv_idx = (r + p - s - 1) % p;
        let block = self.out[send_idx * m..(send_idx + 1) * m].to_vec();
        self.pr
            .comm
            .send_vec_at(next, self.tag, block, self.pr.next_depart)?;
        let got = self.pr.recv_chunk(prev, self.tag)?;
        self.out[recv_idx * m..(recv_idx + 1) * m].copy_from_slice(&got.data);
        self.pr.absorb(&got);
        Ok(())
    }
}

/// An in-flight non-blocking ring all-gather of *variable-length*
/// per-rank blocks, the non-blocking twin of
/// [`crate::ring::allgatherv_ring`] (`P−1` chunk steps).
///
/// Beyond the usual launch/wait pair it supports *pipelined
/// consumption* via [`IallgathervHandle::recv_next`]: each call
/// delivers the next block in ring-arrival order
/// ([`crate::chunks::ring_arrival_order`]) and settles that chunk's
/// overlap accounting immediately, so compute done on a block between
/// calls hides the transfer of the blocks still in flight.
pub struct IallgathervHandle {
    pr: Progress,
    out: Vec<Vec<f64>>,
    tag: Tag,
    /// Blocks handed out via `recv_next` (the rank's own block counts).
    delivered: usize,
}

/// Launches a non-blocking ring all-gather of this rank's
/// variable-length block `mine`. SPMD launch order required, like
/// [`iallreduce`].
pub fn iallgatherv(comm: &Communicator, mine: &[f64]) -> Result<IallgathervHandle> {
    let p = comm.size();
    if p > 1 {
        comm.record_nb_allgather();
    }
    let base = comm.alloc_nb_tags();
    let r = comm.rank();
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[r] = mine.to_vec();
    let steps = p.saturating_sub(1);
    comm.trace_instant(
        "nb",
        "iallgatherv_launch",
        &[("p", p as f64), ("words", mine.len() as f64)],
    );
    Ok(IallgathervHandle {
        pr: Progress::new(comm, steps, None),
        out,
        tag: base,
        delivered: 0,
    })
}

/// [`iallgatherv`] with deadline-bounded chunk receives and group abort
/// on faults.
pub fn iallgatherv_ft(
    comm: &Communicator,
    mine: &[f64],
    cfg: &FtConfig,
) -> Result<IallgathervHandle> {
    let mut h = iallgatherv(comm, mine)?;
    h.pr.ft = Some(*cfg);
    Ok(h)
}

impl IallgathervHandle {
    /// Issues one pending chunk step; `true` once all steps are issued.
    /// Must not be mixed with [`IallgathervHandle::recv_next`].
    pub fn progress(&mut self) -> Result<bool> {
        if self.pr.done() {
            return Ok(true);
        }
        let res = self.step_once();
        self.pr.guard(res)?;
        Ok(self.pr.done())
    }

    /// Delivers the next block in ring-arrival order: the rank's own
    /// block first (free), then one ring step per call. Each delivered
    /// chunk's channel accounting is settled *immediately* — the caller
    /// pays the exposed remainder of that chunk now and any compute it
    /// does on the block hides the chunks still in flight. Returns
    /// `None` once all `P` blocks have been delivered.
    pub fn recv_next(&mut self) -> Result<Option<(usize, Vec<f64>)>> {
        let p = self.pr.comm.size();
        let r = self.pr.comm.rank();
        if self.delivered >= p {
            return Ok(None);
        }
        if self.delivered == 0 {
            self.delivered = 1;
            return Ok(Some((r, self.out[r].clone())));
        }
        let s = self.pr.step;
        let recv_idx = (r + p - s - 1) % p;
        let res = self.step_once();
        let transfer = self.pr.guard(res)?;
        // Per-chunk settle: this chunk leaves `charged` so the final
        // wait (if any) only accounts for chunks not consumed here.
        self.pr.comm.complete_channel(self.pr.ready_at, transfer);
        self.pr.charged -= transfer;
        self.delivered += 1;
        Ok(Some((recv_idx, self.out[recv_idx].clone())))
    }

    /// Drives any remaining steps, settles the (not yet settled) overlap
    /// accounting, and returns the per-rank blocks indexed by rank.
    pub fn wait(mut self) -> Result<Vec<Vec<f64>>> {
        while !self.pr.done() {
            let res = self.step_once();
            self.pr.guard(res)?;
        }
        self.pr.complete();
        Ok(self.out)
    }

    /// One ring step (send + channel receive); returns the chunk's
    /// transfer seconds so `recv_next` can settle it individually.
    fn step_once(&mut self) -> Result<f64> {
        let p = self.pr.comm.size();
        let r = self.pr.comm.rank();
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        let s = self.pr.step;
        let send_idx = (r + p - s) % p;
        let recv_idx = (r + p - s - 1) % p;
        let block = self.out[send_idx].clone();
        self.pr
            .comm
            .send_vec_at(next, self.tag, block, self.pr.next_depart)?;
        let got = self.pr.recv_chunk(prev, self.tag)?;
        let transfer = got.transfer;
        self.pr.absorb(&got);
        self.out[recv_idx] = got.data;
        Ok(transfer)
    }
}

/// Waits on a batch of all-reduce handles in order, returning their
/// reduced vectors. Ordering does not change the virtual makespan:
/// channel work is already serialized per rank, and each wait only
/// clamps the main clock forward.
pub fn waitall(handles: Vec<IallreduceHandle>) -> Result<Vec<Vec<f64>>> {
    handles.into_iter().map(|h| h.wait()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{allgather_ring, allreduce_ring};
    use mpsim::{Error, FaultPlan, NetModel, World};
    use proptest::prelude::*;

    fn contribution(rank: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((rank + 1) * (i + 3)) as f64 * 0.37)
            .collect()
    }

    #[test]
    fn values_match_blocking_ring_bit_for_bit() {
        for p in [1, 2, 3, 4, 5, 8] {
            for n in [1, 7, 24, 40] {
                let out = World::run(p, NetModel::free(), |comm| {
                    let mut blocking = contribution(comm.rank(), n);
                    allreduce_ring(comm, &mut blocking, ReduceOp::Sum).unwrap();
                    let h = iallreduce(comm, contribution(comm.rank(), n), ReduceOp::Sum).unwrap();
                    (blocking, h.wait().unwrap())
                });
                for (r, (b, nb)) in out.iter().enumerate() {
                    assert_eq!(b, nb, "p={p} n={n} rank={r}");
                }
            }
        }
    }

    #[test]
    fn immediate_wait_costs_exactly_the_blocking_ring_time() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        for (p, n) in [(4, 32), (8, 1000), (5, 13)] {
            let blocking = World::run(p, model, |comm| {
                let mut data = contribution(comm.rank(), n);
                allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
                comm.now()
            });
            let nonblocking = World::run(p, model, |comm| {
                let h = iallreduce(comm, contribution(comm.rank(), n), ReduceOp::Sum).unwrap();
                h.wait().unwrap();
                comm.now()
            });
            for r in 0..p {
                assert!(
                    (blocking[r] - nonblocking[r]).abs() < 1e-15,
                    "p={p} n={n} rank={r}: {} vs {}",
                    blocking[r],
                    nonblocking[r]
                );
            }
        }
    }

    #[test]
    fn compute_between_launch_and_wait_hides_the_transfer() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: 1e9,
        };
        let p = 4;
        let n = 4000;
        let ring_time = 2.0 * (p as f64 - 1.0) * model.alpha
            + 2.0 * ((p as f64 - 1.0) / p as f64) * n as f64 * model.beta;
        let compute = 10.0 * ring_time;
        let (out, stats) = World::run_with_stats(p, model, |comm| {
            let h = iallreduce(comm, contribution(comm.rank(), n), ReduceOp::Sum).unwrap();
            comm.advance_compute(compute);
            h.wait().unwrap();
            comm.clock()
        });
        for (r, c) in out.iter().enumerate() {
            assert!(
                (c.now - compute).abs() < 1e-12,
                "rank {r}: transfer fully hidden, now={} compute={compute}",
                c.now
            );
            assert_eq!(c.comm, 0.0, "rank {r}: no exposed communication");
        }
        assert!(stats.total_overlapped_secs() > 0.0);
        assert_eq!(stats.total_comm_wait_secs(), 0.0);
        let (_, _, nb_ar, _) = stats.total_collective_calls();
        assert_eq!(nb_ar, p as u64);
    }

    #[test]
    fn progress_between_kernels_does_not_change_virtual_timing() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 6;
        let n = 60;
        let lazy = World::run(p, model, |comm| {
            let h = iallreduce(comm, contribution(comm.rank(), n), ReduceOp::Sum).unwrap();
            comm.advance_compute(5e-3);
            (h.wait().unwrap(), comm.now())
        });
        let eager = World::run(p, model, |comm| {
            let mut h = iallreduce(comm, contribution(comm.rank(), n), ReduceOp::Sum).unwrap();
            comm.advance_compute(5e-3);
            while !h.progress().unwrap() {}
            (h.wait().unwrap(), comm.now())
        });
        for r in 0..p {
            assert_eq!(lazy[r].0, eager[r].0, "rank {r} values");
            assert!((lazy[r].1 - eager[r].1).abs() < 1e-15, "rank {r} time");
        }
    }

    #[test]
    fn allgather_matches_blocking_in_values_and_immediate_time() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        for (p, m) in [(1, 4), (5, 3), (6, 100)] {
            let out = World::run(p, model, |comm| {
                let mine: Vec<f64> = (0..m).map(|i| (comm.rank() * 10 + i) as f64).collect();
                let blocking = allgather_ring(comm, &mine).unwrap();
                let t_blocking = comm.now();
                let h = iallgather(comm, &mine).unwrap();
                let gathered = h.wait().unwrap();
                let t_nb = comm.now() - t_blocking;
                (blocking, gathered, t_blocking, t_nb)
            });
            for (r, (b, nb, tb, tnb)) in out.iter().enumerate() {
                assert_eq!(b, nb, "p={p} m={m} rank={r}");
                assert!((tb - tnb).abs() < 1e-15, "p={p} rank={r}: {tb} vs {tnb}");
            }
        }
    }

    #[test]
    fn iallgatherv_matches_blocking_in_values_and_never_slower() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        for p in [1, 3, 4, 6] {
            // Uneven blocks: rank r contributes r+2 elements. Separate
            // worlds, because uneven blocks make ranks finish the
            // blocking gather at different times, which would skew a
            // back-to-back launch.
            let blocking = World::run(p, model, |comm| {
                let mine = vec![comm.rank() as f64 + 0.5; comm.rank() + 2];
                (
                    crate::ring::allgatherv_ring(comm, &mine).unwrap(),
                    comm.now(),
                )
            });
            let nonblocking = World::run(p, model, |comm| {
                let mine = vec![comm.rank() as f64 + 0.5; comm.rank() + 2];
                let h = iallgatherv(comm, &mine).unwrap();
                (h.wait().unwrap(), comm.now())
            });
            for r in 0..p {
                assert_eq!(blocking[r].0, nonblocking[r].0, "p={p} rank={r}");
                assert!(
                    (blocking[r].1 - nonblocking[r].1).abs() < 1e-15,
                    "p={p} rank={r}: {} vs blocking {}",
                    nonblocking[r].1,
                    blocking[r].1
                );
            }
        }
    }

    #[test]
    fn recv_next_delivers_ring_arrival_order_and_hides_behind_compute() {
        let model = NetModel {
            alpha: 1e-4,
            beta: 1e-6,
            flops: 1e9,
        };
        let p = 5;
        let m = 2000;
        let (out, stats) = World::run_with_stats(p, model, |comm| {
            let mine = vec![comm.rank() as f64 + 1.0; m];
            let reference = crate::ring::allgatherv_ring(comm, &mine).unwrap();
            let mut h = iallgatherv(comm, &mine).unwrap();
            let mut order = Vec::new();
            let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); p];
            while let Some((idx, block)) = h.recv_next().unwrap() {
                order.push(idx);
                blocks[idx] = block;
                // Enough compute per consumed block to hide the next
                // chunk's transfer.
                comm.advance_compute(10.0 * m as f64 * model.beta);
            }
            (reference, blocks, order)
        });
        for (r, (reference, blocks, order)) in out.iter().enumerate() {
            assert_eq!(order, &crate::chunks::ring_arrival_order(p, r), "rank {r}");
            assert_eq!(reference, blocks, "rank {r} values");
        }
        assert!(
            stats.total_overlapped_secs() > 0.0,
            "chunks hid behind compute"
        );
        assert!(
            stats.total_comm_wait_secs() < 2.0 * p as f64 * model.alpha * p as f64,
            "only pipeline-fill latency stays exposed, not bandwidth"
        );
    }

    #[test]
    fn single_member_comms_record_no_nb_launches() {
        let (_, stats) = World::run_with_stats(1, NetModel::free(), |comm| {
            let h = iallreduce(comm, vec![2.0; 8], ReduceOp::Sum).unwrap();
            assert_eq!(h.wait().unwrap(), vec![2.0; 8]);
            let g = iallgatherv(comm, &[1.0, 2.0]).unwrap();
            assert_eq!(g.wait().unwrap(), vec![vec![1.0, 2.0]]);
            let g2 = iallgather(comm, &[3.0]).unwrap();
            assert_eq!(g2.wait().unwrap(), vec![3.0]);
        });
        let (_, _, nb_ar, nb_ag) = stats.total_collective_calls();
        assert_eq!(nb_ar, 0, "p=1 all-reduce is degenerate: no launch recorded");
        assert_eq!(nb_ag, 0, "p=1 all-gathers are degenerate too");
    }

    #[test]
    fn outstanding_handles_do_not_cross_match() {
        let out = World::run(4, NetModel::free(), |comm| {
            let a = iallreduce(comm, vec![1.0; 8], ReduceOp::Sum).unwrap();
            let b = iallreduce(comm, vec![100.0; 8], ReduceOp::Sum).unwrap();
            // Reverse wait order: tags keep the two pipelines apart.
            let vb = b.wait().unwrap();
            let va = a.wait().unwrap();
            (va, vb)
        });
        for (va, vb) in &out {
            assert_eq!(va, &vec![4.0; 8]);
            assert_eq!(vb, &vec![400.0; 8]);
        }
    }

    #[test]
    fn two_handles_serialize_on_the_channel() {
        // One NIC: two outstanding all-reduces take the sum of their
        // transfer times when drained back-to-back with no compute.
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 4;
        let n = 4 * 50;
        let one = 2.0 * (p as f64 - 1.0) * model.alpha
            + 2.0 * ((p as f64 - 1.0) / p as f64) * n as f64 * model.beta;
        let out = World::run(p, model, |comm| {
            let a = iallreduce(comm, vec![1.0; n], ReduceOp::Sum).unwrap();
            let b = iallreduce(comm, vec![2.0; n], ReduceOp::Sum).unwrap();
            let _ = waitall(vec![a, b]).unwrap();
            comm.now()
        });
        for (r, &t) in out.iter().enumerate() {
            assert!(
                (t - 2.0 * one).abs() < 1e-12,
                "rank {r}: {t} vs {}",
                2.0 * one
            );
        }
    }

    #[test]
    fn ft_variant_is_identical_when_fault_free() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 6;
        let n = 30;
        let plain = World::run(p, model, |comm| {
            let h = iallreduce(comm, contribution(comm.rank(), n), ReduceOp::Sum).unwrap();
            comm.advance_compute(1e-3);
            (h.wait().unwrap(), comm.now())
        });
        let ft = World::run(p, model, |comm| {
            let cfg = FtConfig::fixed(1e6);
            let h = iallreduce_ft(comm, contribution(comm.rank(), n), ReduceOp::Sum, &cfg).unwrap();
            comm.advance_compute(1e-3);
            (h.wait().unwrap(), comm.now())
        });
        for r in 0..p {
            assert_eq!(plain[r].0, ft[r].0, "rank {r} values");
            assert!((plain[r].1 - ft[r].1).abs() < 1e-15, "rank {r} time");
        }
    }

    #[test]
    fn ft_variant_aborts_the_group_on_a_dropped_chunk() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.001,
            flops: f64::INFINITY,
        };
        // Drop the first chunk on the 1 → 2 link.
        let plan = FaultPlan::new(7).drop_nth(1, 2, 0);
        let (out, stats) = World::run_with_faults(4, model, plan, |comm| {
            let cfg = FtConfig::fixed(10.0);
            let h = iallreduce_ft(comm, vec![1.0; 16], ReduceOp::Sum, &cfg)?;
            h.wait()
        });
        for (r, res) in out.iter().enumerate() {
            let e = res.as_ref().expect_err("every rank observes the failure");
            assert!(
                matches!(
                    e,
                    Error::Timeout { .. } | Error::Aborted { .. } | Error::RankFailed { .. }
                ),
                "rank {r}: unexpected error {e:?}"
            );
        }
        assert_eq!(stats.total_dropped(), 1);
        assert!(stats.total_aborts() >= 1, "abort was cascaded");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn iallreduce_is_bit_identical_to_blocking_for_arbitrary_shapes(
            p in 1usize..9,
            n in 1usize..120,
            op_idx in 0usize..3,
            compute_ns in 0u64..1_000_000,
        ) {
            let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_idx];
            let model = NetModel { alpha: 1e-4, beta: 1e-7, flops: f64::INFINITY };
            let out = World::run(p, model, |comm| {
                let mut blocking = contribution(comm.rank(), n);
                allreduce_ring(comm, &mut blocking, op).unwrap();
                let t0 = comm.now();
                let h = iallreduce(comm, contribution(comm.rank(), n), op).unwrap();
                comm.advance_compute(compute_ns as f64 * 1e-9);
                let nb = h.wait().unwrap();
                (blocking, nb, comm.now() - t0)
            });
            for (r, (b, nb, elapsed)) in out.iter().enumerate() {
                prop_assert_eq!(b, nb, "p={} n={} rank={}", p, n, r);
                // Overlap never increases the per-rank makespan beyond
                // serialized compute + blocking-collective time.
                let serialized = compute_ns as f64 * 1e-9
                    + if p > 1 {
                        2.0 * (p as f64 - 1.0) * model.alpha
                            + 2.0 * ((p as f64 - 1.0) / p as f64) * n as f64 * model.beta
                    } else {
                        0.0
                    };
                prop_assert!(
                    *elapsed <= serialized + 1e-12,
                    "rank {} took {} > serialized {}",
                    r, elapsed, serialized
                );
            }
        }

        #[test]
        fn iallgather_is_bit_identical_to_blocking_for_arbitrary_shapes(
            p in 1usize..9,
            m in 1usize..40,
        ) {
            let out = World::run(p, NetModel::free(), |comm| {
                let mine: Vec<f64> =
                    (0..m).map(|i| ((comm.rank() + 2) * (i + 1)) as f64 * 0.81).collect();
                let blocking = allgather_ring(comm, &mine).unwrap();
                let h = iallgather(comm, &mine).unwrap();
                (blocking, h.wait().unwrap())
            });
            for (r, (b, nb)) in out.iter().enumerate() {
                prop_assert_eq!(b, nb, "p={} m={} rank={}", p, m, r);
            }
        }
    }
}
