//! Bruck all-gather — the algorithm the paper assumes for assembling
//! activations across the model-parallel dimension (Eqs. 3, 8, 9).
//!
//! Cost with `P` ranks and per-rank blocks of `m` words
//! (`n = P·m` total): `⌈log₂ P⌉·α + ((P−1)/P)·n·β`, valid for any `P`
//! (not just powers of two) — which is why latency-sensitive analyses
//! prefer it over the ring's `(P−1)·α`.

use mpsim::{Communicator, Result, Tag};

const BRUCK_TAG: Tag = (1 << 48) + 32;

/// Bruck all-gather of equal-length per-rank blocks. Returns all blocks
/// concatenated in rank order. All ranks must pass the same `mine.len()`.
pub fn allgather_bruck(comm: &Communicator, mine: &[f64]) -> Result<Vec<f64>> {
    comm.record_allgather();
    let p = comm.size();
    let r = comm.rank();
    let m = mine.len();
    if p == 1 {
        return Ok(mine.to_vec());
    }
    let _span = comm.trace_span(
        "collective",
        "allgather_bruck",
        &[("p", p as f64), ("words", (p * m) as f64)],
    );
    // `buf` holds blocks r, r+1, ..., r+have-1 (mod p), concatenated.
    let mut buf = Vec::with_capacity(p * m);
    buf.extend_from_slice(mine);
    let mut have = 1usize;
    while have < p {
        let count = have.min(p - have);
        let dst = (r + p - have) % p; // send toward lower ranks
        let src = (r + have) % p; // receive from higher ranks
        comm.send(dst, BRUCK_TAG + have as u64, &buf[..count * m])?;
        let incoming = comm.recv(src, BRUCK_TAG + have as u64)?;
        debug_assert_eq!(incoming.len(), count * m);
        buf.extend_from_slice(&incoming);
        have += count;
    }
    debug_assert_eq!(buf.len(), p * m);
    // Un-rotate: buf block b is global block (r + b) mod p.
    let mut out = vec![0.0; p * m];
    for b in 0..p {
        let g = (r + b) % p;
        out[g * m..(g + 1) * m].copy_from_slice(&buf[b * m..(b + 1) * m]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::allgather_ring;
    use mpsim::{NetModel, World};
    use proptest::prelude::*;

    fn rank_block(rank: usize, m: usize) -> Vec<f64> {
        (0..m).map(|i| (rank * 100 + i) as f64).collect()
    }

    #[test]
    fn gathers_in_rank_order_various_p() {
        for p in [1, 2, 3, 4, 5, 7, 8, 12] {
            let m = 4;
            let out = World::run(p, NetModel::free(), |comm| {
                allgather_bruck(comm, &rank_block(comm.rank(), m)).unwrap()
            });
            let expected: Vec<f64> = (0..p).flat_map(|r| rank_block(r, m)).collect();
            for r in 0..p {
                assert_eq!(out[r], expected, "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn time_matches_bruck_formula_power_of_two() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let m = 50;
        let out = World::run(p, model, |comm| {
            allgather_bruck(comm, &vec![1.0; m]).unwrap();
            comm.now()
        });
        let n_total = (p * m) as f64;
        let log = (p as f64).log2().ceil();
        let expect = log * model.alpha + ((p as f64 - 1.0) / p as f64) * n_total * model.beta;
        for &t in &out {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }

    #[test]
    fn time_matches_bruck_formula_non_power_of_two() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 6; // rounds: have = 1,2,4 -> counts 1,2,2 => 3 = ceil(log2 6)
        let m = 60;
        let out = World::run(p, model, |comm| {
            allgather_bruck(comm, &vec![1.0; m]).unwrap();
            comm.now()
        });
        let log = (p as f64).log2().ceil();
        let words = (p - 1) as f64 * m as f64; // (P-1)/P of total
        let expect = log * model.alpha + words * model.beta;
        for &t in &out {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }

    #[test]
    fn bruck_has_lower_latency_than_ring() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let p = 16;
        let bruck = World::run(p, model, |comm| {
            allgather_bruck(comm, &[1.0]).unwrap();
            comm.now()
        });
        let ring = World::run(p, model, |comm| {
            allgather_ring(comm, &[1.0]).unwrap();
            comm.now()
        });
        assert!((bruck[0] - 4.0).abs() < 1e-12, "log2(16) rounds");
        assert!((ring[0] - 15.0).abs() < 1e-12, "P-1 rounds");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn agrees_with_ring_allgather(p in 1usize..10, m in 1usize..20) {
            let a = World::run(p, NetModel::free(), move |comm| {
                allgather_bruck(comm, &rank_block(comm.rank(), m)).unwrap()
            });
            let b = World::run(p, NetModel::free(), move |comm| {
                allgather_ring(comm, &rank_block(comm.rank(), m)).unwrap()
            });
            prop_assert_eq!(a, b);
        }
    }
}
