//! Ring collectives: all-gather, reduce-scatter, and the ring all-reduce
//! (reduce-scatter + all-gather) the paper's Eq. 4 assumes.
//!
//! Cost with `P` ranks and `n` words (n divisible by `P`):
//!
//! * reduce-scatter: `(P−1)·α + ((P−1)/P)·n·β`
//! * all-gather:     `(P−1)·α + ((P−1)/P)·n·β`
//! * all-reduce:     `2(P−1)·α + 2((P−1)/P)·n·β`

use mpsim::{Communicator, Result, Tag};

use crate::chunks::block_range;
use crate::op::ReduceOp;

const RS_TAG: Tag = (1 << 48) + 16;
const AG_TAG: Tag = (1 << 48) + 17;

/// Ring reduce-scatter: after the call, this rank's block
/// `block_range(n, P, (rank+1) % P)` holds the fully reduced values;
/// other positions of `data` are garbage (partially reduced).
/// Returns the index of the block this rank owns.
pub fn reduce_scatter_ring(comm: &Communicator, data: &mut [f64], op: ReduceOp) -> Result<usize> {
    let p = comm.size();
    let r = comm.rank();
    if p == 1 {
        return Ok(0);
    }
    let _span = comm.trace_span(
        "collective",
        "reduce_scatter_ring",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    let n = data.len();
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    for step in 0..p - 1 {
        let send_idx = (r + p - step) % p;
        let recv_idx = (r + p - step - 1) % p;
        let send_block = data[block_range(n, p, send_idx)].to_vec();
        comm.send_vec(next, RS_TAG, send_block)?;
        let incoming = comm.recv(prev, RS_TAG)?;
        op.apply(&mut data[block_range(n, p, recv_idx)], &incoming);
    }
    Ok((r + 1) % p)
}

/// Ring all-gather of per-rank blocks already placed in `data`: rank `r`
/// contributes the block `block_range(n, P, owned)` where
/// `owned = (r+1) % P` (the reduce-scatter ownership convention). After
/// the call every rank holds all blocks.
fn allgather_ring_inplace(comm: &Communicator, data: &mut [f64]) -> Result<()> {
    let p = comm.size();
    let r = comm.rank();
    if p == 1 {
        return Ok(());
    }
    let _span = comm.trace_span(
        "collective",
        "allgather_ring",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    let n = data.len();
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    for step in 0..p - 1 {
        let send_idx = (r + 1 + p - step) % p;
        let recv_idx = (r + p - step) % p;
        let send_block = data[block_range(n, p, send_idx)].to_vec();
        comm.send_vec(next, AG_TAG, send_block)?;
        let incoming = comm.recv(prev, AG_TAG)?;
        data[block_range(n, p, recv_idx)].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Ring all-reduce (reduce-scatter then all-gather). This is the
/// algorithm behind the `2(α⌈log P⌉ + β·(P−1)/P·|W|)` gradient-sum terms
/// of the paper's Eqs. 4, 7, 8 and 9 (the paper substitutes `⌈log P⌉`
/// for the ring's `P−1` latency factor; see `cost::paper_allreduce`).
pub fn allreduce_ring(comm: &Communicator, data: &mut [f64], op: ReduceOp) -> Result<()> {
    comm.record_allreduce();
    if comm.size() == 1 {
        return Ok(());
    }
    let _span = comm.trace_span(
        "collective",
        "allreduce_ring",
        &[("p", comm.size() as f64), ("words", data.len() as f64)],
    );
    reduce_scatter_ring(comm, data, op)?;
    allgather_ring_inplace(comm, data)
}

/// Ring all-gather of equal-size per-rank blocks (`mine` from each rank,
/// concatenated in rank order in the result).
pub fn allgather_ring(comm: &Communicator, mine: &[f64]) -> Result<Vec<f64>> {
    comm.record_allgather();
    let p = comm.size();
    let r = comm.rank();
    let m = mine.len();
    let mut out = vec![0.0; m * p];
    out[r * m..(r + 1) * m].copy_from_slice(mine);
    if p == 1 {
        return Ok(out);
    }
    let _span = comm.trace_span(
        "collective",
        "allgather_ring",
        &[("p", p as f64), ("words", (m * p) as f64)],
    );
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    for step in 0..p - 1 {
        let send_idx = (r + p - step) % p;
        let recv_idx = (r + p - step - 1) % p;
        let block = out[send_idx * m..(send_idx + 1) * m].to_vec();
        comm.send_vec(next, AG_TAG, block)?;
        let incoming = comm.recv(prev, AG_TAG)?;
        out[recv_idx * m..(recv_idx + 1) * m].copy_from_slice(&incoming);
    }
    Ok(out)
}

/// Ring all-gather of *variable-length* per-rank blocks: returns one
/// vector per rank, indexed by rank. Same cost structure as
/// [`allgather_ring`], with the bandwidth term determined by the total
/// length.
pub fn allgatherv_ring(comm: &Communicator, mine: &[f64]) -> Result<Vec<Vec<f64>>> {
    comm.record_allgather();
    let p = comm.size();
    let r = comm.rank();
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[r] = mine.to_vec();
    if p == 1 {
        return Ok(out);
    }
    let _span = comm.trace_span(
        "collective",
        "allgatherv_ring",
        &[("p", p as f64), ("words", mine.len() as f64)],
    );
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    for step in 0..p - 1 {
        let send_idx = (r + p - step) % p;
        let recv_idx = (r + p - step - 1) % p;
        comm.send(next, AG_TAG, &out[send_idx])?;
        out[recv_idx] = comm.recv(prev, AG_TAG)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{NetModel, World};

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        // Rank r contributes value (r+1) at every position scaled by index.
        let total: f64 = (1..=p).map(|r| r as f64).sum();
        (0..n).map(|i| total * (i + 1) as f64).collect()
    }

    fn contribution(rank: usize, n: usize) -> Vec<f64> {
        (0..n).map(|i| (rank + 1) as f64 * (i + 1) as f64).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1, 2, 3, 4, 5, 8] {
            let n = 24;
            let out = World::run(p, NetModel::free(), |comm| {
                let mut data = contribution(comm.rank(), n);
                allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
                data
            });
            for r in 0..p {
                assert_eq!(out[r], expected_sum(p, n), "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = World::run(4, NetModel::free(), |comm| {
            let mut data = vec![comm.rank() as f64; 8];
            allreduce_ring(comm, &mut data, ReduceOp::Max).unwrap();
            data
        });
        for r in 0..4 {
            assert_eq!(out[r], vec![3.0; 8]);
        }
    }

    #[test]
    fn allreduce_handles_len_not_divisible_by_p() {
        let p = 4;
        let n = 10; // not divisible by 4
        let out = World::run(p, NetModel::free(), |comm| {
            let mut data = contribution(comm.rank(), n);
            allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            data
        });
        for r in 0..p {
            assert_eq!(out[r], expected_sum(p, n));
        }
    }

    #[test]
    fn allreduce_time_matches_thakur_ring_formula() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let n = 8 * 125; // divisible by p
        let out = World::run(p, model, |comm| {
            let mut data = vec![1.0; n];
            allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            comm.now()
        });
        let expect = 2.0 * (p as f64 - 1.0) * model.alpha
            + 2.0 * ((p as f64 - 1.0) / p as f64) * n as f64 * model.beta;
        for (r, &t) in out.iter().enumerate() {
            assert!((t - expect).abs() < 1e-12, "rank {r}: {t} vs {expect}");
        }
    }

    #[test]
    fn allgather_ring_concatenates_in_rank_order() {
        let p = 5;
        let m = 3;
        let out = World::run(p, NetModel::free(), |comm| {
            let mine: Vec<f64> = (0..m).map(|i| (comm.rank() * 10 + i) as f64).collect();
            allgather_ring(comm, &mine).unwrap()
        });
        let expected: Vec<f64> = (0..p)
            .flat_map(|r| (0..m).map(move |i| (r * 10 + i) as f64))
            .collect();
        for r in 0..p {
            assert_eq!(out[r], expected);
        }
    }

    #[test]
    fn allgather_ring_time_matches_formula() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 6;
        let m = 100;
        let out = World::run(p, model, |comm| {
            let mine = vec![1.0; m];
            allgather_ring(comm, &mine).unwrap();
            comm.now()
        });
        let n_total = (p * m) as f64;
        let expect =
            (p as f64 - 1.0) * model.alpha + ((p as f64 - 1.0) / p as f64) * n_total * model.beta;
        for &t in &out {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }

    #[test]
    fn reduce_scatter_owned_block_is_correct() {
        let p = 4;
        let n = 16;
        let out = World::run(p, NetModel::free(), |comm| {
            let mut data = contribution(comm.rank(), n);
            let owned = reduce_scatter_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            let range = crate::chunks::block_range(n, p, owned);
            (owned, data[range].to_vec())
        });
        let full = expected_sum(p, n);
        for r in 0..p {
            let (owned, ref block) = out[r];
            assert_eq!(owned, (r + 1) % p);
            let range = crate::chunks::block_range(n, p, owned);
            assert_eq!(block.as_slice(), &full[range]);
        }
    }

    #[test]
    fn allgatherv_handles_uneven_blocks() {
        let p = 4;
        let out = World::run(p, NetModel::free(), |comm| {
            // Rank r contributes r+1 elements, each equal to its rank.
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            allgatherv_ring(comm, &mine).unwrap()
        });
        for r in 0..p {
            for (src, block) in out[r].iter().enumerate() {
                assert_eq!(block, &vec![src as f64; src + 1], "rank {r} block {src}");
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let out = World::run(1, NetModel::cori_knl(), |comm| {
            let mut data = vec![3.0, 4.0];
            allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            (data, comm.now())
        });
        assert_eq!(out[0].0, vec![3.0, 4.0]);
        assert_eq!(out[0].1, 0.0, "no communication for P=1");
    }
}
