//! Reduction operators.

/// Element-wise reduction operator applied by all-reduce / reduce /
/// reduce-scatter collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum (the operator SGD gradient aggregation needs).
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Applies the operator in place: `acc[i] = op(acc[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths (a collective
    /// protocol bug, not a user input condition).
    #[inline]
    pub fn apply(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduction operand length mismatch");
        match self {
            ReduceOp::Sum => {
                for (a, &b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, &b) in acc.iter_mut().zip(other) {
                    *a = a.max(b);
                }
            }
            ReduceOp::Min => {
                for (a, &b) in acc.iter_mut().zip(other) {
                    *a = a.min(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_adds() {
        let mut a = vec![1.0, 2.0];
        ReduceOp::Sum.apply(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
    }

    #[test]
    fn max_and_min() {
        let mut a = vec![1.0, 5.0];
        ReduceOp::Max.apply(&mut a, &[3.0, 2.0]);
        assert_eq!(a, vec![3.0, 5.0]);
        ReduceOp::Min.apply(&mut a, &[0.0, 9.0]);
        assert_eq!(a, vec![0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = vec![1.0];
        ReduceOp::Sum.apply(&mut a, &[1.0, 2.0]);
    }
}
