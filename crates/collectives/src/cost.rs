//! Closed-form α–β costs of the collective algorithms.
//!
//! Two families live here:
//!
//! * `*_exact` forms follow Thakur, Rabenseifner & Gropp (IJHPCA 2005)
//!   — the costs our executed algorithms provably incur on `mpsim`
//!   (asserted by tests in the algorithm modules), and
//! * `paper_*` forms follow the exact expressions printed in the
//!   paper's Eqs. 3–9, which substitute `⌈log₂ P⌉` for the ring
//!   all-reduce's `(P−1)` latency factor (a common simplification: the
//!   latency term is negligible at the message sizes involved, and MPI
//!   implementations switch to logarithmic-latency algorithms for small
//!   messages anyway). The figure-reproduction binaries use the
//!   `paper_*` forms so the reproduced numbers follow the paper's
//!   arithmetic; the difference is quantified in an ablation bench.
//!
//! Costs are expressed as [`CostTerms`] — a latency count and a word
//! count — so they can be composed symbolically and only converted to
//! seconds at the end against a [`mpsim::NetModel`].

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use mpsim::NetModel;

/// A symbolic α–β cost: `alpha` message latencies plus `words` words on
/// the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostTerms {
    /// Number of α latencies on the critical path.
    pub alpha: f64,
    /// Number of words on the critical path.
    pub words: f64,
}

impl CostTerms {
    /// The zero cost.
    pub const ZERO: CostTerms = CostTerms {
        alpha: 0.0,
        words: 0.0,
    };

    /// Constructs a cost from explicit counts.
    pub fn new(alpha: f64, words: f64) -> Self {
        CostTerms { alpha, words }
    }

    /// Converts to seconds under a machine model.
    pub fn seconds(&self, model: &NetModel) -> f64 {
        self.alpha * model.alpha + self.words * model.beta
    }
}

impl Add for CostTerms {
    type Output = CostTerms;
    fn add(self, rhs: CostTerms) -> CostTerms {
        CostTerms {
            alpha: self.alpha + rhs.alpha,
            words: self.words + rhs.words,
        }
    }
}

impl AddAssign for CostTerms {
    fn add_assign(&mut self, rhs: CostTerms) {
        self.alpha += rhs.alpha;
        self.words += rhs.words;
    }
}

impl Mul<f64> for CostTerms {
    type Output = CostTerms;
    fn mul(self, k: f64) -> CostTerms {
        CostTerms {
            alpha: self.alpha * k,
            words: self.words * k,
        }
    }
}

impl Sum for CostTerms {
    fn sum<I: Iterator<Item = CostTerms>>(iter: I) -> CostTerms {
        iter.fold(CostTerms::ZERO, |a, b| a + b)
    }
}

/// `⌈log₂ p⌉` as an f64 (0 for p ≤ 1).
pub fn ceil_log2(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as f64
    }
}

/// `(p−1)/p` (0 for p ≤ 1) — the factor on every bandwidth term.
pub fn frac(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64 - 1.0) / p as f64
    }
}

/// Point-to-point transfer of `n` words.
pub fn ptp(n: f64) -> CostTerms {
    CostTerms::new(1.0, n)
}

/// Ring all-reduce of `n` words over `p` ranks (Thakur-exact):
/// `2(p−1)·α + 2·((p−1)/p)·n·β`.
pub fn ring_allreduce_exact(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(2.0 * (p as f64 - 1.0), 2.0 * frac(p) * n)
}

/// All-reduce as written in the paper's equations:
/// `2·(α·⌈log₂ p⌉ + β·((p−1)/p)·n)`.
pub fn paper_allreduce(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(2.0 * ceil_log2(p), 2.0 * frac(p) * n)
}

/// Bruck all-gather of `n` total words over `p` ranks (also the form
/// used in the paper's Eqs. 3, 8, 9):
/// `⌈log₂ p⌉·α + ((p−1)/p)·n·β`.
pub fn bruck_allgather(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(ceil_log2(p), frac(p) * n)
}

/// Ring all-gather of `n` total words: `(p−1)·α + ((p−1)/p)·n·β`.
pub fn ring_allgather_exact(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(p as f64 - 1.0, frac(p) * n)
}

/// Ring reduce-scatter of `n` words: `(p−1)·α + ((p−1)/p)·n·β`.
pub fn ring_reduce_scatter_exact(p: usize, n: f64) -> CostTerms {
    ring_allgather_exact(p, n)
}

/// Recursive-doubling all-reduce: `⌈log₂ p⌉·(α + n·β)`.
pub fn recursive_doubling_allreduce(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(ceil_log2(p), ceil_log2(p) * n)
}

/// Rabenseifner all-reduce: `2·⌈log₂ p⌉·α + 2·((p−1)/p)·n·β`.
pub fn rabenseifner_allreduce(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(2.0 * ceil_log2(p), 2.0 * frac(p) * n)
}

/// Binomial broadcast of `n` words: `⌈log₂ p⌉·(α + n·β)`.
pub fn binomial_bcast(p: usize, n: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(ceil_log2(p), ceil_log2(p) * n)
}

/// Pairwise all-to-all of `p` blocks of `m` words each:
/// `(p−1)·(α + m·β)`.
pub fn alltoall_pairwise(p: usize, block_words: f64) -> CostTerms {
    if p <= 1 {
        return CostTerms::ZERO;
    }
    CostTerms::new(p as f64 - 1.0, (p as f64 - 1.0) * block_words)
}

/// One direction of a halo exchange moving `n` words: `α + n·β` (the
/// paper charges each boundary transfer as a single message; overlap is
/// handled separately by the overlap model).
pub fn halo_transfer(n: f64) -> CostTerms {
    CostTerms::new(1.0, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0.0);
        assert_eq!(ceil_log2(2), 1.0);
        assert_eq!(ceil_log2(3), 2.0);
        assert_eq!(ceil_log2(4), 2.0);
        assert_eq!(ceil_log2(5), 3.0);
        assert_eq!(ceil_log2(1024), 10.0);
    }

    #[test]
    fn single_rank_costs_are_zero() {
        for f in [
            ring_allreduce_exact,
            paper_allreduce,
            bruck_allgather,
            ring_allgather_exact,
            recursive_doubling_allreduce,
            rabenseifner_allreduce,
            binomial_bcast,
        ] {
            assert_eq!(f(1, 1e6), CostTerms::ZERO);
        }
    }

    #[test]
    fn terms_compose() {
        let a = CostTerms::new(1.0, 10.0);
        let b = CostTerms::new(2.0, 5.0);
        assert_eq!(a + b, CostTerms::new(3.0, 15.0));
        assert_eq!(a * 3.0, CostTerms::new(3.0, 30.0));
        let s: CostTerms = [a, b, b].into_iter().sum();
        assert_eq!(s, CostTerms::new(5.0, 20.0));
    }

    #[test]
    fn seconds_applies_model() {
        let model = NetModel {
            alpha: 2.0,
            beta: 0.5,
            flops: 1.0,
        };
        let c = CostTerms::new(3.0, 4.0);
        assert!((c.seconds(&model) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn paper_allreduce_bandwidth_matches_ring() {
        // The paper's substitution only changes the latency factor.
        let p = 64;
        let n = 1e6;
        let ring = ring_allreduce_exact(p, n);
        let paper = paper_allreduce(p, n);
        assert_eq!(ring.words, paper.words);
        assert!(ring.alpha > paper.alpha);
    }

    #[test]
    fn rabenseifner_dominates_recursive_doubling_for_large_n() {
        let model = NetModel {
            alpha: 1e-6,
            beta: 1e-9,
            flops: 1.0,
        };
        let p = 64;
        let big = 1e7;
        assert!(
            rabenseifner_allreduce(p, big).seconds(&model)
                < recursive_doubling_allreduce(p, big).seconds(&model)
        );
        // …and loses (or ties) for tiny messages where latency rules.
        let tiny = 1.0;
        assert!(
            rabenseifner_allreduce(p, tiny).seconds(&model)
                >= recursive_doubling_allreduce(p, tiny).seconds(&model)
        );
    }
}
