//! Recursive-doubling and Rabenseifner all-reduce variants.
//!
//! These are not the algorithms the paper assumes (it uses the ring),
//! but they are the standard alternatives in Thakur et al., and the
//! ablation benches use them to show where the paper's choice matters:
//! recursive doubling trades `⌈log P⌉` latency for `n·⌈log P⌉`
//! bandwidth — a win only for small messages; Rabenseifner
//! (recursive-halving reduce-scatter + recursive-doubling all-gather)
//! achieves ring bandwidth with logarithmic latency but requires a
//! power-of-two rank count in this implementation.

use mpsim::{Communicator, Result, Tag};

use crate::op::ReduceOp;

const RD_TAG: Tag = (1 << 48) + 48;
const RH_TAG: Tag = (1 << 48) + 49;
const RG_TAG: Tag = (1 << 48) + 50;

/// Whether `p` is a power of two (and nonzero).
pub fn is_pow2(p: usize) -> bool {
    p != 0 && p & (p - 1) == 0
}

/// Recursive-doubling all-reduce. Cost: `⌈log₂ P⌉·(α + n·β)`.
/// Requires a power-of-two communicator size.
pub fn allreduce_recursive_doubling(
    comm: &Communicator,
    data: &mut [f64],
    op: ReduceOp,
) -> Result<()> {
    comm.record_allreduce();
    let p = comm.size();
    assert!(
        is_pow2(p),
        "recursive doubling requires power-of-two ranks, got {p}"
    );
    let r = comm.rank();
    let _span = comm.trace_span(
        "collective",
        "allreduce_recursive_doubling",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    let mut d = 1usize;
    while d < p {
        let partner = r ^ d;
        let incoming = comm.sendrecv(partner, data, partner, RD_TAG + d as u64)?;
        op.apply(data, &incoming);
        d <<= 1;
    }
    Ok(())
}

/// Rabenseifner all-reduce: recursive-halving reduce-scatter followed by
/// recursive-doubling all-gather. Cost:
/// `2·log₂(P)·α + 2·((P−1)/P)·n·β` — same bandwidth as the ring with
/// logarithmic latency. Requires power-of-two `P` and `n` divisible by
/// `P`.
pub fn allreduce_rabenseifner(comm: &Communicator, data: &mut [f64], op: ReduceOp) -> Result<()> {
    comm.record_allreduce();
    let p = comm.size();
    assert!(
        is_pow2(p),
        "Rabenseifner requires power-of-two ranks, got {p}"
    );
    let n = data.len();
    assert!(
        n % p == 0,
        "Rabenseifner requires n divisible by P ({n} % {p})"
    );
    if p == 1 {
        return Ok(());
    }
    let r = comm.rank();
    let _span = comm.trace_span(
        "collective",
        "allreduce_rabenseifner",
        &[("p", p as f64), ("words", n as f64)],
    );

    // Recursive halving reduce-scatter. At each step the active window
    // halves; we keep (lo, len) as the element window this rank is still
    // responsible for.
    let mut lo = 0usize;
    let mut len = n;
    let mut d = p / 2;
    let mut step = 0u64;
    while d >= 1 {
        let partner = r ^ d;
        let half = len / 2;
        // Ranks whose bit is 0 keep the low half, send the high half.
        let keep_low = r & d == 0;
        let (send_lo, keep_lo) = if keep_low {
            (lo + half, lo)
        } else {
            (lo, lo + half)
        };
        let outgoing = data[send_lo..send_lo + half].to_vec();
        comm.send_vec(partner, RH_TAG + step, outgoing)?;
        let incoming = comm.recv(partner, RH_TAG + step)?;
        op.apply(&mut data[keep_lo..keep_lo + half], &incoming);
        lo = keep_lo;
        len = half;
        d /= 2;
        step += 1;
    }

    // Recursive-doubling all-gather of the reduced windows, reversing
    // the halving order.
    let mut d = 1usize;
    while d < p {
        let partner = r ^ d;
        let outgoing = data[lo..lo + len].to_vec();
        comm.send_vec(partner, RG_TAG + d as u64, outgoing)?;
        let incoming = comm.recv(partner, RG_TAG + d as u64)?;
        // Partner's window is the sibling half; merge the two.
        let partner_lo = if r & d == 0 { lo + len } else { lo - len };
        data[partner_lo..partner_lo + len].copy_from_slice(&incoming);
        lo = lo.min(partner_lo);
        len *= 2;
        d <<= 1;
    }
    debug_assert_eq!((lo, len), (0, n));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{NetModel, World};

    fn contribution(rank: usize, n: usize) -> Vec<f64> {
        (0..n).map(|i| (rank + 1) as f64 * (i + 1) as f64).collect()
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        let total: f64 = (1..=p).map(|r| r as f64).sum();
        (0..n).map(|i| total * (i + 1) as f64).collect()
    }

    #[test]
    fn recursive_doubling_sums() {
        for p in [1, 2, 4, 8, 16] {
            let n = 16;
            let out = World::run(p, NetModel::free(), |comm| {
                let mut data = contribution(comm.rank(), n);
                allreduce_recursive_doubling(comm, &mut data, ReduceOp::Sum).unwrap();
                data
            });
            for r in 0..p {
                assert_eq!(out[r], expected_sum(p, n), "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn recursive_doubling_time_matches_formula() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let n = 1000;
        let out = World::run(p, model, |comm| {
            let mut data = vec![1.0; n];
            allreduce_recursive_doubling(comm, &mut data, ReduceOp::Sum).unwrap();
            comm.now()
        });
        let log = (p as f64).log2();
        let expect = log * (model.alpha + n as f64 * model.beta);
        for &t in &out {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }

    #[test]
    fn rabenseifner_sums() {
        for p in [1, 2, 4, 8] {
            let n = 32;
            let out = World::run(p, NetModel::free(), |comm| {
                let mut data = contribution(comm.rank(), n);
                allreduce_rabenseifner(comm, &mut data, ReduceOp::Sum).unwrap();
                data
            });
            for r in 0..p {
                assert_eq!(out[r], expected_sum(p, n), "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn rabenseifner_time_matches_formula() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let n = 800;
        let out = World::run(p, model, |comm| {
            let mut data = vec![1.0; n];
            allreduce_rabenseifner(comm, &mut data, ReduceOp::Sum).unwrap();
            comm.now()
        });
        let log = (p as f64).log2();
        let expect =
            2.0 * log * model.alpha + 2.0 * ((p as f64 - 1.0) / p as f64) * n as f64 * model.beta;
        for &t in &out {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }

    // The event backend re-throws the rank's original panic payload
    // (the threaded oracle wraps it in "rank thread panicked").
    #[test]
    #[should_panic(expected = "requires power-of-two ranks")]
    fn recursive_doubling_rejects_non_pow2() {
        let _ = World::run(3, NetModel::free(), |comm| {
            let mut data = vec![1.0; 3];
            allreduce_recursive_doubling(comm, &mut data, ReduceOp::Sum).unwrap();
        });
    }
}
