//! Binomial-tree broadcast and rooted reduce.
//!
//! Used by the parameter-server-free initialization of the trainer
//! (every rank must start from identical weights, which MPI programs
//! typically establish with a broadcast from rank 0) and as an ablation
//! point for the cost models. Cost: `⌈log₂ P⌉·(α + n·β)`.

use mpsim::{Communicator, Result, Tag};

use crate::op::ReduceOp;

const BCAST_TAG: Tag = (1 << 48) + 64;
const REDUCE_TAG: Tag = (1 << 48) + 65;

/// Binomial broadcast from `root`. Non-root ranks may pass an empty
/// vector; on return every rank holds the root's data.
pub fn bcast_binomial(comm: &Communicator, data: &mut Vec<f64>, root: usize) -> Result<()> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let _span = comm.trace_span(
        "collective",
        "bcast_binomial",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    let vrank = (comm.rank() + p - root) % p;
    // Find the highest power of two <= p.
    let mut mask = 1usize;
    while mask < p {
        mask <<= 1;
    }
    mask >>= 1;
    // Receive phase: the lowest set bit of vrank determines the parent.
    if vrank != 0 {
        let lsb = vrank & vrank.wrapping_neg();
        let parent_v = vrank - lsb;
        let parent = (parent_v + root) % p;
        *data = comm.recv(parent, BCAST_TAG)?;
    }
    // Send phase: forward to children vrank + m for each m below our lsb
    // (or below p for the root), from high to low.
    let limit = if vrank == 0 {
        mask << 1
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut m = mask;
    while m >= 1 {
        if m < limit && vrank + m < p {
            let child = (vrank + m + root) % p;
            comm.send(child, BCAST_TAG, data)?;
        }
        if m == 1 {
            break;
        }
        m >>= 1;
    }
    Ok(())
}

/// Binomial-tree reduce to `root`: after the call, `root` holds the
/// element-wise reduction of all ranks' `data`; other ranks' buffers are
/// partially reduced garbage.
pub fn reduce_binomial(
    comm: &Communicator,
    data: &mut [f64],
    op: ReduceOp,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let _span = comm.trace_span(
        "collective",
        "reduce_binomial",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    let vrank = (comm.rank() + p - root) % p;
    let mut m = 1usize;
    while m < p {
        if vrank & m != 0 {
            // Send to parent and exit.
            let parent = ((vrank - m) + root) % p;
            comm.send(parent, REDUCE_TAG + m as u64, data)?;
            return Ok(());
        }
        if vrank + m < p {
            let child = (vrank + m + root) % p;
            let incoming = comm.recv(child, REDUCE_TAG + m as u64)?;
            op.apply(data, &incoming);
        }
        m <<= 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{NetModel, World};

    #[test]
    fn bcast_delivers_root_data_all_roots() {
        for p in [1, 2, 3, 4, 5, 8, 9] {
            for root in [0, p - 1, p / 2] {
                let out = World::run(p, NetModel::free(), move |comm| {
                    let mut data = if comm.rank() == root {
                        vec![1.0, 2.0, 3.0]
                    } else {
                        Vec::new()
                    };
                    bcast_binomial(comm, &mut data, root).unwrap();
                    data
                });
                for r in 0..p {
                    assert_eq!(out[r], vec![1.0, 2.0, 3.0], "p={p} root={root} rank={r}");
                }
            }
        }
    }

    #[test]
    fn bcast_time_is_logarithmic() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let p = 16;
        let out = World::run(p, model, |comm| {
            let mut data = if comm.rank() == 0 {
                vec![7.0]
            } else {
                Vec::new()
            };
            bcast_binomial(comm, &mut data, 0).unwrap();
            comm.now()
        });
        let max = out.iter().cloned().fold(0.0, f64::max);
        assert!(
            (max - 4.0).abs() < 1e-12,
            "binomial depth log2(16)=4, got {max}"
        );
    }

    #[test]
    fn reduce_accumulates_at_root() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in [0, p - 1] {
                let out = World::run(p, NetModel::free(), move |comm| {
                    let mut data = vec![(comm.rank() + 1) as f64; 4];
                    reduce_binomial(comm, &mut data, ReduceOp::Sum, root).unwrap();
                    data
                });
                let total: f64 = (1..=p).map(|r| r as f64).sum();
                assert_eq!(out[root], vec![total; 4], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn bcast_then_reduce_roundtrip() {
        let p = 6;
        let out = World::run(p, NetModel::free(), |comm| {
            let mut data = if comm.rank() == 2 {
                vec![5.0; 8]
            } else {
                Vec::new()
            };
            bcast_binomial(comm, &mut data, 2).unwrap();
            reduce_binomial(comm, &mut data, ReduceOp::Sum, 2).unwrap();
            data
        });
        assert_eq!(out[2], vec![5.0 * p as f64; 8]);
    }
}
