//! Block partitioning of a buffer across ranks.

use std::ops::Range;

/// Splits `0..n` into `p` contiguous blocks whose sizes differ by at
/// most one: block `i` is `(i*n/p)..((i+1)*n/p)`. This is the standard
/// MPI block distribution and keeps ring collectives balanced for any
/// `n`.
pub fn block_range(n: usize, p: usize, i: usize) -> Range<usize> {
    debug_assert!(i < p, "block index {i} out of {p}");
    (i * n) / p..((i + 1) * n) / p
}

/// All `p` block ranges for a buffer of length `n`.
pub fn block_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
    (0..p).map(|i| block_range(n, p, i)).collect()
}

/// The order in which a ring all-gather delivers block indices to rank
/// `r`: its own block first (step 0 is free), then the predecessor's,
/// wrapping downward — `[r, r−1, r−2, …]`. Consumers that process
/// blocks as they arrive (pipelined forward all-gathers) see exactly
/// this sequence, and schedulers that want ascending-index accumulation
/// must know it differs from `0..p` for every rank but the "wrap point".
pub fn ring_arrival_order(p: usize, r: usize) -> Vec<usize> {
    debug_assert!(r < p, "rank {r} out of {p}");
    (0..p).map(|s| (r + p - s) % p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn covers_exactly_once() {
        let ranges = block_ranges(10, 3);
        assert_eq!(ranges, vec![0..3, 3..6, 6..10]);
    }

    #[test]
    fn handles_more_ranks_than_elements() {
        let ranges = block_ranges(2, 4);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 2);
        // Ranges remain monotone and contiguous.
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn arrival_order_starts_at_self_and_wraps_downward() {
        assert_eq!(ring_arrival_order(4, 0), vec![0, 3, 2, 1]);
        assert_eq!(ring_arrival_order(4, 2), vec![2, 1, 0, 3]);
        assert_eq!(ring_arrival_order(1, 0), vec![0]);
    }

    proptest! {
        #[test]
        fn arrival_order_is_a_permutation(p in 1usize..64, seed in 0usize..64) {
            let r = seed % p;
            let mut order = ring_arrival_order(p, r);
            prop_assert_eq!(order[0], r, "own block arrives first");
            order.sort_unstable();
            prop_assert_eq!(order, (0..p).collect::<Vec<_>>());
        }

        #[test]
        fn partition_is_contiguous_and_balanced(n in 0usize..1000, p in 1usize..64) {
            let ranges = block_ranges(n, p);
            prop_assert_eq!(ranges[0].start, 0);
            prop_assert_eq!(ranges[p - 1].end, n);
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            prop_assert!(max - min <= 1, "blocks within one element of each other");
        }
    }
}
