//! Non-blocking halo exchange — the communication pattern of domain
//! parallelism (the paper's Fig. 3).
//!
//! Each rank owns a contiguous horizontal strip of every image in its
//! batch shard; convolutions with `k > 1` need `⌊k/2⌋` boundary rows
//! from each neighbour. The paper stresses that this exchange is
//! *pair-wise and non-blocking*: the interior of the strip can be
//! convolved while boundary rows are in flight, so (unlike the
//! model-parallel all-gather) the cost can be overlapped with compute.
//! `exchange_1d` models exactly that via `irecv`/`wait`.

use mpsim::{Communicator, RecvHandle, Result, Tag};

const HALO_UP_TAG: Tag = (1 << 48) + 80; // data travelling to rank-1
const HALO_DOWN_TAG: Tag = (1 << 48) + 81; // data travelling to rank+1

/// Halo data received from the two neighbours of a 1-D (non-periodic)
/// strip decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Rows received from `rank - 1` (None at the top boundary).
    pub from_prev: Option<Vec<f64>>,
    /// Rows received from `rank + 1` (None at the bottom boundary).
    pub from_next: Option<Vec<f64>>,
}

/// Performs a non-blocking 1-D halo exchange along the communicator,
/// overlapping the transfers with `interior_compute` (a closure that
/// should advance the virtual clock, e.g. via
/// [`Communicator::advance_flops`]).
///
/// * `to_prev` — boundary rows this rank sends *up* (ignored at rank 0).
/// * `to_next` — boundary rows this rank sends *down* (ignored at the
///   last rank).
///
/// Returns the halos and the closure's output. If the interior compute
/// takes longer than the transfers, the exchange is free in virtual
/// time — the paper's best case.
pub fn exchange_1d<T>(
    comm: &Communicator,
    to_prev: &[f64],
    to_next: &[f64],
    interior_compute: impl FnOnce() -> T,
) -> Result<(Halo, T)> {
    let p = comm.size();
    let r = comm.rank();
    let up: Option<RecvHandle> = if r + 1 < p {
        Some(comm.irecv(r + 1, HALO_UP_TAG)?)
    } else {
        None
    };
    let down: Option<RecvHandle> = if r > 0 {
        Some(comm.irecv(r - 1, HALO_DOWN_TAG)?)
    } else {
        None
    };
    if r > 0 {
        comm.send(r - 1, HALO_UP_TAG, to_prev)?;
    }
    if r + 1 < p {
        comm.send(r + 1, HALO_DOWN_TAG, to_next)?;
    }
    let out = interior_compute();
    let from_next = up.map(|h| comm.wait(h)).transpose()?;
    let from_prev = down.map(|h| comm.wait(h)).transpose()?;
    Ok((
        Halo {
            from_prev,
            from_next,
        },
        out,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{NetModel, World};

    #[test]
    fn neighbours_receive_each_others_boundaries() {
        let p = 4;
        let out = World::run(p, NetModel::free(), |comm| {
            let r = comm.rank() as f64;
            let (halo, ()) = exchange_1d(comm, &[r * 10.0], &[r * 10.0 + 1.0], || ()).unwrap();
            halo
        });
        // Rank 0: no prev, next sends its "up" boundary 10.0.
        assert_eq!(out[0].from_prev, None);
        assert_eq!(out[0].from_next, Some(vec![10.0]));
        // Rank 1: prev sends "down" boundary 1.0; next sends "up" 20.0.
        assert_eq!(out[1].from_prev, Some(vec![1.0]));
        assert_eq!(out[1].from_next, Some(vec![20.0]));
        // Last rank: no next.
        assert_eq!(out[3].from_prev, Some(vec![21.0]));
        assert_eq!(out[3].from_next, None);
    }

    #[test]
    fn exchange_is_free_when_compute_covers_it() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.01,
            flops: f64::INFINITY,
        };
        let out = World::run(3, model, |comm| {
            let (_halo, ()) = exchange_1d(comm, &[0.0; 10], &[0.0; 10], || {
                comm.advance_compute(100.0);
            })
            .unwrap();
            comm.now()
        });
        for &t in &out {
            assert!((t - 100.0).abs() < 1e-12, "fully hidden: {t}");
        }
    }

    #[test]
    fn exchange_cost_is_exposed_without_compute() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.5,
            flops: f64::INFINITY,
        };
        let out = World::run(3, model, |comm| {
            let (_halo, ()) = exchange_1d(comm, &[0.0; 4], &[0.0; 4], || ()).unwrap();
            comm.now()
        });
        // Each transfer: alpha + 4*beta = 3.0; exchanges overlap, so the
        // makespan is a single transfer time.
        for &t in &out {
            assert!((t - 3.0).abs() < 1e-12, "{t}");
        }
    }

    #[test]
    fn single_rank_has_no_halo() {
        let out = World::run(1, NetModel::cori_knl(), |comm| {
            let (halo, v) = exchange_1d(comm, &[1.0], &[2.0], || 42).unwrap();
            (halo, v, comm.now())
        });
        assert_eq!(
            out[0].0,
            Halo {
                from_prev: None,
                from_next: None
            }
        );
        assert_eq!(out[0].1, 42);
        assert_eq!(out[0].2, 0.0);
    }
}
