//! Pairwise all-to-all — the collective behind general layout
//! transposes (e.g. switching a matrix from row- to column-
//! distribution in one shot, the fully general form of the Eq. 6
//! redistribution).
//!
//! Algorithm: `P−1` rounds; in round `s`, rank `r` sends its block for
//! `(r+s) mod P` and receives from `(r−s) mod P`. Cost for per-pair
//! blocks of `m` words: `(P−1)·(α + m·β)` — bandwidth-optimal
//! (`(P−1)/P` of the total data leaves each rank), latency linear
//! in `P` like the ring.

use mpsim::{Communicator, Result, Tag};

const A2A_TAG: Tag = (1 << 48) + 144;

/// All-to-all personalized exchange: `send[q]` goes to rank `q`;
/// returns one received block per source rank (the block this rank
/// keeps for itself is moved, not copied across the network).
///
/// Blocks may have arbitrary (even differing) lengths.
pub fn alltoall(comm: &Communicator, send: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>> {
    let p = comm.size();
    let r = comm.rank();
    assert_eq!(send.len(), p, "one block per destination rank");
    let _span = comm.trace_span(
        "collective",
        "alltoall",
        &[
            ("p", p as f64),
            ("words", send.iter().map(Vec::len).sum::<usize>() as f64),
        ],
    );
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut send = send;
    out[r] = std::mem::take(&mut send[r]);
    for step in 1..p {
        let dst = (r + step) % p;
        let src = (r + p - step) % p;
        comm.send_vec(dst, A2A_TAG + step as u64, std::mem::take(&mut send[dst]))?;
        out[src] = comm.recv(src, A2A_TAG + step as u64)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{NetModel, World};

    #[test]
    fn every_pair_exchanges_its_block() {
        for p in [1, 2, 3, 5, 8] {
            let out = World::run(p, NetModel::free(), |comm| {
                let r = comm.rank();
                // Block for q encodes (from, to).
                let send: Vec<Vec<f64>> = (0..p).map(|q| vec![(r * 100 + q) as f64; 3]).collect();
                alltoall(comm, send).unwrap()
            });
            for r in 0..p {
                for q in 0..p {
                    assert_eq!(
                        out[r][q],
                        vec![(q * 100 + r) as f64; 3],
                        "p={p} rank {r} from {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn variable_block_lengths_are_fine() {
        let p = 4;
        let out = World::run(p, NetModel::free(), |comm| {
            let r = comm.rank();
            let send: Vec<Vec<f64>> = (0..p).map(|q| vec![r as f64; q + 1]).collect();
            alltoall(comm, send).unwrap()
        });
        for r in 0..p {
            for q in 0..p {
                assert_eq!(out[r][q], vec![q as f64; r + 1], "rank {r} from {q}");
            }
        }
    }

    #[test]
    fn time_matches_pairwise_formula() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let m = 100;
        let out = World::run(p, model, |comm| {
            let send: Vec<Vec<f64>> = (0..p).map(|_| vec![1.0; m]).collect();
            alltoall(comm, send).unwrap();
            comm.now()
        });
        let expect = (p as f64 - 1.0) * (model.alpha + m as f64 * model.beta);
        for &t in &out {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }

    #[test]
    fn transposes_a_distributed_matrix() {
        // The classic use: each rank holds one row; after all-to-all of
        // scalar blocks, each rank holds one column.
        let p = 4;
        let out = World::run(p, NetModel::free(), |comm| {
            let r = comm.rank();
            let row: Vec<f64> = (0..p).map(|c| (r * 10 + c) as f64).collect();
            let send: Vec<Vec<f64>> = row.iter().map(|&v| vec![v]).collect();
            let got = alltoall(comm, send).unwrap();
            got.into_iter().map(|b| b[0]).collect::<Vec<f64>>()
        });
        for c in 0..p {
            let col: Vec<f64> = (0..p).map(|r| (r * 10 + c) as f64).collect();
            assert_eq!(out[c], col);
        }
    }
}
