//! Fault-tolerant collective variants.
//!
//! The plain collectives in this crate assume a reliable network and
//! live peers: a dropped message would block a ring step forever, and a
//! mid-collective rank death would leave every other member stuck. The
//! `_ft` variants here wrap the same algorithms (identical data
//! movement and α–β cost in the fault-free case) in three defenses:
//!
//! 1. **Timeout-aware receives** — every blocking receive uses
//!    [`mpsim::Communicator::recv_retry`] with the [`FtConfig`]
//!    deadline, so a dropped or straggling message surfaces as
//!    [`mpsim::Error::Timeout`] after a bounded, virtual-clock-charged
//!    wait instead of hanging.
//! 2. **Checksum verification** — `mpsim` stamps an FNV checksum on
//!    every data envelope while a fault plan is active and re-verifies
//!    it at the receiver, so corrupted payloads surface as
//!    [`mpsim::Error::Corrupted`] rather than silently folding a
//!    flipped bit into a reduction.
//! 3. **Group-wide abort** — a member that observes any fault
//!    (timeout, corruption, peer death) broadcasts an abort notice
//!    blaming a culprit rank before propagating the error. A member
//!    blocked on a receive from an aborting peer unblocks with
//!    [`mpsim::Error::Aborted`] and *cascades* the abort in turn, so
//!    the whole group converges on a consistent "this collective
//!    failed, rank k is to blame" outcome. (Cascading is what makes
//!    the protocol live: each blocked rank waits on exactly one peer,
//!    and that peer either sends the data, dies — death notices are
//!    broadcast — or aborts and cascades.)
//!
//! After an abort, ranks are expected to run a failure-agreement round
//! ([`mpsim::Communicator::fault_sync`]), shrink the communicator
//! ([`mpsim::Communicator::shrink_exclude`]), bump the recovery epoch
//! (staling any in-flight aborts), and retry on the survivor grid —
//! the protocol the `integrated` crate's fault-tolerant trainer
//! implements.

use mpsim::{Communicator, Error, Result, Tag};

use crate::chunks::block_range;
use crate::op::ReduceOp;
use crate::recursive::is_pow2;

const FT_RS_TAG: Tag = (1 << 48) + 96;
const FT_AG_TAG: Tag = (1 << 48) + 97;
const FT_RD_TAG: Tag = (1 << 48) + 98;
const FT_HALO_UP_TAG: Tag = (1 << 48) + 99;
const FT_HALO_DOWN_TAG: Tag = (1 << 48) + 100;

/// Receive policy for fault-tolerant collectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtConfig {
    /// Deadline (virtual seconds) for each receive attempt.
    pub timeout: f64,
    /// Total receive attempts per message (≥ 1).
    pub attempts: usize,
    /// Virtual seconds of backoff between attempts.
    pub backoff: f64,
}

impl FtConfig {
    /// A single-attempt policy with the given per-receive deadline.
    pub fn new(timeout: f64) -> Self {
        assert!(timeout > 0.0, "timeout must be positive");
        FtConfig {
            timeout,
            attempts: 1,
            backoff: 0.0,
        }
    }

    /// Sets the number of attempts per receive.
    pub fn with_attempts(mut self, attempts: usize) -> Self {
        assert!(attempts >= 1, "need at least one attempt");
        self.attempts = attempts;
        self
    }

    /// Sets the backoff between attempts.
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(backoff >= 0.0, "backoff must be non-negative");
        self.backoff = backoff;
        self
    }
}

/// The global rank to blame for a fault error observed on `comm`, or
/// `None` when the error is not a fault (or is this rank's own death,
/// which is already announced by a death notice).
fn blame(comm: &Communicator, e: &Error) -> Option<usize> {
    match e {
        Error::Timeout { rank, .. } | Error::Corrupted { rank, .. } => {
            comm.global_rank_of(*rank).ok()
        }
        Error::RankFailed { rank } => {
            let me = comm
                .global_rank_of(comm.rank())
                .expect("own rank is in range");
            (*rank != me).then_some(*rank)
        }
        Error::Aborted { culprit } => Some(*culprit),
        _ => None,
    }
}

/// Runs a collective body; on a fault error, broadcasts (or cascades)
/// an abort blaming the culprit before propagating the error.
fn guarded<T>(comm: &Communicator, body: impl FnOnce() -> Result<T>) -> Result<T> {
    body().inspect_err(|e| {
        if let Some(culprit) = blame(comm, e) {
            // Best effort: if this rank dies while aborting, its death
            // notice keeps the group live anyway.
            let _ = comm.send_abort(culprit);
        }
    })
}

fn recv_ft(comm: &Communicator, src: usize, tag: Tag, cfg: &FtConfig) -> Result<Vec<f64>> {
    comm.recv_retry(src, tag, cfg.timeout, cfg.attempts, cfg.backoff)
}

/// Fault-tolerant ring all-reduce. Fault-free behavior (values, traffic,
/// virtual time) is identical to [`crate::ring::allreduce_ring`]; under
/// faults it returns an error on every member (directly or via the
/// abort cascade) instead of hanging.
pub fn allreduce_ring_ft(
    comm: &Communicator,
    data: &mut [f64],
    op: ReduceOp,
    cfg: &FtConfig,
) -> Result<()> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    guarded(comm, || {
        let r = comm.rank();
        let n = data.len();
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        // Reduce-scatter phase.
        for step in 0..p - 1 {
            let send_idx = (r + p - step) % p;
            let recv_idx = (r + p - step - 1) % p;
            let send_block = data[block_range(n, p, send_idx)].to_vec();
            comm.send_vec(next, FT_RS_TAG, send_block)?;
            let incoming = recv_ft(comm, prev, FT_RS_TAG, cfg)?;
            op.apply(&mut data[block_range(n, p, recv_idx)], &incoming);
        }
        // All-gather phase.
        for step in 0..p - 1 {
            let send_idx = (r + 1 + p - step) % p;
            let recv_idx = (r + p - step) % p;
            let send_block = data[block_range(n, p, send_idx)].to_vec();
            comm.send_vec(next, FT_AG_TAG, send_block)?;
            let incoming = recv_ft(comm, prev, FT_AG_TAG, cfg)?;
            data[block_range(n, p, recv_idx)].copy_from_slice(&incoming);
        }
        Ok(())
    })
}

/// Fault-tolerant recursive-doubling all-reduce (power-of-two ranks).
/// Fault-free cost matches
/// [`crate::recursive::allreduce_recursive_doubling`].
pub fn allreduce_recursive_doubling_ft(
    comm: &Communicator,
    data: &mut [f64],
    op: ReduceOp,
    cfg: &FtConfig,
) -> Result<()> {
    let p = comm.size();
    assert!(
        is_pow2(p),
        "recursive doubling requires power-of-two ranks, got {p}"
    );
    guarded(comm, || {
        let r = comm.rank();
        let mut d = 1usize;
        while d < p {
            let partner = r ^ d;
            let tag = FT_RD_TAG + (d as u64) * 8;
            comm.send(partner, tag, data)?;
            let incoming = recv_ft(comm, partner, tag, cfg)?;
            op.apply(data, &incoming);
            d <<= 1;
        }
        Ok(())
    })
}

/// Fault-tolerant ring all-gather of equal-size blocks; fault-free
/// behavior matches [`crate::ring::allgather_ring`].
pub fn allgather_ring_ft(comm: &Communicator, mine: &[f64], cfg: &FtConfig) -> Result<Vec<f64>> {
    let p = comm.size();
    let r = comm.rank();
    let m = mine.len();
    let mut out = vec![0.0; m * p];
    out[r * m..(r + 1) * m].copy_from_slice(mine);
    if p == 1 {
        return Ok(out);
    }
    guarded(comm, || {
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        for step in 0..p - 1 {
            let send_idx = (r + p - step) % p;
            let recv_idx = (r + p - step - 1) % p;
            let block = out[send_idx * m..(send_idx + 1) * m].to_vec();
            comm.send_vec(next, FT_AG_TAG, block)?;
            let incoming = recv_ft(comm, prev, FT_AG_TAG, cfg)?;
            out[recv_idx * m..(recv_idx + 1) * m].copy_from_slice(&incoming);
        }
        Ok(())
    })?;
    Ok(out)
}

/// Fault-tolerant ring all-gather of variable-length blocks; fault-free
/// behavior matches [`crate::ring::allgatherv_ring`].
pub fn allgatherv_ring_ft(
    comm: &Communicator,
    mine: &[f64],
    cfg: &FtConfig,
) -> Result<Vec<Vec<f64>>> {
    let p = comm.size();
    let r = comm.rank();
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[r] = mine.to_vec();
    if p == 1 {
        return Ok(out);
    }
    guarded(comm, || {
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        for step in 0..p - 1 {
            let send_idx = (r + p - step) % p;
            let recv_idx = (r + p - step - 1) % p;
            comm.send(next, FT_AG_TAG, &out[send_idx])?;
            out[recv_idx] = recv_ft(comm, prev, FT_AG_TAG, cfg)?;
        }
        Ok(())
    })?;
    Ok(out)
}

/// Fault-tolerant 1-D halo exchange: like [`crate::halo::exchange_1d`]
/// but each neighbour's arrival must beat a deadline of `cfg.timeout`
/// virtual seconds from posting (measured like
/// [`mpsim::Communicator::irecv_timeout`]); overlap with
/// `interior_compute` is preserved. A missing/late halo surfaces as
/// [`mpsim::Error::Timeout`] and triggers the group abort.
pub fn exchange_1d_ft<T>(
    comm: &Communicator,
    to_prev: &[f64],
    to_next: &[f64],
    cfg: &FtConfig,
    interior_compute: impl FnOnce() -> T,
) -> Result<(crate::halo::Halo, T)> {
    let p = comm.size();
    let r = comm.rank();
    guarded(comm, || {
        let up = if r + 1 < p {
            Some(comm.irecv_timeout(r + 1, FT_HALO_UP_TAG, cfg.timeout)?)
        } else {
            None
        };
        let down = if r > 0 {
            Some(comm.irecv_timeout(r - 1, FT_HALO_DOWN_TAG, cfg.timeout)?)
        } else {
            None
        };
        if r > 0 {
            comm.send(r - 1, FT_HALO_UP_TAG, to_prev)?;
        }
        if r + 1 < p {
            comm.send(r + 1, FT_HALO_DOWN_TAG, to_next)?;
        }
        let out = interior_compute();
        let from_next = up.map(|h| comm.wait(h)).transpose()?;
        let from_prev = down.map(|h| comm.wait(h)).transpose()?;
        Ok((
            crate::halo::Halo {
                from_prev,
                from_next,
            },
            out,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{FaultPlan, NetModel, World};

    fn cfg() -> FtConfig {
        FtConfig::new(1e6)
    }

    #[test]
    fn fault_free_allreduce_matches_plain_ring_in_values_and_time() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 6;
        let n = 30;
        let plain = World::run(p, model, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; n];
            crate::ring::allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            (data, comm.now())
        });
        let ft = World::run(p, model, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; n];
            allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &cfg()).unwrap();
            (data, comm.now())
        });
        for r in 0..p {
            assert_eq!(plain[r].0, ft[r].0, "rank {r} values");
            assert!((plain[r].1 - ft[r].1).abs() < 1e-15, "rank {r} time");
        }
    }

    #[test]
    fn fault_free_recursive_doubling_ft_matches_plain() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let plain = World::run(p, model, |comm| {
            let mut data = vec![comm.rank() as f64; 16];
            crate::recursive::allreduce_recursive_doubling(comm, &mut data, ReduceOp::Sum).unwrap();
            (data, comm.now())
        });
        let ft = World::run(p, model, |comm| {
            let mut data = vec![comm.rank() as f64; 16];
            allreduce_recursive_doubling_ft(comm, &mut data, ReduceOp::Sum, &cfg()).unwrap();
            (data, comm.now())
        });
        for r in 0..p {
            assert_eq!(plain[r].0, ft[r].0);
            assert!((plain[r].1 - ft[r].1).abs() < 1e-15);
        }
    }

    #[test]
    fn dead_rank_fails_the_whole_group_consistently() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.001,
            flops: f64::INFINITY,
        };
        // Rank 2 dies just before the collective starts.
        let plan = FaultPlan::new(3).kill(2, 0.5);
        let (out, _) = World::run_with_faults(5, model, plan, |comm| {
            comm.advance_compute(1.0);
            let mut data = vec![1.0; 20];
            allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &FtConfig::new(10.0))
        });
        for (r, res) in out.iter().enumerate() {
            let e = res.as_ref().expect_err("every rank observes the failure");
            match e {
                Error::RankFailed { rank: 2 } => {}
                Error::Aborted { culprit: 2 } => assert_ne!(r, 2),
                // A rank may see the loss as a timeout first (its ring
                // neighbour died before forwarding); it then blames and
                // aborts, so the group still converges.
                Error::Timeout { .. } => assert_ne!(r, 2),
                other => panic!("rank {r}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected_and_aborts_the_group() {
        let model = NetModel::free();
        // Corrupt the first ring message from rank 0 to rank 1.
        let plan = FaultPlan::new(11).corrupt_nth(0, 1, 0);
        let (out, stats) = World::run_with_faults(4, model, plan, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; 8];
            allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &FtConfig::new(100.0))
        });
        // Rank 1 detects the corruption directly; everyone fails.
        assert_eq!(
            out[1],
            Err(Error::Corrupted {
                rank: 0,
                tag: FT_RS_TAG
            })
        );
        for (r, res) in out.iter().enumerate() {
            assert!(res.is_err(), "rank {r} must not complete: {res:?}");
        }
        assert_eq!(stats.total_corrupt_detected(), 1);
        assert!(stats.total_aborts() >= 1, "abort was broadcast");
    }

    #[test]
    fn dropped_message_times_out_and_retry_is_counted() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = FaultPlan::new(2).drop_nth(1, 2, 0);
        let (out, stats) = World::run_with_faults(3, model, plan, |comm| {
            let mut data = vec![1.0; 6];
            allreduce_ring_ft(
                comm,
                &mut data,
                ReduceOp::Sum,
                &FtConfig::new(5.0).with_attempts(2).with_backoff(1.0),
            )
        });
        assert!(
            out.iter().all(|r| r.is_err()),
            "drop fails the group: {out:?}"
        );
        assert!(
            matches!(out[2], Err(Error::Timeout { rank: 1, .. })),
            "{:?}",
            out[2]
        );
        assert_eq!(stats.total_dropped(), 1);
        assert_eq!(stats.ranks[2].retries, 1, "the configured retry ran");
    }

    #[test]
    fn ft_halo_exchange_matches_plain_when_fault_free() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.5,
            flops: f64::INFINITY,
        };
        let out = World::run(3, model, |comm| {
            let r = comm.rank() as f64;
            let (halo, ()) = exchange_1d_ft(
                comm,
                &[r * 10.0],
                &[r * 10.0 + 1.0],
                &FtConfig::new(100.0),
                || (),
            )
            .unwrap();
            (halo, comm.now())
        });
        assert_eq!(out[1].0.from_prev, Some(vec![1.0]));
        assert_eq!(out[1].0.from_next, Some(vec![20.0]));
        // Same exposed cost as the plain exchange: alpha + 1*beta = 1.5.
        for &(_, t) in out.iter().map(|(h, t)| (h, t)).collect::<Vec<_>>().iter() {
            assert!((t - 1.5).abs() < 1e-12, "{t}");
        }
    }

    #[test]
    fn ft_halo_times_out_on_dropped_boundary() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = FaultPlan::new(4).drop_nth(1, 0, 0);
        let (out, _) = World::run_with_faults(2, model, plan, |comm| {
            exchange_1d_ft(comm, &[5.0], &[6.0], &FtConfig::new(3.0), || ()).map(|(h, ())| h)
        });
        assert!(
            matches!(out[0], Err(Error::Timeout { .. })),
            "rank 0's halo from rank 1 was dropped: {:?}",
            out[0]
        );
        assert!(out[1].is_ok(), "rank 1's own halo arrived: {:?}", out[1]);
    }

    #[test]
    fn fault_free_allgatherv_ft_matches_plain() {
        let out = World::run(4, NetModel::free(), |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            let a = crate::ring::allgatherv_ring(comm, &mine).unwrap();
            let b = allgatherv_ring_ft(comm, &mine, &cfg()).unwrap();
            (a, b)
        });
        for (a, b) in &out {
            assert_eq!(a, b);
        }
    }
}
