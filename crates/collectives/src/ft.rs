//! Fault-tolerant collective variants.
//!
//! The plain collectives in this crate assume a reliable network and
//! live peers: a dropped message would block a ring step forever, and a
//! mid-collective rank death would leave every other member stuck. The
//! `_ft` variants here wrap the same algorithms (identical data
//! movement and α–β cost in the fault-free case) in three defenses:
//!
//! 1. **Timeout-aware receives** — every blocking receive uses
//!    [`mpsim::Communicator::recv_retry`] with the [`FtConfig`]
//!    deadline, so a dropped or straggling message surfaces as
//!    [`mpsim::Error::Timeout`] after a bounded, virtual-clock-charged
//!    wait instead of hanging.
//! 2. **Checksum verification** — `mpsim` stamps an FNV checksum on
//!    every data envelope while a fault plan is active and re-verifies
//!    it at the receiver, so corrupted payloads surface as
//!    [`mpsim::Error::Corrupted`] rather than silently folding a
//!    flipped bit into a reduction.
//! 3. **Group-wide abort** — a member that observes any fault
//!    (timeout, corruption, peer death) broadcasts an abort notice
//!    blaming a culprit rank before propagating the error. A member
//!    blocked on a receive from an aborting peer unblocks with
//!    [`mpsim::Error::Aborted`] and *cascades* the abort in turn, so
//!    the whole group converges on a consistent "this collective
//!    failed, rank k is to blame" outcome. (Cascading is what makes
//!    the protocol live: each blocked rank waits on exactly one peer,
//!    and that peer either sends the data, dies — death notices are
//!    broadcast — or aborts and cascades.)
//!
//! After an abort, ranks are expected to run a failure-agreement round
//! ([`mpsim::Communicator::fault_sync`]), shrink the communicator
//! ([`mpsim::Communicator::shrink_exclude`]), bump the recovery epoch
//! (staling any in-flight aborts), and retry on the survivor grid —
//! the protocol the `integrated` crate's fault-tolerant trainer
//! implements.

use mpsim::{Communicator, Error, NetModel, Result, RetryPolicy, Tag};

use crate::chunks::block_range;
use crate::op::ReduceOp;
use crate::recursive::is_pow2;

const FT_RS_TAG: Tag = (1 << 48) + 96;
const FT_AG_TAG: Tag = (1 << 48) + 97;
const FT_RD_TAG: Tag = (1 << 48) + 98;
const FT_HALO_UP_TAG: Tag = (1 << 48) + 99;
const FT_HALO_DOWN_TAG: Tag = (1 << 48) + 100;

/// How the per-receive deadline of a fault-tolerant collective is
/// chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Deadline {
    /// A fixed deadline in virtual seconds, identical for every peer.
    Fixed(f64),
    /// Per-peer deadlines learned by the adaptive failure detector
    /// (mean + k·σ of observed receive waits, see
    /// [`mpsim::HealthMonitor`]), falling back to `fallback` until
    /// enough samples exist for a peer.
    Adaptive {
        /// Deadline used while the detector lacks samples.
        fallback: f64,
    },
}

impl Deadline {
    /// Resolves the deadline for receiving from communicator-local
    /// rank `src` on `comm`.
    pub fn resolve(&self, comm: &Communicator, src: usize) -> f64 {
        match *self {
            Deadline::Fixed(t) => t,
            Deadline::Adaptive { fallback } => comm.adaptive_deadline(src).unwrap_or(fallback),
        }
    }

    /// The deadline used when no peer statistics are available.
    pub fn fallback(&self) -> f64 {
        match *self {
            Deadline::Fixed(t) | Deadline::Adaptive { fallback: t } => t,
        }
    }
}

/// Receive policy for fault-tolerant collectives.
///
/// Prefer deriving one from the network model
/// ([`FtConfig::for_model`], [`FtConfig::adaptive`]) over hard-coding
/// seconds: a deadline that is generous on one α–β point is a hair
/// trigger on another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtConfig {
    /// Deadline policy for each receive attempt.
    pub deadline: Deadline,
    /// Total receive attempts per message (≥ 1).
    pub attempts: usize,
    /// Base backoff (virtual seconds) before the second attempt.
    pub backoff: f64,
    /// Multiplicative backoff growth per retry (1.0 = constant).
    pub backoff_factor: f64,
    /// Jitter fraction in `[0, 1]` stretching each backoff pause by a
    /// deterministic per-(link, retry) draw.
    pub jitter: f64,
    /// After the retry schedule is exhausted by timeouts, issue one
    /// speculative re-request with an extended window if the detector
    /// ranks the peer *suspect but not presumed dead* (straggler
    /// mitigation).
    pub speculative: bool,
}

impl FtConfig {
    /// A single-attempt policy with a fixed per-receive deadline.
    pub fn fixed(timeout: f64) -> Self {
        assert!(timeout > 0.0, "timeout must be positive");
        FtConfig {
            deadline: Deadline::Fixed(timeout),
            attempts: 1,
            backoff: 0.0,
            backoff_factor: 1.0,
            jitter: 0.0,
            speculative: false,
        }
    }

    /// A policy derived from the α–β network model: the deadline is a
    /// generous multiple of the point-to-point time of a
    /// `words_hint`-word message (so only genuine faults trip it), with
    /// three attempts under exponential, jittered backoff starting at a
    /// few α.
    pub fn for_model(m: &NetModel, words_hint: usize) -> Self {
        let t = (64.0 * m.ptp(words_hint)).max(1e-9);
        FtConfig {
            deadline: Deadline::Fixed(t),
            attempts: 3,
            backoff: (4.0 * m.alpha).max(1e-12),
            backoff_factor: 2.0,
            jitter: 0.25,
            speculative: false,
        }
    }

    /// Like [`FtConfig::for_model`], but with per-peer deadlines
    /// learned by the adaptive failure detector (the model-derived
    /// value is only the cold-start fallback) and speculative
    /// re-requests for suspect peers enabled.
    pub fn adaptive(m: &NetModel, words_hint: usize) -> Self {
        let base = FtConfig::for_model(m, words_hint);
        FtConfig {
            deadline: Deadline::Adaptive {
                fallback: base.deadline.fallback(),
            },
            speculative: true,
            ..base
        }
    }

    /// A single-attempt policy with a fixed bare-seconds deadline.
    #[deprecated(
        since = "0.2.0",
        note = "derive deadlines from the network model instead: use \
                `FtConfig::for_model` / `FtConfig::adaptive`, or \
                `FtConfig::fixed` when a bare-seconds deadline is \
                really wanted"
    )]
    pub fn new(timeout: f64) -> Self {
        FtConfig::fixed(timeout)
    }

    /// Sets the number of attempts per receive.
    pub fn with_attempts(mut self, attempts: usize) -> Self {
        assert!(attempts >= 1, "need at least one attempt");
        self.attempts = attempts;
        self
    }

    /// Sets the base backoff between attempts.
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(backoff >= 0.0, "backoff must be non-negative");
        self.backoff = backoff;
        self
    }

    /// Sets the multiplicative backoff growth per retry.
    pub fn with_backoff_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "backoff factor must be >= 1");
        self.backoff_factor = factor;
        self
    }

    /// Sets the backoff jitter fraction.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        self.jitter = jitter;
        self
    }

    /// Enables or disables speculative re-requests for suspect peers.
    pub fn with_speculative(mut self, speculative: bool) -> Self {
        self.speculative = speculative;
        self
    }

    /// Replaces the deadline policy.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// The global rank to blame for a fault error observed on `comm`, or
/// `None` when the error is not a fault (or is this rank's own death,
/// which is already announced by a death notice).
pub(crate) fn blame(comm: &Communicator, e: &Error) -> Option<usize> {
    match e {
        Error::Timeout { rank, .. } | Error::Corrupted { rank, .. } => {
            comm.global_rank_of(*rank).ok()
        }
        Error::RankFailed { rank } => {
            let me = comm
                .global_rank_of(comm.rank())
                .expect("own rank is in range");
            (*rank != me).then_some(*rank)
        }
        Error::Aborted { culprit } => Some(*culprit),
        // A partition cut is blamed on the unreachable peer: the abort
        // cascades through the reachable fragment exactly like a death,
        // driving every member into recovery with the same culprit.
        Error::Unreachable { rank } => Some(*rank),
        _ => None,
    }
}

/// Runs a collective body; on a fault error, broadcasts (or cascades)
/// an abort blaming the culprit before propagating the error.
fn guarded<T>(comm: &Communicator, body: impl FnOnce() -> Result<T>) -> Result<T> {
    body().inspect_err(|e| {
        if let Some(culprit) = blame(comm, e) {
            // Best effort: if this rank dies while aborting, its death
            // notice keeps the group live anyway.
            let _ = comm.send_abort(culprit);
        }
    })
}

fn recv_ft(comm: &Communicator, src: usize, tag: Tag, cfg: &FtConfig) -> Result<Vec<f64>> {
    let timeout = cfg.deadline.resolve(comm, src);
    let policy = RetryPolicy {
        timeout,
        attempts: cfg.attempts,
        backoff: cfg.backoff,
        factor: cfg.backoff_factor,
        jitter: cfg.jitter,
    };
    match comm.recv_retry_policy(src, tag, &policy) {
        // Straggler mitigation: the schedule is exhausted but the
        // detector says the peer is merely slow, not presumed dead —
        // grant one speculative re-request with an extended window.
        Err(Error::Timeout { .. }) if cfg.speculative && comm.peer_suspect_not_dead(src) => {
            comm.record_speculative_retry();
            comm.recv_timeout(src, tag, timeout * 4.0)
        }
        other => other,
    }
}

/// Fault-tolerant ring all-reduce. Fault-free behavior (values, traffic,
/// virtual time) is identical to [`crate::ring::allreduce_ring`]; under
/// faults it returns an error on every member (directly or via the
/// abort cascade) instead of hanging.
pub fn allreduce_ring_ft(
    comm: &Communicator,
    data: &mut [f64],
    op: ReduceOp,
    cfg: &FtConfig,
) -> Result<()> {
    comm.record_allreduce();
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let _span = comm.trace_span(
        "collective",
        "allreduce_ring_ft",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    guarded(comm, || {
        let r = comm.rank();
        let n = data.len();
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        // Reduce-scatter phase.
        for step in 0..p - 1 {
            let send_idx = (r + p - step) % p;
            let recv_idx = (r + p - step - 1) % p;
            let send_block = data[block_range(n, p, send_idx)].to_vec();
            comm.send_vec(next, FT_RS_TAG, send_block)?;
            let incoming = recv_ft(comm, prev, FT_RS_TAG, cfg)?;
            op.apply(&mut data[block_range(n, p, recv_idx)], &incoming);
        }
        // All-gather phase.
        for step in 0..p - 1 {
            let send_idx = (r + 1 + p - step) % p;
            let recv_idx = (r + p - step) % p;
            let send_block = data[block_range(n, p, send_idx)].to_vec();
            comm.send_vec(next, FT_AG_TAG, send_block)?;
            let incoming = recv_ft(comm, prev, FT_AG_TAG, cfg)?;
            data[block_range(n, p, recv_idx)].copy_from_slice(&incoming);
        }
        Ok(())
    })
}

/// Fault-tolerant recursive-doubling all-reduce (power-of-two ranks).
/// Fault-free cost matches
/// [`crate::recursive::allreduce_recursive_doubling`].
pub fn allreduce_recursive_doubling_ft(
    comm: &Communicator,
    data: &mut [f64],
    op: ReduceOp,
    cfg: &FtConfig,
) -> Result<()> {
    comm.record_allreduce();
    let p = comm.size();
    assert!(
        is_pow2(p),
        "recursive doubling requires power-of-two ranks, got {p}"
    );
    let _span = comm.trace_span(
        "collective",
        "allreduce_recursive_doubling_ft",
        &[("p", p as f64), ("words", data.len() as f64)],
    );
    guarded(comm, || {
        let r = comm.rank();
        let mut d = 1usize;
        while d < p {
            let partner = r ^ d;
            let tag = FT_RD_TAG + (d as u64) * 8;
            comm.send(partner, tag, data)?;
            let incoming = recv_ft(comm, partner, tag, cfg)?;
            op.apply(data, &incoming);
            d <<= 1;
        }
        Ok(())
    })
}

/// Fault-tolerant ring all-gather of equal-size blocks; fault-free
/// behavior matches [`crate::ring::allgather_ring`].
pub fn allgather_ring_ft(comm: &Communicator, mine: &[f64], cfg: &FtConfig) -> Result<Vec<f64>> {
    comm.record_allgather();
    let p = comm.size();
    let r = comm.rank();
    let m = mine.len();
    let mut out = vec![0.0; m * p];
    out[r * m..(r + 1) * m].copy_from_slice(mine);
    if p == 1 {
        return Ok(out);
    }
    let _span = comm.trace_span(
        "collective",
        "allgather_ring_ft",
        &[("p", p as f64), ("words", (m * p) as f64)],
    );
    guarded(comm, || {
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        for step in 0..p - 1 {
            let send_idx = (r + p - step) % p;
            let recv_idx = (r + p - step - 1) % p;
            let block = out[send_idx * m..(send_idx + 1) * m].to_vec();
            comm.send_vec(next, FT_AG_TAG, block)?;
            let incoming = recv_ft(comm, prev, FT_AG_TAG, cfg)?;
            out[recv_idx * m..(recv_idx + 1) * m].copy_from_slice(&incoming);
        }
        Ok(())
    })?;
    Ok(out)
}

/// Fault-tolerant ring all-gather of variable-length blocks; fault-free
/// behavior matches [`crate::ring::allgatherv_ring`].
pub fn allgatherv_ring_ft(
    comm: &Communicator,
    mine: &[f64],
    cfg: &FtConfig,
) -> Result<Vec<Vec<f64>>> {
    comm.record_allgather();
    let p = comm.size();
    let r = comm.rank();
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[r] = mine.to_vec();
    if p == 1 {
        return Ok(out);
    }
    let _span = comm.trace_span(
        "collective",
        "allgatherv_ring_ft",
        &[("p", p as f64), ("words", mine.len() as f64)],
    );
    guarded(comm, || {
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        for step in 0..p - 1 {
            let send_idx = (r + p - step) % p;
            let recv_idx = (r + p - step - 1) % p;
            comm.send(next, FT_AG_TAG, &out[send_idx])?;
            out[recv_idx] = recv_ft(comm, prev, FT_AG_TAG, cfg)?;
        }
        Ok(())
    })?;
    Ok(out)
}

/// Fault-tolerant 1-D halo exchange: like [`crate::halo::exchange_1d`]
/// but each neighbour's arrival must beat the per-neighbour deadline
/// resolved from `cfg.deadline` (measured like
/// [`mpsim::Communicator::irecv_timeout`]); overlap with
/// `interior_compute` is preserved. A missing/late halo surfaces as
/// [`mpsim::Error::Timeout`] and triggers the group abort.
pub fn exchange_1d_ft<T>(
    comm: &Communicator,
    to_prev: &[f64],
    to_next: &[f64],
    cfg: &FtConfig,
    interior_compute: impl FnOnce() -> T,
) -> Result<(crate::halo::Halo, T)> {
    let p = comm.size();
    let r = comm.rank();
    guarded(comm, || {
        let up = if r + 1 < p {
            let t = cfg.deadline.resolve(comm, r + 1);
            Some(comm.irecv_timeout(r + 1, FT_HALO_UP_TAG, t)?)
        } else {
            None
        };
        let down = if r > 0 {
            let t = cfg.deadline.resolve(comm, r - 1);
            Some(comm.irecv_timeout(r - 1, FT_HALO_DOWN_TAG, t)?)
        } else {
            None
        };
        if r > 0 {
            comm.send(r - 1, FT_HALO_UP_TAG, to_prev)?;
        }
        if r + 1 < p {
            comm.send(r + 1, FT_HALO_DOWN_TAG, to_next)?;
        }
        let out = interior_compute();
        let from_next = up.map(|h| comm.wait(h)).transpose()?;
        let from_prev = down.map(|h| comm.wait(h)).transpose()?;
        Ok((
            crate::halo::Halo {
                from_prev,
                from_next,
            },
            out,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{FaultPlan, NetModel, World};

    fn cfg() -> FtConfig {
        FtConfig::fixed(1e6)
    }

    #[test]
    fn fault_free_allreduce_matches_plain_ring_in_values_and_time() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 6;
        let n = 30;
        let plain = World::run(p, model, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; n];
            crate::ring::allreduce_ring(comm, &mut data, ReduceOp::Sum).unwrap();
            (data, comm.now())
        });
        let ft = World::run(p, model, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; n];
            allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &cfg()).unwrap();
            (data, comm.now())
        });
        for r in 0..p {
            assert_eq!(plain[r].0, ft[r].0, "rank {r} values");
            assert!((plain[r].1 - ft[r].1).abs() < 1e-15, "rank {r} time");
        }
    }

    #[test]
    fn fault_free_recursive_doubling_ft_matches_plain() {
        let model = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let p = 8;
        let plain = World::run(p, model, |comm| {
            let mut data = vec![comm.rank() as f64; 16];
            crate::recursive::allreduce_recursive_doubling(comm, &mut data, ReduceOp::Sum).unwrap();
            (data, comm.now())
        });
        let ft = World::run(p, model, |comm| {
            let mut data = vec![comm.rank() as f64; 16];
            allreduce_recursive_doubling_ft(comm, &mut data, ReduceOp::Sum, &cfg()).unwrap();
            (data, comm.now())
        });
        for r in 0..p {
            assert_eq!(plain[r].0, ft[r].0);
            assert!((plain[r].1 - ft[r].1).abs() < 1e-15);
        }
    }

    #[test]
    fn dead_rank_fails_the_whole_group_consistently() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.001,
            flops: f64::INFINITY,
        };
        // Rank 2 dies just before the collective starts.
        let plan = FaultPlan::new(3).kill(2, 0.5);
        let (out, _) = World::run_with_faults(5, model, plan, |comm| {
            comm.advance_compute(1.0);
            let mut data = vec![1.0; 20];
            allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &FtConfig::fixed(10.0))
        });
        for (r, res) in out.iter().enumerate() {
            let e = res.as_ref().expect_err("every rank observes the failure");
            match e {
                Error::RankFailed { rank: 2 } => {}
                Error::Aborted { culprit: 2 } => assert_ne!(r, 2),
                // A rank may see the loss as a timeout first (its ring
                // neighbour died before forwarding); it then blames and
                // aborts, so the group still converges.
                Error::Timeout { .. } => assert_ne!(r, 2),
                other => panic!("rank {r}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected_and_aborts_the_group() {
        let model = NetModel::free();
        // Corrupt the first ring message from rank 0 to rank 1.
        let plan = FaultPlan::new(11).corrupt_nth(0, 1, 0);
        let (out, stats) = World::run_with_faults(4, model, plan, |comm| {
            let mut data = vec![(comm.rank() + 1) as f64; 8];
            allreduce_ring_ft(comm, &mut data, ReduceOp::Sum, &FtConfig::fixed(100.0))
        });
        // Rank 1 detects the corruption directly; everyone fails.
        assert_eq!(
            out[1],
            Err(Error::Corrupted {
                rank: 0,
                tag: FT_RS_TAG,
                ctx: None
            })
        );
        for (r, res) in out.iter().enumerate() {
            assert!(res.is_err(), "rank {r} must not complete: {res:?}");
        }
        assert_eq!(stats.total_corrupt_detected(), 1);
        assert!(stats.total_aborts() >= 1, "abort was broadcast");
    }

    #[test]
    fn dropped_message_times_out_and_retry_is_counted() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = FaultPlan::new(2).drop_nth(1, 2, 0);
        let (out, stats) = World::run_with_faults(3, model, plan, |comm| {
            let mut data = vec![1.0; 6];
            allreduce_ring_ft(
                comm,
                &mut data,
                ReduceOp::Sum,
                &FtConfig::fixed(5.0).with_attempts(2).with_backoff(1.0),
            )
        });
        assert!(
            out.iter().all(|r| r.is_err()),
            "drop fails the group: {out:?}"
        );
        assert!(
            matches!(out[2], Err(Error::Timeout { rank: 1, .. })),
            "{:?}",
            out[2]
        );
        assert_eq!(stats.total_dropped(), 1);
        assert_eq!(stats.ranks[2].retries, 1, "the configured retry ran");
    }

    #[test]
    fn ft_halo_exchange_matches_plain_when_fault_free() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.5,
            flops: f64::INFINITY,
        };
        let out = World::run(3, model, |comm| {
            let r = comm.rank() as f64;
            let (halo, ()) = exchange_1d_ft(
                comm,
                &[r * 10.0],
                &[r * 10.0 + 1.0],
                &FtConfig::fixed(100.0),
                || (),
            )
            .unwrap();
            (halo, comm.now())
        });
        assert_eq!(out[1].0.from_prev, Some(vec![1.0]));
        assert_eq!(out[1].0.from_next, Some(vec![20.0]));
        // Same exposed cost as the plain exchange: alpha + 1*beta = 1.5.
        for &(_, t) in out.iter().map(|(h, t)| (h, t)).collect::<Vec<_>>().iter() {
            assert!((t - 1.5).abs() < 1e-12, "{t}");
        }
    }

    #[test]
    fn ft_halo_times_out_on_dropped_boundary() {
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        let plan = FaultPlan::new(4).drop_nth(1, 0, 0);
        let (out, _) = World::run_with_faults(2, model, plan, |comm| {
            exchange_1d_ft(comm, &[5.0], &[6.0], &FtConfig::fixed(3.0), || ()).map(|(h, ())| h)
        });
        assert!(
            matches!(out[0], Err(Error::Timeout { .. })),
            "rank 0's halo from rank 1 was dropped: {:?}",
            out[0]
        );
        assert!(out[1].is_ok(), "rank 1's own halo arrived: {:?}", out[1]);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_new_is_the_fixed_policy() {
        assert_eq!(FtConfig::new(2.5), FtConfig::fixed(2.5));
    }

    #[test]
    fn model_derived_policies_scale_with_the_network() {
        let m = NetModel {
            alpha: 1e-3,
            beta: 1e-6,
            flops: f64::INFINITY,
        };
        let c = FtConfig::for_model(&m, 1000);
        assert_eq!(c.deadline, Deadline::Fixed(64.0 * (1e-3 + 1e-6 * 1000.0)));
        assert_eq!(c.attempts, 3);
        assert!((c.backoff - 4e-3).abs() < 1e-15);
        assert_eq!(c.backoff_factor, 2.0);
        assert!(c.jitter > 0.0 && !c.speculative);
        let a = FtConfig::adaptive(&m, 1000);
        assert_eq!(
            a.deadline,
            Deadline::Adaptive {
                fallback: c.deadline.fallback()
            }
        );
        assert!(a.speculative);
    }

    #[test]
    fn speculative_rerequest_rescues_a_suspect_straggler() {
        use mpsim::Span;
        let model = NetModel {
            alpha: 1.0,
            beta: 0.0,
            flops: f64::INFINITY,
        };
        // Message #9 on the 0→1 link arrives ~6 s late — past the
        // learned deadline (~mean + 4σ of the warm-up waits) but well
        // inside the speculative window.
        let plan = FaultPlan::new(17).straggle(0, 1, 6.0, 0.0, Span::Once(9));
        let (out, stats) = World::run_with_faults(2, model, plan, |comm| {
            if comm.rank() == 0 {
                // Warm-up traffic with varied pacing so the detector
                // learns a gap/wait distribution with real spread.
                for k in 0..9u64 {
                    comm.advance_compute(1.0 + (k % 3) as f64);
                    comm.send(1, 7, &[k as f64]).unwrap();
                }
                comm.advance_compute(1.0);
                comm.send(1, 7, &[9.0]).unwrap();
                Ok(vec![])
            } else {
                for _ in 0..9 {
                    comm.recv(0, 7).unwrap();
                }
                let learned = comm.adaptive_deadline(0).expect("detector is warm");
                assert!(
                    (4.0..8.0).contains(&learned),
                    "learned deadline should be a few seconds, got {learned}"
                );
                let cfg = FtConfig::adaptive(&model, 1).with_attempts(1);
                recv_ft(comm, 0, 7, &cfg)
            }
        });
        assert_eq!(
            out[1].as_deref(),
            Ok(&[9.0][..]),
            "the straggler was recovered speculatively"
        );
        assert_eq!(stats.ranks[1].timeouts, 1, "the learned deadline tripped");
        assert_eq!(stats.ranks[1].speculative_retries, 1);
        assert_eq!(stats.ranks[1].suspects_flagged, 1);
        assert!(stats.ranks[1].straggler_wait > 0.0);
    }

    #[test]
    fn fault_free_allgatherv_ft_matches_plain() {
        let out = World::run(4, NetModel::free(), |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            let a = crate::ring::allgatherv_ring(comm, &mine).unwrap();
            let b = allgatherv_ring_ft(comm, &mine, &cfg()).unwrap();
            (a, b)
        });
        for (a, b) in &out {
            assert_eq!(a, b);
        }
    }
}
