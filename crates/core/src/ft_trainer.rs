//! Fault-tolerant 1.5D training: checkpoint / detect / shrink / replay.
//!
//! [`crate::trainer::train_1p5d`] assumes a reliable machine; this
//! module wraps the same synchronous SGD in a recovery protocol so a
//! [`FaultPlan`] — dropped messages, stragglers, flipped bits, rank
//! deaths — degrades the run instead of hanging or corrupting it:
//!
//! 1. **Checkpointing.** Every `ckpt_every` iterations each rank
//!    snapshots its weight (and momentum) shards; the last *two*
//!    checkpoints are retained because a fault can catch ranks one
//!    iteration apart across a checkpoint boundary. Checkpoint volume
//!    is charged to [`mpsim::RankStats::ckpt_words`].
//! 2. **Detection.** Before every iteration all world ranks run a
//!    control-plane [`Communicator::fault_sync`] round carrying
//!    `(iter, last_ckpt, aborted)`. Death notices make dead members
//!    observable by every survivor in the *same* round (the broadcast
//!    is all-or-nothing), so the survivor set is common knowledge
//!    without extra agreement machinery. During an iteration itself,
//!    faults surface through the fault-tolerant collectives
//!    (`collectives::ft`): deadline-bound receives, checksummed
//!    payloads, and a cascading group-wide abort.
//! 3. **Shrink + re-plan.** Survivors advance the recovery epoch
//!    (staling in-flight aborts), derive the survivor communicator
//!    with the communication-free [`Communicator::shrink_exclude`],
//!    and re-plan the grid: the new `Pr' × Pc'` is the factorization of
//!    the survivor count minimizing the paper's Eq. 8 communication
//!    cost on the configured [`MachineModel`].
//! 4. **Redistribute + replay.** Each old grid row's checkpoint shard
//!    is served by its lowest-ranked survivor and all-gathered over
//!    the data plane (so redistribution is charged on the virtual
//!    clock, recorded in [`mpsim::RankStats::recovery_secs`]); every
//!    survivor re-shards for its new grid position and training
//!    replays from the checkpoint iteration. A weight-shard row with
//!    no surviving replica makes the run unrecoverable.
//!
//! A recovery attempt is *transactional*: survivors build the new
//! grid/weights in temporaries and commit only after a confirmation
//! `fault_sync` round shows every survivor succeeded — a fault during
//! recovery just triggers another attempt with the updated survivor
//! set.

use collectives::ft::{allgatherv_ring_ft, allreduce_ring_ft};
use collectives::{FtConfig, ReduceOp};
use dnn::{Network, WeightedLayer};
use mpsim::{Communicator, Error, FaultPlan, World, WorldStats};
use tensor::activation::softmax_xent;
use tensor::ops::axpy;
use tensor::Matrix;

use distmm::dist::{col_shard, part_range, row_shard};
use distmm::onep5d::{backward_ft, forward_ft, Grid};

use crate::cost::integrated_model_batch;
use crate::machine::MachineModel;
use crate::trainer::{act_backward, apply_act, extract_fc_layers, init_weights, FcLayer};

/// Configuration for a fault-tolerant training run.
#[derive(Debug, Clone, Copy)]
pub struct FtTrainConfig {
    /// SGD learning rate η.
    pub lr: f64,
    /// Momentum μ (0 reproduces [`crate::trainer::train_1p5d`]'s plain
    /// SGD; μ > 0 adds a velocity buffer that is checkpointed and
    /// redistributed alongside the weights).
    pub momentum: f64,
    /// Number of iterations over the full batch.
    pub iters: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Checkpoint period in iterations (≥ 1). A checkpoint is also
    /// taken at iteration 0, so rollback is always possible.
    pub ckpt_every: usize,
    /// Receive policy for the fault-tolerant collectives.
    pub ft: FtConfig,
    /// Machine used both to drive the simulation (`net_model()`) and to
    /// re-plan the grid with Eq. 8 after a shrink.
    pub machine: MachineModel,
}

impl Default for FtTrainConfig {
    fn default() -> Self {
        FtTrainConfig {
            lr: 0.1,
            momentum: 0.0,
            iters: 10,
            seed: 7,
            ckpt_every: 2,
            ft: FtConfig::new(1.0).with_attempts(2).with_backoff(0.125),
            machine: MachineModel::cori_knl(),
        }
    }
}

/// One committed recovery, as observed by a surviving rank (identical
/// on every survivor).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Recovery epoch entered by this recovery.
    pub epoch: u64,
    /// Iteration training rolled back to (the agreed checkpoint).
    pub rollback_iter: usize,
    /// Cumulative dead global ranks at this recovery.
    pub dead: Vec<usize>,
    /// New grid extents after the shrink.
    pub pr: usize,
    /// New grid extents after the shrink.
    pub pc: usize,
    /// Virtual seconds this rank spent in the committed attempt
    /// (epoch bump through commit: re-plan, redistribution, re-shard).
    pub measured_secs: f64,
    /// Eq. 8 per-iteration communication seconds on the shrunk grid —
    /// the analytic degraded-mode cost to compare with
    /// [`FtRankOutcome::comm_secs_per_iter`].
    pub analytic_comm_per_iter: f64,
}

/// Per-surviving-rank outcome of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtRankOutcome {
    /// Final grid row (model-shard index).
    pub i: usize,
    /// Final grid column (batch-shard index).
    pub j: usize,
    /// Final grid extents (post-shrink if any recovery happened).
    pub pr: usize,
    /// Final grid extents (post-shrink if any recovery happened).
    pub pc: usize,
    /// *Global* loss before each committed iteration (identical on
    /// every survivor — each iteration ends with a one-word all-reduce
    /// of the loss partials).
    pub losses: Vec<f64>,
    /// Final local weight shards for the final grid.
    pub weight_shards: Vec<Matrix>,
    /// Committed recoveries, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// Measured mean communication seconds per iteration on the final
    /// grid (iterations since the last recovery) — the executed
    /// degraded-mode cost.
    pub comm_secs_per_iter: f64,
}

/// Outcome of a fault-tolerant distributed run.
#[derive(Debug)]
pub struct FtDistResult {
    /// Initial grid extents.
    pub pr0: usize,
    /// Initial grid extents.
    pub pc0: usize,
    /// Per-rank outcome; `Err` for ranks that died (or were
    /// unrecoverable), indexed by global rank.
    pub per_rank: Vec<Result<FtRankOutcome, Error>>,
    /// Virtual-time, traffic, and fault statistics.
    pub stats: WorldStats,
}

impl FtDistResult {
    /// Surviving ranks' outcomes.
    pub fn survivors(&self) -> Vec<&FtRankOutcome> {
        self.per_rank
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .collect()
    }

    /// Global loss history (identical on every survivor).
    ///
    /// # Panics
    ///
    /// Panics if no rank survived.
    pub fn losses(&self) -> Vec<f64> {
        self.survivors()
            .first()
            .expect("at least one survivor")
            .losses
            .clone()
    }

    /// Assembles the full weight matrices from the final grid's
    /// column-0 shards.
    pub fn weights(&self) -> Vec<Matrix> {
        let survivors = self.survivors();
        let first = survivors.first().expect("at least one survivor");
        let n_layers = first.weight_shards.len();
        (0..n_layers)
            .map(|l| {
                let mut shards: Vec<(usize, Matrix)> = survivors
                    .iter()
                    .filter(|r| r.j == 0)
                    .map(|r| (r.i, r.weight_shards[l].clone()))
                    .collect();
                shards.sort_by_key(|&(i, _)| i);
                Matrix::vcat(&shards.into_iter().map(|(_, m)| m).collect::<Vec<_>>())
            })
            .collect()
    }
}

/// Eq. 8 grid choice for `p` survivors: the divisor pair `(pr, pc)`
/// minimizing the analytic communication time, subject to every rank
/// keeping a non-empty weight and batch shard.
pub fn plan_grid(
    layers: &[WeightedLayer],
    b: f64,
    p: usize,
    machine: &MachineModel,
) -> (usize, usize) {
    let max_pr = layers.iter().map(|l| l.d_out()).min().unwrap_or(1);
    let mut best = (1, p);
    let mut best_t = f64::INFINITY;
    for pr in 1..=p.min(max_pr) {
        if p % pr != 0 {
            continue;
        }
        let pc = p / pr;
        if pc as f64 > b {
            continue;
        }
        let t = integrated_model_batch(layers, b, pr, pc).seconds(machine);
        if t < best_t {
            best_t = t;
            best = (pr, pc);
        }
    }
    best
}

/// Faults are handled by abort-and-recover; anything else — including
/// this rank's own scripted death — is fatal for the rank.
fn recoverable(e: &Error, my_global: usize) -> bool {
    match e {
        Error::Timeout { .. } | Error::Corrupted { .. } | Error::Aborted { .. } => true,
        Error::RankFailed { rank } => *rank != my_global,
        _ => false,
    }
}

fn encode_round(iter: usize, last_ckpt: usize, aborted: bool) -> Vec<u8> {
    let mut v = Vec::with_capacity(17);
    v.extend_from_slice(&(iter as u64).to_le_bytes());
    v.extend_from_slice(&(last_ckpt as u64).to_le_bytes());
    v.push(aborted as u8);
    v
}

fn decode_round(b: &[u8]) -> (usize, usize, bool) {
    let iter = u64::from_le_bytes(b[0..8].try_into().expect("iter"));
    let ckpt = u64::from_le_bytes(b[8..16].try_into().expect("ckpt"));
    (iter as usize, ckpt as usize, b[16] != 0)
}

/// A consistent snapshot a rank can roll back to: shards are laid out
/// for the grid that was current when the checkpoint was taken.
#[derive(Clone)]
struct Checkpoint {
    iter: usize,
    w: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Checkpoint {
    fn words(&self) -> u64 {
        self.w.iter().chain(&self.v).map(|m| m.len() as u64).sum()
    }
}

/// One synchronous training iteration on the current grid with
/// fault-tolerant collectives. Returns the *global* loss (identical on
/// every rank of the grid).
#[allow(clippy::too_many_arguments)]
fn run_iteration(
    grid: &Grid,
    layers: &[FcLayer],
    w: &mut [Matrix],
    v: &mut [Matrix],
    x_local: &Matrix,
    labels_local: &[usize],
    b_global: usize,
    cfg: &FtTrainConfig,
) -> Result<f64, Error> {
    let b_local = x_local.cols();
    // Forward.
    let mut inputs = vec![x_local.clone()];
    let mut pres = Vec::with_capacity(layers.len());
    for (l, wl) in layers.iter().zip(w.iter()) {
        let pre = forward_ft(grid, wl, inputs.last().expect("input"), &cfg.ft)?;
        let post = apply_act(l.act, &pre);
        pres.push(pre);
        inputs.push(post);
    }
    let logits = inputs.last().expect("logits");
    let (loss_local, mut grad) = softmax_xent(logits, labels_local);
    let scale = b_local as f64 / b_global as f64;
    for g in grad.as_mut_slice() {
        *g *= scale;
    }
    // Global loss: the partials of one grid row sum to the global loss
    // (rows hold replicas), so a one-word all-reduce over the row group
    // gives every rank the same number — and doubles as a per-iteration
    // liveness probe of the row group.
    let mut lbuf = [loss_local * scale];
    allreduce_ring_ft(&grid.row_comm, &mut lbuf, ReduceOp::Sum, &cfg.ft)?;
    // Backward.
    let mut dy = grad;
    for (idx, l) in layers.iter().enumerate().rev() {
        dy = act_backward(l.act, &pres[idx], &inputs[idx + 1], &dy);
        let (dw, dx) = backward_ft(grid, &w[idx], &inputs[idx], &dy, &cfg.ft)?;
        if cfg.momentum != 0.0 {
            for (vi, di) in v[idx].as_mut_slice().iter_mut().zip(dw.as_slice()) {
                *vi = cfg.momentum * *vi + di;
            }
            axpy(-cfg.lr, v[idx].as_slice(), w[idx].as_mut_slice());
        } else {
            axpy(-cfg.lr, dw.as_slice(), w[idx].as_mut_slice());
        }
        dy = dx;
    }
    Ok(lbuf[0])
}

/// The state a committed recovery replaces atomically.
struct GridState {
    grid: Grid,
    members: Vec<usize>,
    w: Vec<Matrix>,
    v: Vec<Matrix>,
    x_local: Matrix,
    labels_local: Vec<usize>,
    iter: usize,
}

/// One recovery attempt (fallible part): shrink, re-plan, redistribute
/// the agreed checkpoint, re-shard. Committed by the caller only after
/// a confirmation round.
#[allow(clippy::too_many_arguments)]
fn attempt_recovery(
    comm: &Communicator,
    epoch: u64,
    dead: &[usize],
    old: &GridState,
    ck: &Checkpoint,
    layers: &[FcLayer],
    wlayers: &[WeightedLayer],
    x: &Matrix,
    labels: &[usize],
    cfg: &FtTrainConfig,
) -> Result<(GridState, usize, usize), Error> {
    let my_global = comm.global_rank_of(comm.rank())?;
    let alive = comm.shrink_exclude(dead, epoch)?;
    let b_global = x.cols();

    // Representative survivor for each old grid row (rows are
    // contiguous in the old member list: Grid::new is row-major).
    let old_pr = old.grid.pr;
    let old_pc = old.grid.pc;
    let mut reps = Vec::with_capacity(old_pr);
    for (i, row) in old.members.chunks(old_pc).enumerate() {
        match row.iter().copied().find(|g| !dead.contains(g)) {
            Some(g) => reps.push(g),
            None => {
                return Err(Error::CollectiveMismatch(format!(
                    "unrecoverable: no surviving replica of weight-shard row {i}"
                )))
            }
        }
    }
    let my_old_i = old
        .members
        .iter()
        .position(|&g| g == my_global)
        .expect("survivor")
        / old_pc;

    // Redistribute: each row's representative serves its checkpoint
    // shard; everyone assembles the full matrices (data plane, so the
    // cost lands on the virtual clock).
    let gather_full = |shards: &[Matrix], d_out: usize, d_in: usize, l: usize| {
        let mine: &[f64] = if reps[my_old_i] == my_global {
            shards[l].as_slice()
        } else {
            &[]
        };
        let blocks = allgatherv_ring_ft(&alive, mine, &cfg.ft)?;
        let mats: Vec<Matrix> = (0..old_pr)
            .map(|i| {
                let idx = alive
                    .members()
                    .iter()
                    .position(|&g| g == reps[i])
                    .expect("representative survives");
                let rows = part_range(d_out, old_pr, i).len();
                Matrix::from_vec(rows, d_in, blocks[idx].clone())
            })
            .collect();
        Ok::<Matrix, Error>(Matrix::vcat(&mats))
    };
    let mut full_w = Vec::with_capacity(layers.len());
    let mut full_v = Vec::with_capacity(layers.len());
    for (l, spec) in layers.iter().enumerate() {
        full_w.push(gather_full(&ck.w, spec.d_out, spec.d_in, l)?);
        if cfg.momentum != 0.0 {
            full_v.push(gather_full(&ck.v, spec.d_out, spec.d_in, l)?);
        }
    }

    // Re-plan with Eq. 8 and rebuild the grid over the survivors.
    let (npr, npc) = plan_grid(wlayers, b_global as f64, alive.size(), &cfg.machine);
    let grid = Grid::new(&alive, npr, npc)?;
    let w: Vec<Matrix> = full_w.iter().map(|m| row_shard(m, npr, grid.i)).collect();
    let v: Vec<Matrix> = if cfg.momentum != 0.0 {
        full_v.iter().map(|m| row_shard(m, npr, grid.i)).collect()
    } else {
        w.iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect()
    };
    let x_local = col_shard(x, npc, grid.j);
    let labels_local = labels[part_range(b_global, npc, grid.j)].to_vec();
    let members = alive.members().to_vec();
    Ok((
        GridState {
            grid,
            members,
            w,
            v,
            x_local,
            labels_local,
            iter: ck.iter,
        },
        npr,
        npc,
    ))
}

/// Fault-tolerant distributed SGD on an initial `pr × pc` grid under a
/// [`FaultPlan`]. With an inactive plan this computes exactly the same
/// trajectory as [`crate::trainer::train_1p5d`] (for `momentum = 0`).
pub fn train_1p5d_ft(
    net: &Network,
    x: &Matrix,
    labels: &[usize],
    cfg: &FtTrainConfig,
    pr: usize,
    pc: usize,
    plan: FaultPlan,
) -> FtDistResult {
    assert!(cfg.ckpt_every >= 1, "checkpoint period must be >= 1");
    let layers = extract_fc_layers(net);
    let wlayers = net.weighted_layers();
    let b_global = x.cols();
    let model = cfg.machine.net_model();
    let (per_rank, stats) = World::run_with_faults(pr * pc, model, plan, |comm| {
        let my_global = comm.global_rank_of(comm.rank())?;
        // Epoch-0 "shrink" of nothing: gives the training phase its own
        // context namespace, uniform with post-recovery grids.
        let alive0 = comm.shrink_exclude(&[], 0)?;
        let grid = Grid::new(&alive0, pr, pc)?;
        let full_weights = init_weights(&layers, cfg.seed);
        let w: Vec<Matrix> = full_weights
            .iter()
            .map(|m| row_shard(m, pr, grid.i))
            .collect();
        let v: Vec<Matrix> = w
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        let x_local = col_shard(x, pc, grid.j);
        let labels_local = labels[part_range(b_global, pc, grid.j)].to_vec();
        let mut st = GridState {
            grid,
            members: alive0.members().to_vec(),
            w,
            v,
            x_local,
            labels_local,
            iter: 0,
        };
        let mut ckpt_cur = Checkpoint {
            iter: 0,
            w: st.w.clone(),
            v: st.v.clone(),
        };
        let mut ckpt_prev = ckpt_cur.clone();
        comm.record_checkpoint_words(ckpt_cur.words());

        let mut aborted = false;
        let mut excluded: Vec<usize> = Vec::new();
        let mut losses: Vec<f64> = Vec::new();
        let mut recoveries: Vec<RecoveryReport> = Vec::new();
        let mut iter_comm: Vec<f64> = Vec::new();

        loop {
            // --- agreement round (control plane, free in virtual time) ---
            let round = comm.fault_sync(encode_round(st.iter, ckpt_cur.iter, aborted))?;
            let mut dead: Vec<usize> = Vec::new();
            let mut any_abort = false;
            let mut min_ckpt = usize::MAX;
            for (member, slot) in round.iter().enumerate() {
                match slot {
                    None => dead.push(comm.members()[member]),
                    Some(bytes) => {
                        let (_, ck, ab) = decode_round(bytes);
                        any_abort |= ab;
                        min_ckpt = min_ckpt.min(ck);
                    }
                }
            }
            let newly_dead = dead.iter().any(|g| !excluded.contains(g));

            if newly_dead || any_abort {
                // --- recovery attempt (transactional) ---
                let t0 = comm.now();
                excluded = dead.clone();
                comm.advance_fault_epoch();
                let epoch = comm.fault_epoch();
                comm.align_split_seq(epoch * 1000);
                let target = min_ckpt;
                let ck = if ckpt_cur.iter == target {
                    ckpt_cur.clone()
                } else {
                    assert_eq!(
                        ckpt_prev.iter, target,
                        "rollback target must be one of the two retained checkpoints"
                    );
                    ckpt_prev.clone()
                };
                let attempt = attempt_recovery(
                    comm, epoch, &excluded, &st, &ck, &layers, &wlayers, x, labels, cfg,
                );
                let ok = match &attempt {
                    Ok(_) => true,
                    Err(e) if recoverable(e, my_global) => false,
                    // An unrecoverable verdict is derived from common
                    // knowledge, so every survivor returns it together.
                    Err(e) => return Err(e.clone()),
                };
                // --- confirmation round: commit only if every survivor
                // succeeded and nobody died meanwhile ---
                let confirm = comm.fault_sync(vec![ok as u8])?;
                let all_ok = confirm.iter().enumerate().all(|(member, slot)| {
                    let g = comm.members()[member];
                    match slot {
                        Some(b) => b == &[1],
                        None => excluded.contains(&g),
                    }
                });
                comm.record_recovery_secs(comm.now() - t0);
                if all_ok {
                    let (new_state, npr, npc) = attempt.expect("ok implies state");
                    st = new_state;
                    ckpt_cur = Checkpoint {
                        iter: st.iter,
                        w: st.w.clone(),
                        v: st.v.clone(),
                    };
                    ckpt_prev = ckpt_cur.clone();
                    losses.truncate(st.iter);
                    iter_comm.clear();
                    aborted = false;
                    recoveries.push(RecoveryReport {
                        epoch,
                        rollback_iter: st.iter,
                        dead: excluded.clone(),
                        pr: npr,
                        pc: npc,
                        measured_secs: comm.now() - t0,
                        analytic_comm_per_iter: integrated_model_batch(
                            &wlayers,
                            b_global as f64,
                            npr,
                            npc,
                        )
                        .seconds(&cfg.machine),
                    });
                } else {
                    aborted = true;
                }
                continue;
            }

            if st.iter >= cfg.iters {
                break;
            }

            // --- one training iteration ---
            let comm_before = comm.clock().comm;
            match run_iteration(
                &st.grid,
                &layers,
                &mut st.w,
                &mut st.v,
                &st.x_local,
                &st.labels_local,
                b_global,
                cfg,
            ) {
                Ok(global_loss) => {
                    losses.push(global_loss);
                    st.iter += 1;
                    iter_comm.push(comm.clock().comm - comm_before);
                    if st.iter % cfg.ckpt_every == 0 && st.iter < cfg.iters {
                        ckpt_prev = ckpt_cur;
                        ckpt_cur = Checkpoint {
                            iter: st.iter,
                            w: st.w.clone(),
                            v: st.v.clone(),
                        };
                        comm.record_checkpoint_words(ckpt_cur.words());
                    }
                }
                Err(e) if recoverable(&e, my_global) => aborted = true,
                Err(e) => return Err(e),
            }
        }

        let comm_secs_per_iter = if iter_comm.is_empty() {
            0.0
        } else {
            iter_comm.iter().sum::<f64>() / iter_comm.len() as f64
        };
        Ok(FtRankOutcome {
            i: st.grid.i,
            j: st.grid.j,
            pr: st.grid.pr,
            pc: st.grid.pc,
            losses,
            weight_shards: st.w,
            recoveries,
            comm_secs_per_iter,
        })
    });
    FtDistResult {
        pr0: pr,
        pc0: pc,
        per_rank,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{synthetic_data, train_1p5d, TrainConfig};
    use dnn::zoo::mlp_tiny;

    fn cfg(iters: usize) -> FtTrainConfig {
        FtTrainConfig {
            lr: 0.3,
            iters,
            seed: 7,
            ckpt_every: 2,
            ft: FtConfig::new(10.0).with_attempts(2).with_backoff(0.5),
            machine: MachineModel::cori_knl(),
            ..FtTrainConfig::default()
        }
    }

    fn max_weight_diff(a: &[Matrix], b: &[Matrix]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.max_abs_diff(y))
            .fold(0.0, f64::max)
    }

    #[test]
    fn fault_free_run_matches_plain_trainer_exactly() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let plain = train_1p5d(
            &net,
            &x,
            &labels,
            &TrainConfig {
                lr: c.lr,
                iters: c.iters,
                seed: c.seed,
            },
            2,
            3,
            c.machine.net_model(),
        );
        let ft = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        assert_eq!(ft.survivors().len(), 6);
        assert!(max_weight_diff(&plain.weights(), &ft.weights()) < 1e-12);
        for (a, b) in plain.losses().iter().zip(ft.losses()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert!(ft.stats.total_ckpt_words() > 0, "checkpoints were recorded");
        assert_eq!(ft.stats.max_recovery_secs(), 0.0, "no recovery happened");
    }

    #[test]
    fn corruption_rolls_back_and_replays_to_the_same_result() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // Flip a bit in a data message between two grid neighbours a
        // few iterations in.
        let plan = FaultPlan::new(9).corrupt_nth(1, 2, 40);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "nobody died");
        assert_eq!(faulty.stats.total_corrupt_detected(), 1);
        assert!(faulty.stats.total_aborts() >= 1);
        assert!(
            faulty.stats.max_recovery_secs() > 0.0,
            "rollback was charged"
        );
        // The corrupt payload was discarded, training replayed, and the
        // trajectory is unchanged.
        assert!(max_weight_diff(&clean.weights(), &faulty.weights()) < 1e-12);
        assert_eq!(clean.losses(), faulty.losses());
        let r = &faulty.survivors()[0].recoveries;
        assert_eq!(r.len(), 1);
        assert_eq!(
            (r[0].pr, r[0].pc),
            (2, 3),
            "no shrink for a transient fault"
        );
    }

    #[test]
    fn killed_rank_triggers_shrink_and_training_finishes() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // Rank 4 dies mid-run (virtual time chosen inside training).
        let t_mid = clean.stats.makespan() * 0.5;
        let plan = FaultPlan::new(3).kill(4, t_mid);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert!(
            faulty.per_rank[4].is_err(),
            "the killed rank reports failure"
        );
        let survivors = faulty.survivors();
        assert_eq!(survivors.len(), 5);
        let s = survivors[0];
        assert_eq!(s.recoveries.len(), 1);
        assert_eq!(s.recoveries[0].dead, vec![4]);
        assert_eq!(s.pr * s.pc, 5, "all five survivors form the new grid");
        assert_eq!(s.losses.len(), c.iters, "training completed after recovery");
        // Synchronous SGD replayed from a checkpoint: same trajectory
        // up to reduction-order noise on the reshaped grid.
        for (a, b) in clean.losses().iter().zip(s.losses.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!(faulty.stats.total_failures_detected() > 0);
        assert!(faulty.stats.max_recovery_secs() > 0.0);
    }

    #[test]
    fn plan_grid_prefers_integrated_over_pure_batch_for_big_weights() {
        // A weight-heavy stack: Eq. 8 favours pr > 1 (the ∆W all-reduce
        // shrinks by pr).
        let net = dnn::zoo::mlp("m", &[64, 256, 256, 10]);
        let wl = net.weighted_layers();
        let (pr, pc) = plan_grid(&wl, 16.0, 8, &MachineModel::cori_knl());
        assert_eq!(pr * pc, 8);
        assert!(
            pr > 1,
            "weight-heavy nets want model parallelism, got {pr}x{pc}"
        );
    }
}
