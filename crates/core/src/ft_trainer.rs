//! Fault-tolerant 1.5D training: checkpoint / detect / shrink / replay.
//!
//! [`crate::trainer::train_1p5d`] assumes a reliable machine; this
//! module wraps the same synchronous SGD in a recovery protocol so a
//! [`FaultPlan`] — dropped messages, stragglers, flipped bits, rank
//! deaths — degrades the run instead of hanging or corrupting it:
//!
//! 1. **Checkpointing.** Every `ckpt_every` iterations each rank
//!    snapshots its weight (and momentum) shards; the last *two*
//!    checkpoints are retained because a fault can catch ranks one
//!    iteration apart across a checkpoint boundary. Checkpoint volume
//!    is charged to [`mpsim::RankStats::ckpt_words`].
//! 2. **Detection.** Before every iteration all world ranks run a
//!    control-plane [`Communicator::fault_sync`] round carrying
//!    `(iter, last_ckpt, aborted)`. Death notices make dead members
//!    observable by every survivor in the *same* round (the broadcast
//!    is all-or-nothing), so the survivor set is common knowledge
//!    without extra agreement machinery. During an iteration itself,
//!    faults surface through the fault-tolerant collectives
//!    (`collectives::ft`): deadline-bound receives, checksummed
//!    payloads, and a cascading group-wide abort.
//! 3. **Shrink + re-plan.** Survivors advance the recovery epoch
//!    (staling in-flight aborts), derive the survivor communicator
//!    with the communication-free [`Communicator::shrink_exclude`],
//!    and re-plan the grid: the new `Pr' × Pc'` is the factorization of
//!    the survivor count minimizing the paper's Eq. 8 communication
//!    cost on the configured [`MachineModel`].
//! 4. **Redistribute + replay.** Each old grid row's checkpoint shard
//!    is served by its lowest-ranked survivor and all-gathered over
//!    the data plane (so redistribution is charged on the virtual
//!    clock, recorded in [`mpsim::RankStats::recovery_secs`]); every
//!    survivor re-shards for its new grid position and training
//!    replays from the checkpoint iteration. A weight-shard row with
//!    no surviving replica makes the run unrecoverable.
//!
//! A recovery attempt is *transactional*: survivors build the new
//! grid/weights in temporaries and commit only after a confirmation
//! `fault_sync` round shows every survivor succeeded — a fault during
//! recovery just triggers another attempt with the updated survivor
//! set.

use collectives::ft::{allgatherv_ring_ft, allreduce_ring_ft};
use collectives::{FtConfig, ReduceOp};
use dnn::{Network, WeightedLayer};
use mpsim::fault::checksum;
use mpsim::{
    BitFlip, Communicator, Error, FaultCtx, FaultPlan, TraceConfig, World, WorldStats, WorldTrace,
};
use tensor::activation::softmax_xent;
use tensor::ops::axpy;
use tensor::Matrix;

use distmm::dist::{col_shard, part_range, row_shard};
use distmm::onep5d::{
    backward_dw_deferred_sdc, backward_dx_overlap_sdc, backward_sdc, forward_resume_ft,
    forward_sdc, forward_start_sdc, Grid, SdcCtx,
};
use tensor::matmul::{matmul, matmul_flops};

use crate::cost::integrated_model_batch;
use crate::machine::MachineModel;
use crate::overlap::{FlushSchedule, OverlapPlan};
use crate::trainer::{
    act_backward, apply_act, extract_fc_layers, init_weights, BucketScheduler, FcLayer,
};

/// Configuration for a fault-tolerant training run.
#[derive(Debug, Clone, Copy)]
pub struct FtTrainConfig {
    /// SGD learning rate η.
    pub lr: f64,
    /// Momentum μ (0 reproduces [`crate::trainer::train_1p5d`]'s plain
    /// SGD; μ > 0 adds a velocity buffer that is checkpointed and
    /// redistributed alongside the weights).
    pub momentum: f64,
    /// Number of iterations over the full batch.
    pub iters: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Checkpoint period in iterations (≥ 1). A checkpoint is also
    /// taken at iteration 0, so rollback is always possible.
    pub ckpt_every: usize,
    /// Receive policy for the fault-tolerant collectives.
    pub ft: FtConfig,
    /// Machine used both to drive the simulation (`net_model()`) and to
    /// re-plan the grid with Eq. 8 after a shrink.
    pub machine: MachineModel,
    /// Overlap the ∆W all-reduces with the remaining backward compute
    /// using the non-blocking collectives (the executed Fig. 8 path,
    /// bucketed like [`crate::trainer::train_1p5d_overlap`]); chunk
    /// receives stay deadline-bound and faults still abort group-wide,
    /// so recovery semantics are unchanged. `false` reproduces the
    /// fully blocking iteration.
    pub overlap: bool,
    /// Scheduling plan for the overlapped path (ignored when `overlap`
    /// is off): bucket fusion size, flush priority/polls, ∆X overlap,
    /// and forward prefetch. Two knobs are constrained here relative
    /// to [`crate::trainer::train_1p5d_scheduled`]:
    /// [`OverlapPlan::interleave`] is ignored — the checkpoint/rollback
    /// protocol needs iteration-complete weights, so every bucket is
    /// applied (per bucket, no barrier) before the iteration commits —
    /// and [`OverlapPlan::fwd_prefetch`] is disabled under `abft`,
    /// whose checksums verify whole products, not block-accumulated
    /// ones.
    pub plan: OverlapPlan,
    /// Defend against *silent* data corruption: every local GEMM output
    /// is ABFT checksum-verified (single-element errors repaired in
    /// place, multi-element errors escalated to rollback), and resident
    /// weight shards are audited against a running checksum at every
    /// iteration start (a memory flip escalates to rollback). Scripted
    /// [`FaultPlan`] bit flips are injected regardless of this flag —
    /// the fault exists whether or not anyone defends; `abft` only
    /// decides whether it is caught. A clean run computes bit-identical
    /// weights with `abft` on or off (verification only reads), at the
    /// cost of the checksum FLOPs charged to the virtual clock.
    pub abft: bool,
}

impl Default for FtTrainConfig {
    fn default() -> Self {
        let machine = MachineModel::cori_knl();
        // Deadlines derived from the machine's α–β point (a fixed
        // seconds value that is generous on one network is a hair
        // trigger on another), with per-peer adaptive tightening and
        // speculative re-requests for stragglers.
        let ft = FtConfig::adaptive(&machine.net_model(), 4096).with_attempts(2);
        FtTrainConfig {
            lr: 0.1,
            momentum: 0.0,
            iters: 10,
            seed: 7,
            ckpt_every: 2,
            ft,
            machine,
            overlap: false,
            plan: OverlapPlan::default(),
            abft: false,
        }
    }
}

/// One committed recovery, as observed by a surviving rank (identical
/// on every survivor).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Recovery epoch entered by this recovery.
    pub epoch: u64,
    /// Iteration training rolled back to (the agreed checkpoint).
    pub rollback_iter: usize,
    /// Cumulative dead global ranks at this recovery.
    pub dead: Vec<usize>,
    /// Previously-dead ranks re-admitted (rejoined) by this recovery.
    pub rejoined: Vec<usize>,
    /// New grid extents after the shrink (or regrow).
    pub pr: usize,
    /// New grid extents after the shrink (or regrow).
    pub pc: usize,
    /// Virtual seconds this rank spent in the committed attempt
    /// (epoch bump through commit: re-plan, redistribution, re-shard).
    pub measured_secs: f64,
    /// Cumulative exposed wait on non-blocking collective drains
    /// ([`mpsim::RankStats::comm_wait_secs`]) at the time of this
    /// recovery — a diagnostic for how overlap and fault recovery
    /// interact (0 unless [`FtTrainConfig::overlap`] is on).
    pub comm_wait_secs: f64,
    /// Eq. 8 per-iteration communication seconds on the shrunk grid —
    /// the analytic degraded-mode cost to compare with
    /// [`FtRankOutcome::comm_secs_per_iter`].
    pub analytic_comm_per_iter: f64,
}

/// Per-surviving-rank outcome of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtRankOutcome {
    /// Final grid row (model-shard index).
    pub i: usize,
    /// Final grid column (batch-shard index).
    pub j: usize,
    /// Final grid extents (post-shrink if any recovery happened).
    pub pr: usize,
    /// Final grid extents (post-shrink if any recovery happened).
    pub pc: usize,
    /// *Global* loss before each committed iteration (identical on
    /// every survivor — each iteration ends with a one-word all-reduce
    /// of the loss partials).
    pub losses: Vec<f64>,
    /// Final local weight shards for the final grid.
    pub weight_shards: Vec<Matrix>,
    /// Committed recoveries, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// Measured mean communication seconds per iteration on the final
    /// grid (iterations since the last recovery) — the executed
    /// degraded-mode cost.
    pub comm_secs_per_iter: f64,
    /// Measured mean wall-clock (virtual) seconds per iteration on the
    /// final grid (iterations since the last recovery) — compare the
    /// post-rejoin value against a fault-free run to bound the residual
    /// cost of elasticity.
    pub step_secs_per_iter: f64,
}

/// Outcome of a fault-tolerant distributed run.
#[derive(Debug)]
pub struct FtDistResult {
    /// Initial grid extents.
    pub pr0: usize,
    /// Initial grid extents.
    pub pc0: usize,
    /// Per-rank outcome; `Err` for ranks that died (or were
    /// unrecoverable), indexed by global rank.
    pub per_rank: Vec<Result<FtRankOutcome, Error>>,
    /// Virtual-time, traffic, and fault statistics.
    pub stats: WorldStats,
}

impl FtDistResult {
    /// Surviving ranks' outcomes.
    pub fn survivors(&self) -> Vec<&FtRankOutcome> {
        self.per_rank
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .collect()
    }

    /// Global loss history (identical on every survivor).
    ///
    /// # Panics
    ///
    /// Panics if no rank survived.
    pub fn losses(&self) -> Vec<f64> {
        self.survivors()
            .first()
            .expect("at least one survivor")
            .losses
            .clone()
    }

    /// Assembles the full weight matrices from the final grid's
    /// column-0 shards.
    pub fn weights(&self) -> Vec<Matrix> {
        let survivors = self.survivors();
        let first = survivors.first().expect("at least one survivor");
        let n_layers = first.weight_shards.len();
        (0..n_layers)
            .map(|l| {
                let mut shards: Vec<(usize, Matrix)> = survivors
                    .iter()
                    .filter(|r| r.j == 0)
                    .map(|r| (r.i, r.weight_shards[l].clone()))
                    .collect();
                shards.sort_by_key(|&(i, _)| i);
                Matrix::vcat(&shards.into_iter().map(|(_, m)| m).collect::<Vec<_>>())
            })
            .collect()
    }
}

/// Eq. 8 grid choice for `p` survivors: the divisor pair `(pr, pc)`
/// minimizing the analytic communication time, subject to every rank
/// keeping a non-empty weight and batch shard.
pub fn plan_grid(
    layers: &[WeightedLayer],
    b: f64,
    p: usize,
    machine: &MachineModel,
) -> (usize, usize) {
    crate::cost::best_grid(layers, b, p, machine)
}

/// Faults are handled by abort-and-recover; anything else — including
/// this rank's own scripted death — is fatal for the rank.
fn recoverable(e: &Error, my_global: usize) -> bool {
    match e {
        Error::Timeout { .. }
        | Error::Corrupted { .. }
        | Error::SilentCorruption { .. }
        | Error::Aborted { .. } => true,
        Error::RankFailed { rank } | Error::Unreachable { rank } => *rank != my_global,
        _ => false,
    }
}

const FLAG_ABORTED: u8 = 1;
const FLAG_HAS_STATE: u8 = 2;

/// What a live rank reports in each agreement round.
struct RoundMsg {
    iter: usize,
    last_ckpt: usize,
    aborted: bool,
    /// Whether this rank holds committed training state. Re-admitted
    /// rejoiners report `false` until a recovery commits, and their
    /// `last_ckpt` is excluded from the rollback-target minimum.
    has_state: bool,
    /// Excluded ranks whose scripted rejoin time has passed on this
    /// rank's clock. The union over the round is the admission set —
    /// identical on every member, so admission is common knowledge.
    ready: Vec<usize>,
}

fn encode_round(m: &RoundMsg) -> Vec<u8> {
    let mut v = Vec::with_capacity(25 + 8 * m.ready.len());
    v.extend_from_slice(&(m.iter as u64).to_le_bytes());
    v.extend_from_slice(&(m.last_ckpt as u64).to_le_bytes());
    v.push(((m.aborted as u8) * FLAG_ABORTED) | ((m.has_state as u8) * FLAG_HAS_STATE));
    v.extend_from_slice(&(m.ready.len() as u64).to_le_bytes());
    for &g in &m.ready {
        v.extend_from_slice(&(g as u64).to_le_bytes());
    }
    v
}

fn read_u64(b: &[u8], at: &mut usize) -> u64 {
    let v = u64::from_le_bytes(b[*at..*at + 8].try_into().expect("u64 field"));
    *at += 8;
    v
}

fn read_list(b: &[u8], at: &mut usize) -> Vec<usize> {
    let n = read_u64(b, at) as usize;
    (0..n).map(|_| read_u64(b, at) as usize).collect()
}

fn decode_round(b: &[u8]) -> RoundMsg {
    if b.len() < 25 {
        // A transiently desynchronized peer (e.g. around a partition
        // heal racing an agreement round) can deliver bytes from a
        // different protocol step. Read it as an abort signal: the
        // extra recovery round re-aligns the counters instead of
        // panicking on a short buffer.
        return RoundMsg {
            iter: 0,
            last_ckpt: usize::MAX,
            aborted: true,
            has_state: false,
            ready: Vec::new(),
        };
    }
    let mut at = 0;
    let iter = read_u64(b, &mut at) as usize;
    let last_ckpt = read_u64(b, &mut at) as usize;
    let flags = b[at];
    at += 1;
    let ready = read_list(b, &mut at);
    RoundMsg {
        iter,
        last_ckpt,
        aborted: flags & FLAG_ABORTED != 0,
        has_state: flags & FLAG_HAS_STATE != 0,
        ready,
    }
}

/// Payload of the echo round: the global ranks whose presence-round
/// message this rank received (count-prefixed u64 list).
fn encode_echo(heard: &[usize]) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + 8 * heard.len());
    v.extend_from_slice(&(heard.len() as u64).to_le_bytes());
    for &g in heard {
        v.extend_from_slice(&(g as u64).to_le_bytes());
    }
    v
}

fn decode_echo(b: &[u8]) -> Vec<usize> {
    if b.len() < 8 {
        return Vec::new();
    }
    let n = u64::from_le_bytes(b[0..8].try_into().expect("count")) as usize;
    if b.len() < 8 + 8 * n {
        // Cross-protocol bytes from a desynchronized peer: an empty
        // echo simply keeps that peer out of the bidirectional
        // fragment for this round.
        return Vec::new();
    }
    let mut at = 0;
    read_list(b, &mut at)
}

/// Control tag carrying welcome messages to re-admitted ranks, far
/// above the fault-sync tag range.
const WELCOME_TAG: u64 = (1 << 48) + (1 << 20);

/// The state snapshot survivors hand a re-admitted rank so it can enter
/// the in-progress recovery epoch as if it had been present: every
/// sender's copy is byte-identical (all fields are common knowledge),
/// so the real-time race over which welcome arrives first is harmless.
#[derive(Debug, Clone, PartialEq)]
struct Welcome {
    /// Recovery epoch the survivors just entered.
    epoch: u64,
    /// Survivors' fault-sync round counter after the admission round.
    seq: u64,
    /// Agreed rollback iteration.
    target: usize,
    /// Extents of the last committed grid.
    old_pr: usize,
    /// Extents of the last committed grid.
    old_pc: usize,
    /// Ranks still excluded after this admission.
    excluded: Vec<usize>,
    /// Ranks admitted but not yet holding state (this rank included).
    stateless: Vec<usize>,
    /// Members of the last committed grid, in grid row-major order.
    old_members: Vec<usize>,
    /// Global loss history (identical on every survivor).
    losses: Vec<f64>,
}

fn encode_welcome(w: &Welcome) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(&w.epoch.to_le_bytes());
    v.extend_from_slice(&w.seq.to_le_bytes());
    v.extend_from_slice(&(w.target as u64).to_le_bytes());
    v.extend_from_slice(&(w.old_pr as u64).to_le_bytes());
    v.extend_from_slice(&(w.old_pc as u64).to_le_bytes());
    for list in [&w.excluded, &w.stateless, &w.old_members] {
        v.extend_from_slice(&(list.len() as u64).to_le_bytes());
        for &g in list {
            v.extend_from_slice(&(g as u64).to_le_bytes());
        }
    }
    v.extend_from_slice(&(w.losses.len() as u64).to_le_bytes());
    for &l in &w.losses {
        v.extend_from_slice(&l.to_le_bytes());
    }
    v
}

fn decode_welcome(b: &[u8]) -> Welcome {
    let mut at = 0;
    let epoch = read_u64(b, &mut at);
    let seq = read_u64(b, &mut at);
    let target = read_u64(b, &mut at) as usize;
    let old_pr = read_u64(b, &mut at) as usize;
    let old_pc = read_u64(b, &mut at) as usize;
    let excluded = read_list(b, &mut at);
    let stateless = read_list(b, &mut at);
    let old_members = read_list(b, &mut at);
    let n = read_u64(b, &mut at) as usize;
    let losses = (0..n)
        .map(|_| {
            let v = f64::from_le_bytes(b[at..at + 8].try_into().expect("loss"));
            at += 8;
            v
        })
        .collect();
    Welcome {
        epoch,
        seq,
        target,
        old_pr,
        old_pc,
        excluded,
        stateless,
        old_members,
        losses,
    }
}

/// Blocks a revived rank until a welcome for a *new* epoch arrives
/// (welcomes from admissions in a previous life of this rank carry an
/// epoch it has already seen and are skipped).
fn wait_welcome(comm: &Communicator) -> Result<Welcome, Error> {
    loop {
        let bytes = comm.await_control_any(WELCOME_TAG)?;
        let w = decode_welcome(&bytes);
        if w.epoch > comm.fault_epoch() {
            return Ok(w);
        }
    }
}

/// A consistent snapshot a rank can roll back to: shards are laid out
/// for the grid that was current when the checkpoint was taken.
#[derive(Clone)]
struct Checkpoint {
    iter: usize,
    w: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Checkpoint {
    fn words(&self) -> u64 {
        self.w.iter().chain(&self.v).map(|m| m.len() as u64).sum()
    }
}

/// One synchronous training iteration on the current grid with
/// fault-tolerant collectives. Returns the *global* loss (identical on
/// every rank of the grid). `iter` names the iteration for the SDC
/// layer: scripted compute bit flips target `(rank, iter, op)` triples,
/// and — with [`FtTrainConfig::abft`] — every local GEMM is
/// checksum-verified under the same numbering.
#[allow(clippy::too_many_arguments)]
fn run_iteration(
    grid: &Grid,
    layers: &[FcLayer],
    w: &mut [Matrix],
    v: &mut [Matrix],
    x_local: &Matrix,
    labels_local: &[usize],
    b_global: usize,
    iter: u64,
    cfg: &FtTrainConfig,
) -> Result<f64, Error> {
    let b_local = x_local.cols();
    let sdc = SdcCtx::new(iter, cfg.abft);
    // Forward. Prefetch (when enabled, overlapping, not under ABFT,
    // and a column ring exists) pipelines each layer's all-gather
    // behind per-block activation and the next layer's partial
    // accumulation; chunk receives stay deadline-bound, so fault
    // detection and group abort are unchanged. Note the accumulated
    // partials of layers ≥ 1 are never one monolithic GEMM, so they
    // carry no per-GEMM SDC injection/verification op — which is why
    // ABFT forces this path off.
    let prefetch = cfg.overlap && cfg.plan.fwd_prefetch && !cfg.abft && grid.pr > 1;
    let mut inputs = vec![x_local.clone()];
    let mut pres = Vec::with_capacity(layers.len());
    {
        let _fwd = grid.row_comm.trace_span("trainer", "forward", &[]);
        if prefetch {
            let mut pf = forward_start_sdc(grid, &w[0], x_local, &cfg.ft, &sdc)?;
            for idx in 0..layers.len() {
                let _layer =
                    grid.row_comm
                        .trace_span("trainer", "layer_fwd", &[("layer", idx as f64)]);
                let next = idx + 1;
                let l = &layers[idx];
                let mut acc = if next < layers.len() {
                    Some(Matrix::zeros(w[next].rows(), b_local))
                } else {
                    None
                };
                let mut pre_blocks: Vec<Option<Matrix>> = vec![None; grid.pr];
                let mut post_blocks: Vec<Option<Matrix>> = vec![None; grid.pr];
                while let Some((src, block)) = pf.next_block()? {
                    let post = apply_act(l.act, &block);
                    if let Some(acc) = acc.as_mut() {
                        let crange = part_range(l.d_out, grid.pr, src);
                        let wcols = w[next].col_block(crange.start, crange.end);
                        grid.col_comm.advance_flops(matmul_flops(
                            wcols.rows(),
                            wcols.cols(),
                            b_local,
                        ));
                        let prod = matmul(&wcols, &post);
                        axpy(1.0, prod.as_slice(), acc.as_mut_slice());
                    }
                    pre_blocks[src] = Some(block);
                    post_blocks[src] = Some(post);
                }
                let pre = Matrix::vcat(
                    &pre_blocks
                        .into_iter()
                        .map(|m| m.expect("all blocks delivered"))
                        .collect::<Vec<_>>(),
                );
                let post = Matrix::vcat(
                    &post_blocks
                        .into_iter()
                        .map(|m| m.expect("all blocks delivered"))
                        .collect::<Vec<_>>(),
                );
                pres.push(pre);
                inputs.push(post);
                if let Some(acc) = acc {
                    pf = forward_resume_ft(grid, acc, &cfg.ft)?;
                }
            }
        } else {
            for (idx, (l, wl)) in layers.iter().zip(w.iter()).enumerate() {
                let _layer =
                    grid.row_comm
                        .trace_span("trainer", "layer_fwd", &[("layer", idx as f64)]);
                let pre = forward_sdc(grid, wl, inputs.last().expect("input"), &cfg.ft, &sdc)?;
                let post = apply_act(l.act, &pre);
                pres.push(pre);
                inputs.push(post);
            }
        }
    }
    let logits = inputs.last().expect("logits");
    let (loss_local, mut grad) = softmax_xent(logits, labels_local);
    let scale = b_local as f64 / b_global as f64;
    for g in grad.as_mut_slice() {
        *g *= scale;
    }
    // Global loss: the partials of one grid row sum to the global loss
    // (rows hold replicas), so a one-word all-reduce over the row group
    // gives every rank the same number — and doubles as a per-iteration
    // liveness probe of the row group.
    let mut lbuf = [loss_local * scale];
    allreduce_ring_ft(&grid.row_comm, &mut lbuf, ReduceOp::Sum, &cfg.ft)?;
    // Backward.
    let _bwd = grid.row_comm.trace_span("trainer", "backward", &[]);
    let mut dy = grad;
    if cfg.overlap {
        // Executed overlap: ∆W partials are bucketed and their
        // row-group sums launched non-blocking (deadline-bound chunk
        // receives, group abort on faults) while backprop continues.
        // Priority scheduling polls a chunk of the deepest in-flight
        // bucket after each layer; the drain stays within the
        // iteration (launch order, applying per bucket as each wait
        // completes) so the committed weights are always
        // iteration-complete for checkpoint/rollback — the
        // cross-iteration interleave knob is deliberately not honored
        // here.
        let mut sched = BucketScheduler::new(
            &grid.row_comm,
            cfg.plan.bucket_words,
            Some(cfg.ft),
            cfg.plan.schedule == FlushSchedule::Priority,
        );
        for (idx, l) in layers.iter().enumerate().rev() {
            let _layer = grid
                .row_comm
                .trace_span("trainer", "layer_bwd", &[("layer", idx as f64)]);
            dy = act_backward(l.act, &pres[idx], &inputs[idx + 1], &dy);
            let (dw, dx) = if cfg.plan.dx_overlap {
                backward_dx_overlap_sdc(grid, &w[idx], &inputs[idx], &dy, &cfg.ft, &sdc)?
            } else {
                backward_dw_deferred_sdc(grid, &w[idx], &inputs[idx], &dy, &cfg.ft, &sdc)?
            };
            sched.push(idx, &dw)?;
            sched.poll()?;
            dy = dx;
        }
        let _step = grid.row_comm.trace_span("trainer", "optimizer_step", &[]);
        sched.drain_all(|idx, summed| {
            if cfg.momentum != 0.0 {
                for (vi, &di) in v[idx].as_mut_slice().iter_mut().zip(summed) {
                    *vi = cfg.momentum * *vi + di;
                }
                axpy(-cfg.lr, v[idx].as_slice(), w[idx].as_mut_slice());
            } else {
                axpy(-cfg.lr, summed, w[idx].as_mut_slice());
            }
        })?;
    } else {
        for (idx, l) in layers.iter().enumerate().rev() {
            let _layer = grid
                .row_comm
                .trace_span("trainer", "layer_bwd", &[("layer", idx as f64)]);
            dy = act_backward(l.act, &pres[idx], &inputs[idx + 1], &dy);
            let (dw, dx) = backward_sdc(grid, &w[idx], &inputs[idx], &dy, &cfg.ft, &sdc)?;
            if cfg.momentum != 0.0 {
                for (vi, di) in v[idx].as_mut_slice().iter_mut().zip(dw.as_slice()) {
                    *vi = cfg.momentum * *vi + di;
                }
                axpy(-cfg.lr, v[idx].as_slice(), w[idx].as_mut_slice());
            } else {
                axpy(-cfg.lr, dw.as_slice(), w[idx].as_mut_slice());
            }
            dy = dx;
        }
    }
    Ok(lbuf[0])
}

/// The state a committed recovery replaces atomically.
struct GridState {
    grid: Grid,
    members: Vec<usize>,
    w: Vec<Matrix>,
    v: Vec<Matrix>,
    x_local: Matrix,
    labels_local: Vec<usize>,
    iter: usize,
    /// Running FNV checksum over the weight shards, refreshed after
    /// every committed weight change. ABFT cannot see corruption of
    /// *resident* state (its checksums cover one GEMM), so the trainer
    /// audits `w` against this at every iteration start: a mismatch
    /// means a memory bit flip landed between iterations and escalates
    /// to rollback.
    wsum: u64,
}

/// Order-sensitive checksum over all weight shards.
fn weights_checksum(w: &[Matrix]) -> u64 {
    w.iter().fold(0xcbf2_9ce4_8422_2325, |h, m| {
        (h ^ checksum(m.as_slice())).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Applies scripted memory bit flips to the concatenated weight-shard
/// view: each flip targets word `index mod total_params`, advancing
/// past words already hit in this batch (mirrors
/// [`mpsim::apply_flips`], but across the shard list).
fn apply_memory_flips(w: &mut [Matrix], flips: &[BitFlip]) {
    let total: usize = w.iter().map(|m| m.len()).sum();
    if total == 0 {
        return;
    }
    let mut hit: Vec<usize> = Vec::new();
    for f in flips {
        let mut at = (f.index % total as u64) as usize;
        while hit.contains(&at) && hit.len() < total {
            at = (at + 1) % total;
        }
        hit.push(at);
        let mut rem = at;
        for m in w.iter_mut() {
            if rem < m.len() {
                let s = m.as_mut_slice();
                s[rem] = f64::from_bits(s[rem].to_bits() ^ (1u64 << f.bit));
                break;
            }
            rem -= m.len();
        }
    }
}

/// One recovery attempt (fallible part): shrink (or regrow, when
/// `dead` no longer contains re-admitted ranks), re-plan, redistribute
/// the agreed checkpoint, re-shard. Committed by the caller only after
/// a confirmation round. `old_members` is the last *committed* grid in
/// row-major order; `stateless` are live participants without state
/// (re-admitted rejoiners), who contribute nothing to redistribution
/// and must not be picked as checkpoint representatives.
#[allow(clippy::too_many_arguments)]
fn attempt_recovery(
    comm: &Communicator,
    epoch: u64,
    dead: &[usize],
    old_pr: usize,
    old_pc: usize,
    old_members: &[usize],
    stateless: &[usize],
    ck: &Checkpoint,
    layers: &[FcLayer],
    wlayers: &[WeightedLayer],
    x: &Matrix,
    labels: &[usize],
    cfg: &FtTrainConfig,
) -> Result<(GridState, usize, usize), Error> {
    let my_global = comm.global_rank_of(comm.rank())?;
    let alive = comm.shrink_exclude(dead, epoch)?;
    let b_global = x.cols();

    // Representative holder of each old grid row's checkpoint shard
    // (rows are contiguous in the old member list: Grid::new is
    // row-major). A rank that died and was re-admitted within the same
    // recovery window is alive but stateless — never a representative.
    let mut reps = Vec::with_capacity(old_pr);
    for (i, row) in old_members.chunks(old_pc).enumerate() {
        match row
            .iter()
            .copied()
            .find(|g| !dead.contains(g) && !stateless.contains(g))
        {
            Some(g) => reps.push(g),
            None => {
                return Err(Error::CollectiveMismatch(format!(
                    "unrecoverable: no surviving replica of weight-shard row {i}"
                )))
            }
        }
    }
    // A joiner is not in the old member list and serves nothing.
    let my_old_i = old_members
        .iter()
        .position(|&g| g == my_global)
        .map(|p| p / old_pc);

    // Redistribute: each row's representative serves its checkpoint
    // shard; everyone assembles the full matrices (data plane, so the
    // cost lands on the virtual clock).
    let gather_full = |shards: &[Matrix], d_out: usize, d_in: usize, l: usize| {
        let mine: &[f64] = if my_old_i.is_some_and(|i| reps[i] == my_global) {
            shards[l].as_slice()
        } else {
            &[]
        };
        let blocks = allgatherv_ring_ft(&alive, mine, &cfg.ft)?;
        let mats: Vec<Matrix> = (0..old_pr)
            .map(|i| {
                let idx = alive
                    .members()
                    .iter()
                    .position(|&g| g == reps[i])
                    .expect("representative survives");
                let rows = part_range(d_out, old_pr, i).len();
                Matrix::from_vec(rows, d_in, blocks[idx].clone())
            })
            .collect();
        Ok::<Matrix, Error>(Matrix::vcat(&mats))
    };
    let mut full_w = Vec::with_capacity(layers.len());
    let mut full_v = Vec::with_capacity(layers.len());
    for (l, spec) in layers.iter().enumerate() {
        full_w.push(gather_full(&ck.w, spec.d_out, spec.d_in, l)?);
        if cfg.momentum != 0.0 {
            full_v.push(gather_full(&ck.v, spec.d_out, spec.d_in, l)?);
        }
    }

    // Re-plan with Eq. 8 and rebuild the grid over the survivors.
    let (npr, npc) = plan_grid(wlayers, b_global as f64, alive.size(), &cfg.machine);
    let grid = Grid::new(&alive, npr, npc)?;
    let w: Vec<Matrix> = full_w.iter().map(|m| row_shard(m, npr, grid.i)).collect();
    let v: Vec<Matrix> = if cfg.momentum != 0.0 {
        full_v.iter().map(|m| row_shard(m, npr, grid.i)).collect()
    } else {
        w.iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect()
    };
    let x_local = col_shard(x, npc, grid.j);
    let labels_local = labels[part_range(b_global, npc, grid.j)].to_vec();
    let members = alive.members().to_vec();
    let wsum = weights_checksum(&w);
    Ok((
        GridState {
            grid,
            members,
            w,
            v,
            x_local,
            labels_local,
            iter: ck.iter,
            wsum,
        },
        npr,
        npc,
    ))
}

/// How a rank enters the training loop: from scratch, or mid-run as a
/// revived rank armed with the survivors' welcome.
enum Entry {
    Fresh,
    Rejoin(Welcome),
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One life of one rank: the round/train/recover loop. Returns when
/// training completes or the rank fails; a scripted death surfaces as
/// `RankFailed` on itself, which the caller may turn into a rejoin.
#[allow(clippy::too_many_arguments)]
fn run_rank(
    comm: &Communicator,
    entry: Entry,
    layers: &[FcLayer],
    wlayers: &[WeightedLayer],
    x: &Matrix,
    labels: &[usize],
    cfg: &FtTrainConfig,
    pr0: usize,
    pc0: usize,
) -> Result<FtRankOutcome, Error> {
    let my_global = comm.global_rank_of(comm.rank())?;
    let b_global = x.cols();

    // `member` is the committed grid state; `None` for a re-admitted
    // rank between its welcome and its first committed recovery. The
    // old view (last committed grid, row-major) is what recovery
    // redistributes from.
    let mut member: Option<GridState>;
    let mut ckpt_cur: Checkpoint;
    let mut ckpt_prev: Checkpoint;
    let mut losses: Vec<f64>;
    let mut excluded: Vec<usize>;
    let mut stateless: Vec<usize>;
    let mut aborted: bool;
    let mut old_view: (usize, usize, Vec<usize>);
    // A rejoiner enters mid-epoch: the survivors already ran the
    // agreement round that admitted it, so its first loop pass skips
    // straight to the recovery attempt.
    let mut in_recovery_epoch: bool;

    match entry {
        Entry::Fresh => {
            // Epoch-0 "shrink" of nothing: gives the training phase its
            // own context namespace, uniform with post-recovery grids.
            let alive0 = comm.shrink_exclude(&[], 0)?;
            let grid = Grid::new(&alive0, pr0, pc0)?;
            let full_weights = init_weights(layers, cfg.seed);
            let w: Vec<Matrix> = full_weights
                .iter()
                .map(|m| row_shard(m, pr0, grid.i))
                .collect();
            let v: Vec<Matrix> = w
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect();
            let x_local = col_shard(x, pc0, grid.j);
            let labels_local = labels[part_range(b_global, pc0, grid.j)].to_vec();
            let members = alive0.members().to_vec();
            ckpt_cur = Checkpoint {
                iter: 0,
                w: w.clone(),
                v: v.clone(),
            };
            ckpt_prev = ckpt_cur.clone();
            comm.record_checkpoint_words(ckpt_cur.words());
            comm.trace_instant(
                "trainer",
                "checkpoint",
                &[("iter", 0.0), ("words", ckpt_cur.words() as f64)],
            );
            old_view = (pr0, pc0, members.clone());
            let wsum = weights_checksum(&w);
            member = Some(GridState {
                grid,
                members,
                w,
                v,
                x_local,
                labels_local,
                iter: 0,
                wsum,
            });
            losses = Vec::new();
            excluded = Vec::new();
            stateless = Vec::new();
            aborted = false;
            in_recovery_epoch = false;
        }
        Entry::Rejoin(wlc) => {
            // Sync the protocol counters to the epoch the survivors
            // just entered, clear stale death records (everyone not in
            // the excluded set is live), then behave like any
            // live-but-stateless participant.
            comm.set_fault_epoch(wlc.epoch);
            comm.align_split_seq(wlc.epoch * 1000);
            comm.align_fault_sync_seq(wlc.seq);
            let live: Vec<usize> = (0..comm.size())
                .filter(|r| !wlc.excluded.contains(r))
                .collect();
            comm.readmit(&live);
            member = None;
            ckpt_cur = Checkpoint {
                iter: wlc.target,
                w: Vec::new(),
                v: Vec::new(),
            };
            ckpt_prev = ckpt_cur.clone();
            losses = wlc.losses;
            excluded = wlc.excluded;
            stateless = wlc.stateless;
            aborted = true;
            old_view = (wlc.old_pr, wlc.old_pc, wlc.old_members);
            in_recovery_epoch = true;
        }
    }

    let mut recoveries: Vec<RecoveryReport> = Vec::new();
    let mut iter_comm: Vec<f64> = Vec::new();
    let mut iter_wall: Vec<f64> = Vec::new();
    // Rollback target of the recovery epoch in flight (for a rejoiner,
    // the target its welcome carried).
    let mut ckpt_target: usize = ckpt_cur.iter;

    loop {
        // Unreachability records are a receive-side cache of observed
        // cuts, and the round-union admission can seed them with stale
        // entries: a rank whose clock is still behind the heal gets
        // pulled into the recovery epoch and its in-flight sends arrive
        // severed, so the receiver records the sender unreachable even
        // though the plan's cut is already over. The record then blanks
        // that peer's presence slot in `fault_sync`, keeping it out of
        // the fragment, so no round ever readmits it and the retry loop
        // livelocks with the clock frozen at the heal horizon. The plan
        // is the ground truth here: when `heal_ready` says the cut has
        // healed and the peer is alive, the record is stale — drop it
        // before the presence round so the peer can answer. Excluded
        // ranks are exempt: their re-admission flows through the
        // round-union `ready` vote, which needs the record intact for
        // `heal_ready` to nominate them.
        let stale: Vec<usize> = comm
            .known_unreachable()
            .iter()
            .map(|&(r, _)| r)
            .filter(|&r| comm.heal_ready(r) && !excluded.contains(&r))
            .collect();
        if !stale.is_empty() {
            comm.readmit(&stale);
        }

        let mut do_recovery = in_recovery_epoch;
        if !in_recovery_epoch {
            // --- agreement round (control plane, free in virtual time) ---
            // Re-admission is plan-driven for both exits: a scripted
            // rejoin after a kill, or a healed partition cut.
            let ready: Vec<usize> = excluded
                .iter()
                .copied()
                .filter(|&g| comm.rejoin_ready(g) || comm.heal_ready(g))
                .collect();
            let msg = RoundMsg {
                iter: losses.len(),
                last_ckpt: ckpt_cur.iter,
                aborted,
                has_state: member.is_some(),
                ready,
            };
            let round = comm.fault_sync(encode_round(&msg))?;
            let mut dead: Vec<usize> = Vec::new();
            let mut any_abort = false;
            let mut min_ckpt = usize::MAX;
            let mut admit: Vec<usize> = Vec::new();
            for (slot_idx, slot) in round.iter().enumerate() {
                match slot {
                    None => dead.push(comm.members()[slot_idx]),
                    Some(bytes) => {
                        let m = decode_round(bytes);
                        any_abort |= m.aborted;
                        if m.has_state {
                            min_ckpt = min_ckpt.min(m.last_ckpt);
                        }
                        for g in m.ready {
                            if !admit.contains(&g) {
                                admit.push(g);
                            }
                        }
                    }
                }
            }
            admit.sort_unstable();
            let newly_dead = dead.iter().any(|g| !excluded.contains(g));
            do_recovery = newly_dead || any_abort || !admit.is_empty();

            // --- echo round: bidirectional-fragment agreement ---
            // Every live rank echoes who it heard in the presence round.
            // A peer belongs to this rank's fragment only if traffic
            // flows *both* ways: its message arrived here, and its echo
            // proves this rank's message arrived there. One-way cuts
            // (a rank that can hear but not be heard) thereby resolve to
            // the same verdict on both sides. The round runs
            // unconditionally — conditioning it on the presence verdict
            // would desynchronize the SPMD round counters under
            // asymmetric cuts.
            let heard: Vec<usize> = round
                .iter()
                .enumerate()
                .filter_map(|(idx, s)| s.as_ref().map(|_| comm.members()[idx]))
                .collect();
            let echo = comm.fault_sync(encode_echo(&heard))?;
            let mut fragment: Vec<usize> = Vec::new();
            for (slot_idx, slot) in echo.iter().enumerate() {
                let g = comm.members()[slot_idx];
                if g == my_global {
                    fragment.push(g);
                } else if let Some(bytes) = slot {
                    if heard.contains(&g) && decode_echo(bytes).contains(&my_global) {
                        fragment.push(g);
                    }
                }
            }

            // --- verdict round: fragment closure ---
            // The echo round settles each *pair*, but when a partition
            // activates in the middle of the round the per-sender
            // clocks disagree about whether the cut exists yet: a
            // message that departed just before its sender's clock hit
            // the cut start crosses a link that severs everyone else's.
            // The resulting reachability graph is not transitive, and
            // ranks would commit to overlapping-but-different fragments
            // — then deadlock in the redistribution, each waiting on a
            // participant the other side excluded. So every rank echoes
            // the fragment it computed, and commits only if every
            // member of its fragment computed exactly the same one.
            // Anything else is an inconclusive round: nudge the clock
            // past the activation edge and re-run the agreement. The
            // nudge is what guarantees convergence — the control plane
            // is free in virtual time, so without it the retry would
            // replay the same instant (and the same verdict) forever.
            let verdict = comm.fault_sync(encode_echo(&fragment))?;
            let consistent = fragment.iter().all(|&g| {
                g == my_global
                    || comm
                        .members()
                        .iter()
                        .position(|&m| m == g)
                        .and_then(|idx| verdict[idx].as_ref())
                        .is_some_and(|bytes| decode_echo(bytes) == fragment)
            });
            if !consistent {
                comm.advance_compute(4.0 * cfg.machine.alpha);
                aborted = true;
                continue;
            }

            // A peer inside the fragment answered the presence round
            // and echoed this rank back — traffic flows both ways — so
            // any unreachability record this rank still holds for it is
            // stale: typically a severed tombstone from a sender whose
            // clock was still behind the heal when the round-union
            // admission pulled it into a recovery epoch. Left in place,
            // the record insta-fails every receive from that peer and
            // the retry loop livelocks (the epoch counter climbs while
            // the clock stands still). Clearing is a local decision:
            // the record, like the echo verdict, is per-rank state.
            let stale: Vec<usize> = comm
                .known_unreachable()
                .iter()
                .map(|&(r, _)| r)
                .filter(|r| fragment.contains(r))
                .collect();
            if !stale.is_empty() {
                comm.readmit(&stale);
            }

            // --- quorum rule: split-brain safety ---
            // The fragment keeps training only if it holds a majority of
            // the last-committed membership (deterministic tie-break on
            // the lowest member). A minority fragment parks: it keeps
            // its checkpoints, performs no weight update and no Eq. 8
            // shrink, goes silent behind a Parked marker, and waits at
            // the heal horizon for the majority's welcome.
            let membership = &old_view.2;
            let won = mpsim::has_quorum(&fragment, membership);
            if fragment.len() < membership.len() || !won {
                comm.trace_instant(
                    "quorum",
                    "verdict",
                    &[
                        ("fragment", fragment.len() as f64),
                        ("members", membership.len() as f64),
                        ("won", won as u8 as f64),
                    ],
                );
            }
            if !won {
                // Park fast-forwards to the heal horizon (when finite).
                // The caller inspects the plan: a healed cut turns this
                // into a welcome-wait + rejoin; one that never heals
                // propagates the error.
                let _ = comm.park()?;
                return Err(Error::Unreachable { rank: my_global });
            }

            if do_recovery {
                // --- open a new recovery epoch ---
                excluded = dead
                    .iter()
                    .copied()
                    .filter(|g| !admit.contains(g))
                    .collect();
                comm.advance_fault_epoch();
                let epoch = comm.fault_epoch();
                comm.align_split_seq(epoch * 1000);
                ckpt_target = min_ckpt;
                if !admit.is_empty() {
                    comm.readmit(&admit);
                    for &g in &admit {
                        if !stateless.contains(&g) {
                            stateless.push(g);
                        }
                    }
                    stateless.sort_unstable();
                    // Welcome the admitted ranks into this epoch. All
                    // fields are common knowledge, so every sender's
                    // bytes are identical and the real-time race over
                    // which copy a rejoiner consumes is harmless.
                    let wbytes = encode_welcome(&Welcome {
                        epoch,
                        seq: comm.fault_sync_seq(),
                        target: ckpt_target,
                        old_pr: old_view.0,
                        old_pc: old_view.1,
                        excluded: excluded.clone(),
                        stateless: stateless.clone(),
                        old_members: old_view.2.clone(),
                        losses: losses.clone(),
                    });
                    for &g in &admit {
                        comm.send_control(g, WELCOME_TAG, wbytes.clone())?;
                    }
                }
            }
        }
        in_recovery_epoch = false;

        if do_recovery {
            // --- recovery attempt (transactional) ---
            let t0 = comm.now();
            let epoch = comm.fault_epoch();
            let target = ckpt_target;
            let _rec = comm.trace_span("trainer", "recovery", &[("epoch", epoch as f64)]);
            comm.trace_instant("trainer", "rollback", &[("target_iter", target as f64)]);
            let ck = if member.is_some() {
                if ckpt_cur.iter == target {
                    ckpt_cur.clone()
                } else {
                    assert_eq!(
                        ckpt_prev.iter, target,
                        "rollback target must be one of the two retained checkpoints"
                    );
                    ckpt_prev.clone()
                }
            } else {
                // A stateless joiner serves nothing and receives
                // everything in the redistribution.
                Checkpoint {
                    iter: target,
                    w: Vec::new(),
                    v: Vec::new(),
                }
            };
            let attempt = attempt_recovery(
                comm,
                epoch,
                &excluded,
                old_view.0,
                old_view.1,
                &old_view.2,
                &stateless,
                &ck,
                layers,
                wlayers,
                x,
                labels,
                cfg,
            );
            let ok = match &attempt {
                Ok(_) => true,
                Err(e) if recoverable(e, my_global) => false,
                // An unrecoverable verdict is derived from common
                // knowledge, so every survivor returns it together.
                Err(e) => return Err(e.clone()),
            };
            // --- confirmation round: commit only if every participant
            // succeeded and nobody died meanwhile ---
            let confirm = comm.fault_sync(vec![ok as u8])?;
            let all_ok = confirm.iter().enumerate().all(|(slot_idx, slot)| {
                let g = comm.members()[slot_idx];
                match slot {
                    Some(b) => b == &[1],
                    None => excluded.contains(&g),
                }
            });
            comm.record_recovery_secs(comm.now() - t0);
            if all_ok {
                let (new_state, npr, npc) = attempt.expect("ok implies state");
                let rejoined = stateless.clone();
                ckpt_cur = Checkpoint {
                    iter: new_state.iter,
                    w: new_state.w.clone(),
                    v: new_state.v.clone(),
                };
                ckpt_prev = ckpt_cur.clone();
                losses.truncate(new_state.iter);
                old_view = (
                    new_state.grid.pr,
                    new_state.grid.pc,
                    new_state.members.clone(),
                );
                member = Some(new_state);
                iter_comm.clear();
                iter_wall.clear();
                stateless.clear();
                aborted = false;
                recoveries.push(RecoveryReport {
                    epoch,
                    rollback_iter: target,
                    dead: excluded.clone(),
                    rejoined,
                    pr: npr,
                    pc: npc,
                    measured_secs: comm.now() - t0,
                    comm_wait_secs: comm.stats().comm_wait_secs,
                    analytic_comm_per_iter: integrated_model_batch(
                        wlayers,
                        b_global as f64,
                        npr,
                        npc,
                    )
                    .seconds(&cfg.machine),
                });
            } else {
                aborted = true;
            }
            continue;
        }

        let st = member
            .as_mut()
            .expect("a stateless rank always re-enters recovery");
        if st.iter >= cfg.iters {
            break;
        }

        // --- one training iteration ---
        // Communication per iteration is the growth of *transfer* time
        // (blocking receives plus the overlap channel), not of the
        // clock's `comm` component: the latter also absorbs time the
        // rank spends idle at a deadline or waiting out a straggler, so
        // using it would report whole-step time as communication.
        let comm_tally = |c: &mpsim::Communicator| {
            let s = c.stats();
            s.transfer_secs + s.channel_secs
        };
        let comm_before = comm_tally(comm);
        let wall_before = comm.now();
        // --- silent-data-corruption pre-checks ---
        // Scripted memory bit flips land on the resident weight shards
        // between iterations (injected whether or not ABFT is on); the
        // weight audit then compares against the running checksum —
        // ABFT's GEMM checksums cannot see resident-state corruption,
        // so a mismatch escalates straight to rollback. The audit read
        // is charged to the virtual clock (one op per weight word).
        let pre = {
            let flips = comm.take_memory_flips(st.iter as u64);
            if !flips.is_empty() {
                apply_memory_flips(&mut st.w, &flips);
            }
            if cfg.abft {
                let words: usize = st.w.iter().map(|m| m.len()).sum();
                comm.advance_flops(words as f64);
                if weights_checksum(&st.w) != st.wsum {
                    let ctx = FaultCtx {
                        iter: st.iter as u64,
                        op: 0,
                    };
                    comm.record_corrupt_recovered(ctx.iter, ctx.op);
                    let _ = comm.send_abort(my_global);
                    Err(Error::SilentCorruption {
                        rank: my_global,
                        what: "weights",
                        ctx: Some(ctx),
                    })
                } else {
                    Ok(())
                }
            } else {
                Ok(())
            }
        };
        match pre.and_then(|_| {
            run_iteration(
                &st.grid,
                layers,
                &mut st.w,
                &mut st.v,
                &st.x_local,
                &st.labels_local,
                b_global,
                st.iter as u64,
                cfg,
            )
        }) {
            Ok(global_loss) => {
                losses.push(global_loss);
                st.iter += 1;
                st.wsum = weights_checksum(&st.w);
                iter_comm.push(comm_tally(comm) - comm_before);
                iter_wall.push(comm.now() - wall_before);
                if st.iter % cfg.ckpt_every == 0 && st.iter < cfg.iters {
                    ckpt_prev = ckpt_cur;
                    ckpt_cur = Checkpoint {
                        iter: st.iter,
                        w: st.w.clone(),
                        v: st.v.clone(),
                    };
                    comm.record_checkpoint_words(ckpt_cur.words());
                    comm.trace_instant(
                        "trainer",
                        "checkpoint",
                        &[("iter", st.iter as f64), ("words", ckpt_cur.words() as f64)],
                    );
                }
            }
            Err(e) if recoverable(&e, my_global) => aborted = true,
            Err(e) => return Err(e),
        }
    }

    let st = member.expect("loop exits only with committed state");
    Ok(FtRankOutcome {
        i: st.grid.i,
        j: st.grid.j,
        pr: st.grid.pr,
        pc: st.grid.pc,
        losses,
        weight_shards: st.w,
        recoveries,
        comm_secs_per_iter: mean(&iter_comm),
        step_secs_per_iter: mean(&iter_wall),
    })
}

/// Fault-tolerant distributed SGD on an initial `pr × pc` grid under a
/// [`FaultPlan`]. With an inactive plan this computes exactly the same
/// trajectory as [`crate::trainer::train_1p5d`] (for `momentum = 0`).
///
/// Membership is **elastic**: a rank killed by the plan that also has a
/// scripted [`FaultPlan::rejoin`] revives at its rejoin time, announces
/// itself, and is re-admitted at the next fault-epoch boundary — the
/// survivors re-plan the grid over the enlarged member set with Eq. 8
/// (regrowing toward the original extents), redistribute checkpoint
/// state to it, and training replays from the agreed checkpoint.
pub fn train_1p5d_ft(
    net: &Network,
    x: &Matrix,
    labels: &[usize],
    cfg: &FtTrainConfig,
    pr: usize,
    pc: usize,
    plan: FaultPlan,
) -> FtDistResult {
    train_1p5d_ft_traced(net, x, labels, cfg, pr, pc, plan, TraceConfig::disabled()).0
}

/// [`train_1p5d_ft`] with per-rank event tracing: the returned
/// [`WorldTrace`] shows fault instants (drops, corruption, deaths),
/// `recovery`/`rollback`/`checkpoint` trainer events, and dead-gap
/// spans for revived ranks alongside the usual compute/comm timeline.
#[allow(clippy::too_many_arguments)]
pub fn train_1p5d_ft_traced(
    net: &Network,
    x: &Matrix,
    labels: &[usize],
    cfg: &FtTrainConfig,
    pr: usize,
    pc: usize,
    plan: FaultPlan,
    trace: TraceConfig,
) -> (FtDistResult, WorldTrace) {
    assert!(cfg.ckpt_every >= 1, "checkpoint period must be >= 1");
    let layers = extract_fc_layers(net);
    let wlayers = net.weighted_layers();
    let model = cfg.machine.net_model();
    let (per_rank, stats, traces) = World::run_faults_traced(pr * pc, model, plan, trace, |comm| {
        let my_global = comm.global_rank_of(comm.rank())?;
        let mut entry = Entry::Fresh;
        loop {
            match run_rank(comm, entry, &layers, &wlayers, x, labels, cfg, pr, pc) {
                // A scripted death with a scripted rejoin: revive at
                // the rejoin time, wait for the survivors' welcome,
                // and re-enter the loop stateless.
                Err(Error::RankFailed { rank }) if rank == my_global && comm.revive().is_some() => {
                    entry = Entry::Rejoin(wait_welcome(comm)?);
                }
                // A parked minority fragment: `run_rank` already
                // fast-forwarded to the heal horizon inside
                // `Communicator::park`. If the cut heals, wait for the
                // majority's welcome and re-enter stateless (the park
                // kept checkpoints, but the majority may have re-planned
                // the grid arbitrarily in between). A cut that never
                // heals leaves the rank permanently outside — surface
                // the error.
                Err(Error::Unreachable { rank }) if rank == my_global => {
                    match comm.heal_horizon() {
                        Some(h) if h.is_infinite() => return Err(Error::Unreachable { rank }),
                        _ => entry = Entry::Rejoin(wait_welcome(comm)?),
                    }
                }
                other => return other,
            }
        }
    });
    (
        FtDistResult {
            pr0: pr,
            pc0: pc,
            per_rank,
            stats,
        },
        traces,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{synthetic_data, train_1p5d, TrainConfig};
    use dnn::zoo::mlp_tiny;

    fn cfg(iters: usize) -> FtTrainConfig {
        FtTrainConfig {
            lr: 0.3,
            iters,
            seed: 7,
            ckpt_every: 2,
            ft: FtConfig::fixed(10.0).with_attempts(2).with_backoff(0.5),
            machine: MachineModel::cori_knl(),
            ..FtTrainConfig::default()
        }
    }

    fn max_weight_diff(a: &[Matrix], b: &[Matrix]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.max_abs_diff(y))
            .fold(0.0, f64::max)
    }

    #[test]
    fn fault_free_run_matches_plain_trainer_exactly() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let plain = train_1p5d(
            &net,
            &x,
            &labels,
            &TrainConfig {
                lr: c.lr,
                iters: c.iters,
                seed: c.seed,
            },
            2,
            3,
            c.machine.net_model(),
        );
        let ft = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        assert_eq!(ft.survivors().len(), 6);
        assert!(max_weight_diff(&plain.weights(), &ft.weights()) < 1e-12);
        for (a, b) in plain.losses().iter().zip(ft.losses()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert!(ft.stats.total_ckpt_words() > 0, "checkpoints were recorded");
        assert_eq!(ft.stats.max_recovery_secs(), 0.0, "no recovery happened");
    }

    #[test]
    fn corruption_rolls_back_and_replays_to_the_same_result() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // Flip a bit in a data message between two grid neighbours a
        // few iterations in.
        let plan = FaultPlan::new(9).corrupt_nth(1, 2, 40);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "nobody died");
        assert_eq!(faulty.stats.total_corrupt_detected(), 1);
        assert!(faulty.stats.total_aborts() >= 1);
        assert!(
            faulty.stats.max_recovery_secs() > 0.0,
            "rollback was charged"
        );
        // The corrupt payload was discarded, training replayed, and the
        // trajectory is unchanged.
        assert!(max_weight_diff(&clean.weights(), &faulty.weights()) < 1e-12);
        assert_eq!(clean.losses(), faulty.losses());
        let r = &faulty.survivors()[0].recoveries;
        assert_eq!(r.len(), 1);
        assert_eq!(
            (r[0].pr, r[0].pc),
            (2, 3),
            "no shrink for a transient fault"
        );
    }

    #[test]
    fn killed_rank_triggers_shrink_and_training_finishes() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // Rank 4 dies mid-run (virtual time chosen inside training).
        let t_mid = clean.stats.makespan() * 0.5;
        let plan = FaultPlan::new(3).kill(4, t_mid);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert!(
            faulty.per_rank[4].is_err(),
            "the killed rank reports failure"
        );
        let survivors = faulty.survivors();
        assert_eq!(survivors.len(), 5);
        let s = survivors[0];
        assert_eq!(s.recoveries.len(), 1);
        assert_eq!(s.recoveries[0].dead, vec![4]);
        assert_eq!(s.pr * s.pc, 5, "all five survivors form the new grid");
        assert_eq!(s.losses.len(), c.iters, "training completed after recovery");
        // Synchronous SGD replayed from a checkpoint: same trajectory
        // up to reduction-order noise on the reshaped grid.
        for (a, b) in clean.losses().iter().zip(s.losses.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!(faulty.stats.total_failures_detected() > 0);
        assert!(faulty.stats.max_recovery_secs() > 0.0);
    }

    #[test]
    fn overlap_fault_free_matches_blocking_ft_trainer() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        for momentum in [0.0, 0.9] {
            let c = FtTrainConfig { momentum, ..cfg(6) };
            let blocking = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
            let oc = FtTrainConfig { overlap: true, ..c };
            let over = train_1p5d_ft(&net, &x, &labels, &oc, 2, 3, FaultPlan::default());
            assert_eq!(over.survivors().len(), 6);
            // Bucketed fused all-reduces change the reduction order by
            // at most a few ulps per step.
            assert!(max_weight_diff(&blocking.weights(), &over.weights()) < 1e-9);
            for (a, b) in blocking.losses().iter().zip(over.losses()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
            let (_, _, nb_ar, _) = over.stats.total_collective_calls();
            assert!(nb_ar > 0, "overlap path used non-blocking all-reduces");
        }
    }

    #[test]
    fn overlap_corruption_rolls_back_and_replays_to_the_same_result() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = FtTrainConfig {
            overlap: true,
            ..cfg(6)
        };
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // Bucketing fuses the per-layer ∆W all-reduces, so this link
        // carries fewer (larger) messages than in the blocking run —
        // corrupt an earlier one.
        let plan = FaultPlan::new(9).corrupt_nth(1, 2, 20);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "nobody died");
        assert_eq!(faulty.stats.total_corrupt_detected(), 1);
        assert!(faulty.stats.total_aborts() >= 1);
        assert!(max_weight_diff(&clean.weights(), &faulty.weights()) < 1e-12);
        assert_eq!(clean.losses(), faulty.losses());
        let r = &faulty.survivors()[0].recoveries;
        assert_eq!(r.len(), 1);
        assert!(
            r[0].comm_wait_secs.is_finite() && r[0].comm_wait_secs >= 0.0,
            "exposed drain wait recorded at recovery"
        );
    }

    #[test]
    fn abft_run_is_bit_identical_to_undefended_on_clean_machines() {
        // Verification only reads: with no faults, the whole training
        // trajectory is bit-identical with ABFT on or off. Only the
        // virtual clock differs (checksum FLOPs are charged).
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let off = train_1p5d_ft(&net, &x, &labels, &cfg(6), 2, 3, FaultPlan::default());
        let c_on = FtTrainConfig {
            abft: true,
            ..cfg(6)
        };
        let on = train_1p5d_ft(&net, &x, &labels, &c_on, 2, 3, FaultPlan::default());
        assert_eq!(max_weight_diff(&off.weights(), &on.weights()), 0.0);
        assert_eq!(off.losses(), on.losses());
        assert_eq!(on.stats.total_corrupt_detected(), 0);
        assert!(
            on.stats.makespan() > off.stats.makespan(),
            "ABFT overhead lands on the virtual clock"
        );
    }

    #[test]
    fn abft_corrects_compute_flip_with_zero_rollbacks() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = FtTrainConfig {
            abft: true,
            ..cfg(6)
        };
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // One high mantissa bit in rank 3's layer-1 forward GEMM output
        // at iteration 2.
        let plan = FaultPlan::new(13).bitflip_compute(3, 2, 1, 51);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6);
        assert_eq!(faulty.stats.total_bitflips_compute(), 1, "flip injected");
        assert_eq!(
            faulty.stats.total_corrupt_corrected(),
            1,
            "repaired in place"
        );
        assert_eq!(faulty.stats.total_corrupt_recovered(), 0);
        assert_eq!(faulty.stats.total_aborts(), 0, "no escalation");
        assert_eq!(
            faulty.stats.max_recovery_secs(),
            0.0,
            "zero checkpoint restores"
        );
        assert!(faulty.survivors()[0].recoveries.is_empty());
        // Correction recomputes the exact kernel output: the entire
        // trajectory is bit-identical to the fault-free run.
        assert_eq!(max_weight_diff(&clean.weights(), &faulty.weights()), 0.0);
        assert_eq!(clean.losses(), faulty.losses());
    }

    #[test]
    fn multi_element_gemm_flip_escalates_to_rollback() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = FtTrainConfig {
            abft: true,
            ..cfg(6)
        };
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // Two flips on the same GEMM: the 1×1 location pattern fails,
        // so ABFT cannot correct and must escalate.
        let plan = FaultPlan::new(13)
            .bitflip_compute(1, 3, 0, 50)
            .bitflip_compute(1, 3, 0, 53);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "nobody died");
        assert_eq!(faulty.stats.total_bitflips_compute(), 2);
        assert_eq!(faulty.stats.total_corrupt_corrected(), 0);
        assert_eq!(faulty.stats.total_corrupt_recovered(), 1, "escalated once");
        assert!(faulty.stats.total_aborts() >= 1);
        assert!(faulty.stats.max_recovery_secs() > 0.0, "rollback charged");
        let r = &faulty.survivors()[0].recoveries;
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].pr, r[0].pc), (2, 3), "transient fault: no shrink");
        // Replay from the checkpoint is exact.
        assert_eq!(max_weight_diff(&clean.weights(), &faulty.weights()), 0.0);
        assert_eq!(clean.losses(), faulty.losses());
    }

    #[test]
    fn memory_flip_triggers_weight_audit_rollback() {
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = FtTrainConfig {
            abft: true,
            ..cfg(6)
        };
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // A bit flips in rank 2's resident weights before iteration 3.
        let plan = FaultPlan::new(13).bitflip_memory(2, 3, 1234, 48);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "nobody died");
        assert_eq!(faulty.stats.total_bitflips_memory(), 1, "flip injected");
        assert_eq!(
            faulty.stats.total_corrupt_recovered(),
            1,
            "weight audit escalated"
        );
        assert_eq!(faulty.stats.total_corrupt_corrected(), 0);
        assert!(faulty.stats.max_recovery_secs() > 0.0, "rollback charged");
        assert_eq!(faulty.survivors()[0].recoveries.len(), 1);
        // The corrupted shard was discarded for checkpoint state and
        // the replay (spend-once flips) is clean.
        assert_eq!(max_weight_diff(&clean.weights(), &faulty.weights()), 0.0);
        assert_eq!(clean.losses(), faulty.losses());
    }

    #[test]
    fn flips_without_abft_silently_diverge() {
        // The known-bad control: same faults, defense off — training
        // completes with no detection and a different trajectory. This
        // is exactly what the chaos oracle's no-silent-divergence
        // invariant flags.
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6); // abft: false
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        let plan = FaultPlan::new(13).bitflip_compute(3, 2, 1, 51);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "run completes normally");
        assert_eq!(faulty.stats.total_bitflips_compute(), 1);
        assert_eq!(faulty.stats.total_corrupt_detected(), 0, "nobody noticed");
        assert_eq!(faulty.stats.max_recovery_secs(), 0.0, "no rollback either");
        assert!(
            max_weight_diff(&clean.weights(), &faulty.weights()) > 0.0,
            "weights silently diverged"
        );
    }

    #[test]
    fn back_to_back_corruption_replays_twice_to_loss_parity() {
        // Two payload corruptions in consecutive iterations: each must
        // trigger its own rollback, and the doubly-replayed trajectory
        // must still match the clean run.
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let c = cfg(6);
        let clean = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, FaultPlan::default());
        // nth=40 lands in iteration ~3 (see
        // corruption_rolls_back_and_replays_to_the_same_result);
        // nth=100 hits the link again one committed iteration after the
        // first replay, forcing a second, distinct rollback.
        let plan = FaultPlan::new(9)
            .corrupt_nth(1, 2, 40)
            .corrupt_nth(1, 2, 100);
        let faulty = train_1p5d_ft(&net, &x, &labels, &c, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6, "nobody died");
        assert_eq!(faulty.stats.total_corrupt_detected(), 2);
        assert_eq!(faulty.stats.total_corrupt_recovered(), 2, "both escalated");
        let r = &faulty.survivors()[0].recoveries;
        assert_eq!(r.len(), 2, "two distinct rollbacks");
        assert!(
            r[0].rollback_iter < r[1].rollback_iter,
            "the second fault hit after the first replay committed"
        );
        assert!(max_weight_diff(&clean.weights(), &faulty.weights()) < 1e-12);
        for (a, b) in clean.losses().iter().zip(faulty.losses()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn plan_bucket_words_threads_through_to_flush_count() {
        // Satellite (b): FtTrainConfig.plan.bucket_words replaces the
        // old hardcoded bucket size. A tiny cap must fuse fewer grads
        // per bucket and hence launch more non-blocking all-reduces.
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let base = FtTrainConfig {
            overlap: true,
            ..cfg(4)
        };
        let tiny = FtTrainConfig {
            plan: OverlapPlan {
                bucket_words: 16,
                ..base.plan
            },
            ..base
        };
        let big = train_1p5d_ft(&net, &x, &labels, &base, 2, 3, FaultPlan::default());
        let small = train_1p5d_ft(&net, &x, &labels, &tiny, 2, 3, FaultPlan::default());
        let (_, _, nb_big, _) = big.stats.total_collective_calls();
        let (_, _, nb_small, _) = small.stats.total_collective_calls();
        assert!(
            nb_small > nb_big,
            "16-word buckets should flush more often ({nb_small} vs {nb_big})"
        );
        // Bucket size only changes fusion, not the math.
        assert!(max_weight_diff(&big.weights(), &small.weights()) < 1e-9);
    }

    #[test]
    fn prefetch_ft_run_matches_blocking_forward() {
        // Pipelined forward all-gathers re-associate the row-sum by
        // ring-arrival order: same trajectory up to a few ulps.
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let base = FtTrainConfig {
            overlap: true,
            ..cfg(6)
        };
        let pf = FtTrainConfig {
            plan: OverlapPlan {
                fwd_prefetch: true,
                dx_overlap: true,
                ..base.plan
            },
            ..base
        };
        let blocking = train_1p5d_ft(&net, &x, &labels, &base, 2, 3, FaultPlan::default());
        let over = train_1p5d_ft(&net, &x, &labels, &pf, 2, 3, FaultPlan::default());
        assert_eq!(over.survivors().len(), 6);
        assert!(max_weight_diff(&blocking.weights(), &over.weights()) < 1e-9);
        for (a, b) in blocking.losses().iter().zip(over.losses()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        let (_, _, _, nb_ag) = over.stats.total_collective_calls();
        assert!(nb_ag > 0, "prefetch path launched non-blocking all-gathers");
    }

    #[test]
    fn abft_silently_disables_forward_prefetch() {
        // ABFT checksum verification needs the whole gathered operand
        // before the GEMM, so prefetch is gated off: an abft run with
        // fwd_prefetch requested is bit-identical to one without.
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let plain = FtTrainConfig {
            overlap: true,
            abft: true,
            ..cfg(4)
        };
        let pf = FtTrainConfig {
            plan: OverlapPlan {
                fwd_prefetch: true,
                ..plain.plan
            },
            ..plain
        };
        let a = train_1p5d_ft(&net, &x, &labels, &plain, 2, 3, FaultPlan::default());
        let b = train_1p5d_ft(&net, &x, &labels, &pf, 2, 3, FaultPlan::default());
        assert_eq!(max_weight_diff(&a.weights(), &b.weights()), 0.0);
        assert_eq!(a.losses(), b.losses());
        assert_eq!(
            a.stats.makespan(),
            b.stats.makespan(),
            "gated prefetch leaves the virtual clock untouched"
        );
    }

    #[test]
    fn dx_overlap_ft_is_bit_identical_and_survives_corruption() {
        // ∆X overlap reorders only the launch, not the arithmetic.
        let net = mlp_tiny();
        let (x, labels) = synthetic_data(&net, 24, 5);
        let base = FtTrainConfig {
            overlap: true,
            ..cfg(6)
        };
        let dx = FtTrainConfig {
            plan: OverlapPlan {
                dx_overlap: true,
                ..base.plan
            },
            ..base
        };
        let a = train_1p5d_ft(&net, &x, &labels, &base, 2, 3, FaultPlan::default());
        let b = train_1p5d_ft(&net, &x, &labels, &dx, 2, 3, FaultPlan::default());
        assert_eq!(max_weight_diff(&a.weights(), &b.weights()), 0.0);
        assert_eq!(a.losses(), b.losses());
        // And the rollback machinery still recovers a corrupted payload
        // with the reordered message sequence.
        let plan = FaultPlan::new(9).corrupt_nth(1, 2, 20);
        let faulty = train_1p5d_ft(&net, &x, &labels, &dx, 2, 3, plan);
        assert_eq!(faulty.survivors().len(), 6);
        assert_eq!(faulty.stats.total_corrupt_detected(), 1);
        assert!(max_weight_diff(&b.weights(), &faulty.weights()) < 1e-12);
    }

    #[test]
    fn plan_grid_prefers_integrated_over_pure_batch_for_big_weights() {
        // A weight-heavy stack: Eq. 8 favours pr > 1 (the ∆W all-reduce
        // shrinks by pr).
        let net = dnn::zoo::mlp("m", &[64, 256, 256, 10]);
        let wl = net.weighted_layers();
        let (pr, pc) = plan_grid(&wl, 16.0, 8, &MachineModel::cori_knl());
        assert_eq!(pr * pc, 8);
        assert!(
            pr > 1,
            "weight-heavy nets want model parallelism, got {pr}x{pc}"
        );
    }
}
