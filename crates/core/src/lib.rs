//! # integrated — the paper's contribution
//!
//! Communication-cost models (Eqs. 3–9), the compute and memory models,
//! the `Pr × Pc` strategy optimizer, the comm/compute overlap model
//! (Fig. 8), the 1.5D-vs-SUMMA analysis (§4 Discussion), and an
//! executable distributed-SGD trainer over `mpsim`/`distmm` validated
//! against both serial numerics and the closed-form costs.

// Index-based loops are the clearest way to write rank/block index
// arithmetic; the clippy suggestions (iterators, is_multiple_of) obscure
// the correspondence with the paper's formulas.
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]
pub mod bounds;
pub mod chaos;
pub mod cnn;
pub mod compute;
pub mod cost;
pub mod data;
pub mod epochs;
pub mod ft_trainer;
pub mod machine;
pub mod memory;
pub mod mixed;
pub mod optimizer;
pub mod overlap;
pub mod report;
pub mod strategy;
pub mod summa_analysis;
pub mod trainer;

pub use machine::MachineModel;
pub use strategy::{LayerParallelism, Strategy};
