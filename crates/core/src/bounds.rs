//! Communication lower bounds and the closed-form optimal grid.
//!
//! The paper's conclusion: "This explicit connection between parallel
//! matrix algorithms and DNN training has the potential to enable the
//! discovery of new classes of parallel algorithms and **lower bounds**
//! for training DNNs." This module takes that step:
//!
//! * [`matmul_words_lower_bound`] — the memory-dependent
//!   Irony–Toledo–Tiskin bound for one `m × k × n` product: any
//!   schedule on `P` processes with `M` words of memory each moves at
//!   least `mkn / (2√2 · P · √M) − M` words per process;
//! * [`layer_lower_bound`] — the bound summed over a layer's three
//!   training products (the paper's forward, `∆W`, `∆X`);
//! * [`optimal_pr_continuous`] — minimizing the Eq. 8 bandwidth terms
//!   over a continuous `Pr` gives
//!   `Pr* = √(2·Σ|W| · P / (B · Σ(d_i + 2·d_{i−1})))` — a closed form
//!   for where the integrated optimum sits, which the exhaustive sweep
//!   lands next to (tests pin the agreement to the power-of-two
//!   rounding).

use dnn::WeightedLayer;

/// Irony–Toledo–Tiskin memory-dependent lower bound: words each
/// process must move for a dense `m × k × n` product with local memory
/// `M` words. Returns 0 when the memory is large enough to hold the
/// whole problem (no communication provably required).
pub fn matmul_words_lower_bound(m: f64, k: f64, n: f64, p: f64, mem_words: f64) -> f64 {
    let bound = m * k * n / (2.0 * 2.0f64.sqrt() * p * mem_words.sqrt()) - mem_words;
    bound.max(0.0)
}

/// The bound summed over a training step's three products for one
/// layer. The iteration-space volume (number of scalar multiplies) is
/// read from the layer's FLOP count, so convolutional layers get their
/// true (weight-sharing) volume rather than the dense `d_i·d_{i−1}·B`
/// one; the bound applies per product, and a training step runs three
/// products of equal volume (forward, `∆W`, `∆X`).
pub fn layer_lower_bound(l: &WeightedLayer, b: f64, p: f64, mem_words: f64) -> f64 {
    let volume = l.forward_flops_per_sample() * b / 2.0; // multiplies, not FLOPs
    3.0 * (volume / (2.0 * 2.0f64.sqrt() * p * mem_words.sqrt()) - mem_words).max(0.0)
}

/// The continuous minimizer of the Eq. 8 bandwidth terms over `Pr`
/// (with `Pc = P/Pr`), dropping the `(x−1)/x` factors:
///
/// ```text
/// words(Pr) ≈ (B·Pr/P)·Σ(d_i + 2·d_{i−1}) + 2·Σ|W|/Pr
/// ⇒ Pr* = √( 2·Σ|W|·P / (B·Σ(d_i + 2·d_{i−1})) )
/// ```
///
/// clamped to `[1, P]`. The first weighted layer contributes no
/// `d_{i−1}` term (no ∆X all-reduce past layer 1), matching Eq. 8.
pub fn optimal_pr_continuous(layers: &[WeightedLayer], b: f64, p: usize) -> f64 {
    let sum_w: f64 = layers.iter().map(|l| l.weights as f64).sum();
    let sum_act: f64 = layers
        .iter()
        .enumerate()
        .map(|(idx, l)| l.d_out() as f64 + if idx > 0 { 2.0 * l.d_in() as f64 } else { 0.0 })
        .sum();
    if sum_act == 0.0 || b == 0.0 {
        return p as f64;
    }
    (2.0 * sum_w * p as f64 / (b * sum_act))
        .sqrt()
        .clamp(1.0, p as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::integrated_model_batch;
    use dnn::zoo::{alexnet, mlp};

    #[test]
    fn bound_vanishes_with_unbounded_memory() {
        assert_eq!(matmul_words_lower_bound(1e3, 1e3, 1e3, 8.0, 1e12), 0.0);
    }

    #[test]
    fn bound_grows_as_memory_shrinks() {
        let b1 = matmul_words_lower_bound(4096.0, 4096.0, 2048.0, 64.0, 1e4);
        let b2 = matmul_words_lower_bound(4096.0, 4096.0, 2048.0, 64.0, 1e3);
        assert!(b2 > b1, "{b2} vs {b1}");
        assert!(b1 > 0.0);
    }

    #[test]
    fn achieved_volumes_respect_the_bound() {
        // Our Eq. 8 per-process words for any grid must sit above the
        // per-layer lower bound at the memory that grid actually uses.
        let net = alexnet();
        let layers = net.weighted_layers();
        let b = 2048.0;
        let p = 512usize;
        for pr in [1usize, 8, 64, 512] {
            let pc = p / pr;
            let cost = integrated_model_batch(&layers, b, pr, pc);
            for (l, lc) in layers.iter().zip(&cost.layers) {
                // Memory this schedule uses for the layer (weights
                // shard + replicated activations).
                let mem = l.weights as f64 / pr as f64
                    + 2.0 * (l.d_in() + l.d_out()) as f64 * b / pc as f64;
                let lower = layer_lower_bound(l, b, p as f64, mem);
                let achieved = lc.cost.total().words;
                assert!(
                    achieved + 1e-9 >= lower,
                    "{} at {pr}x{pc}: achieved {achieved} < bound {lower}",
                    l.name
                );
            }
        }
    }

    #[test]
    fn continuous_optimum_matches_discrete_sweep() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = crate::machine::MachineModel::cori_knl();
        let b = 2048.0;
        let p = 512usize;
        let pr_star = optimal_pr_continuous(&layers, b, p);
        // Discrete argmin over power-of-two grids (bandwidth-only:
        // compare words).
        let best_pr = (0..=9)
            .map(|k| 1usize << k)
            .min_by(|&a, &c| {
                let wa = integrated_model_batch(&layers, b, a, p / a).total.total();
                let wc = integrated_model_batch(&layers, b, c, p / c).total.total();
                m.seconds(wa).partial_cmp(&m.seconds(wc)).expect("finite")
            })
            .expect("non-empty");
        // The continuous optimum is within one power-of-two step of the
        // discrete winner.
        let ratio = pr_star / best_pr as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "continuous Pr* = {pr_star:.1}, discrete best = {best_pr}"
        );
    }

    #[test]
    fn weight_heavy_networks_prefer_larger_pr() {
        let heavy = mlp("heavy", &[4096, 4096, 4096]);
        let light = mlp("light", &[64, 64, 64]);
        let ph = optimal_pr_continuous(&heavy.weighted_layers(), 256.0, 256);
        let pl = optimal_pr_continuous(&light.weighted_layers(), 256.0, 256);
        assert!(ph > pl, "heavy {ph} vs light {pl}");
    }

    #[test]
    fn clamped_to_valid_range() {
        let net = mlp("m", &[8, 8]);
        let layers = net.weighted_layers();
        assert!(optimal_pr_continuous(&layers, 1e9, 16) >= 1.0);
        assert!(optimal_pr_continuous(&layers, 1e-9, 16) <= 16.0);
    }
}
