//! The integrated costs: Eq. 8 (model+batch, 1.5D) and Eq. 9
//! (model+batch+domain with a per-layer assignment).

use collectives::cost::{ceil_log2, frac, CostTerms};
use dnn::WeightedLayer;

use super::{CommCost, CostBreakdown};
use crate::machine::MachineModel;
use crate::strategy::LayerParallelism;

/// Eq. 8 — integrated model+batch parallelism on a `Pr × Pc` grid with
/// global batch `b`:
///
/// ```text
///   Σ_{i=1..L} (α⌈log Pr⌉ + β·(B/Pc)·(Pr−1)/Pr·d_i)
/// + 2·Σ_{i=2..L} (α⌈log Pr⌉ + β·(B/Pc)·(Pr−1)/Pr·d_{i−1})
/// + 2·Σ_i (α⌈log Pc⌉ + β·(Pc−1)/Pc·|W_i|/Pr)
/// ```
///
/// `Pr = 1` reduces to Eq. 4 (pure batch) and `Pc = 1` to Eq. 3 (pure
/// model) — pinned by tests.
pub fn integrated_model_batch(
    layers: &[WeightedLayer],
    b: f64,
    pr: usize,
    pc: usize,
) -> CostBreakdown {
    let mut out = CostBreakdown::default();
    let b_loc = b / pc as f64;
    for (idx, l) in layers.iter().enumerate() {
        let mut c = CommCost::ZERO;
        c.allgather = CostTerms::new(ceil_log2(pr), b_loc * frac(pr) * l.d_out() as f64);
        if idx > 0 {
            c.dx_allreduce = CostTerms::new(
                2.0 * ceil_log2(pr),
                2.0 * b_loc * frac(pr) * l.d_in() as f64,
            );
        }
        c.dw_allreduce = CostTerms::new(
            2.0 * ceil_log2(pc),
            2.0 * frac(pc) * l.weights as f64 / pr as f64,
        );
        out.push(&l.name, c);
    }
    out
}

/// Eq. 8 grid choice for `p` ranks: the divisor pair `(pr, pc)`
/// minimizing the analytic communication time on `machine`, subject to
/// every rank keeping a non-empty weight shard (`pr ≤ min dᵢ`) and a
/// non-empty batch shard (`pc ≤ b`). This is the planner both the
/// strategy search and the elastic trainer's shrink/regrow use, so a
/// regrown grid provably lands back on the same `(pr, pc)` the original
/// plan chose.
pub fn best_grid(
    layers: &[WeightedLayer],
    b: f64,
    p: usize,
    machine: &MachineModel,
) -> (usize, usize) {
    let max_pr = layers.iter().map(|l| l.d_out()).min().unwrap_or(1);
    let mut best = (1, p);
    let mut best_t = f64::INFINITY;
    for pr in 1..=p.min(max_pr) {
        if p % pr != 0 {
            continue;
        }
        let pc = p / pr;
        if pc as f64 > b {
            continue;
        }
        let t = integrated_model_batch(layers, b, pr, pc).seconds(machine);
        if t < best_t {
            best_t = t;
            best = (pr, pc);
        }
    }
    best
}

/// The Eq. 9 cost of a single layer under an explicit parallelism
/// choice. `first_layer` suppresses the ∆X all-reduce (no gradient
/// propagates past layer 1).
pub fn layer_cost(
    l: &WeightedLayer,
    assignment: LayerParallelism,
    b: f64,
    first_layer: bool,
) -> CommCost {
    let mut c = CommCost::ZERO;
    match assignment {
        LayerParallelism::ModelBatch { pr, pc } => {
            let b_loc = b / pc as f64;
            c.allgather = CostTerms::new(ceil_log2(pr), b_loc * frac(pr) * l.d_out() as f64);
            if !first_layer {
                c.dx_allreduce = CostTerms::new(
                    2.0 * ceil_log2(pr),
                    2.0 * b_loc * frac(pr) * l.d_in() as f64,
                );
            }
            c.dw_allreduce = CostTerms::new(
                2.0 * ceil_log2(pc),
                2.0 * frac(pc) * l.weights as f64 / pr as f64,
            );
        }
        LayerParallelism::Domain { pd, pc } => {
            let p = pd * pc;
            let b_loc = b / pc as f64;
            let (kh, kw) = l.halo_kernel();
            // Halos only exist when the domain is actually split.
            if pd > 1 {
                let fwd_rows = (kh / 2) as f64;
                let bwd_rows = (kw / 2) as f64;
                if fwd_rows > 0.0 {
                    c.halo += CostTerms::new(
                        1.0,
                        b_loc * (l.in_shape.w * l.in_shape.c) as f64 * fwd_rows,
                    );
                }
                if bwd_rows > 0.0 {
                    c.halo += CostTerms::new(
                        1.0,
                        b_loc * (l.out_shape.w * l.out_shape.c) as f64 * bwd_rows,
                    );
                }
            }
            // Weights are fully replicated: the ∆W all-reduce spans all
            // P processes at full |W| volume (Eq. 9's last sum).
            c.dw_allreduce = CostTerms::new(2.0 * ceil_log2(p), 2.0 * frac(p) * l.weights as f64);
        }
    }
    c
}

/// Eq. 9 — fully integrated model+batch+domain parallelism: each layer
/// carries its own [`LayerParallelism`] (the paper's `LM`/`LD`
/// partition, generalized to allow per-layer grids as the paper's
/// Figs. 7 and 10 do).
///
/// # Panics
///
/// Panics if `assignments.len() != layers.len()`.
pub fn integrated_full(
    layers: &[WeightedLayer],
    assignments: &[LayerParallelism],
    b: f64,
) -> CostBreakdown {
    assert_eq!(
        layers.len(),
        assignments.len(),
        "one assignment per weighted layer"
    );
    let mut out = CostBreakdown::default();
    for (idx, (l, &a)) in layers.iter().zip(assignments).enumerate() {
        out.push(&l.name, layer_cost(l, a, b, idx == 0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::pure::{pure_batch, pure_domain, pure_model};
    use crate::machine::MachineModel;
    use dnn::zoo::alexnet;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn pr1_reduces_to_pure_batch() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let p = 64;
        let int = integrated_model_batch(&layers, 2048.0, 1, p);
        let batch = pure_batch(&layers, p);
        assert!(close(int.seconds(&m), batch.seconds(&m)));
        assert_eq!(int.total.allgather, CostTerms::ZERO);
    }

    #[test]
    fn pc1_reduces_to_pure_model() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let p = 64;
        let int = integrated_model_batch(&layers, 2048.0, p, 1);
        let model = pure_model(&layers, 2048.0, p);
        assert!(close(int.seconds(&m), model.seconds(&m)));
        assert_eq!(int.total.dw_allreduce, CostTerms::ZERO);
    }

    #[test]
    fn dw_volume_shrinks_by_pr() {
        // The paper: "the all-reduce communication volume is now
        // reduced by a factor of Pr".
        let net = alexnet();
        let layers = net.weighted_layers();
        let b = 2048.0;
        let batch = integrated_model_batch(&layers, b, 1, 512);
        let grid = integrated_model_batch(&layers, b, 16, 32);
        let ratio = batch.total.dw_allreduce.words / grid.total.dw_allreduce.words;
        // (Pc−1)/Pc factors differ slightly: 511/512 vs 31/32.
        let expect = 16.0 * (511.0 / 512.0) / (31.0 / 32.0);
        assert!((ratio - expect).abs() < 1e-9, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn full_with_all_modelbatch_equals_eq8() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let assigns = vec![LayerParallelism::ModelBatch { pr: 8, pc: 64 }; layers.len()];
        let full = integrated_full(&layers, &assigns, 2048.0);
        let eq8 = integrated_model_batch(&layers, 2048.0, 8, 64);
        assert!(close(full.seconds(&m), eq8.seconds(&m)));
    }

    #[test]
    fn full_with_all_domain_pc1_equals_eq7() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let p = 64;
        let assigns = vec![LayerParallelism::Domain { pd: p, pc: 1 }; layers.len()];
        let full = integrated_full(&layers, &assigns, 512.0);
        let eq7 = pure_domain(&layers, 512.0, p);
        assert!(close(full.seconds(&m), eq7.seconds(&m)));
    }

    #[test]
    fn domain_with_pd1_has_no_halo() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let assigns = vec![LayerParallelism::Domain { pd: 1, pc: 64 }; layers.len()];
        let full = integrated_full(&layers, &assigns, 512.0);
        assert_eq!(full.total.halo, CostTerms::ZERO);
    }

    #[test]
    fn mixed_assignment_splits_by_layer_kind() {
        // Fig. 7-style: conv layers pure batch, FC layers on a grid.
        let net = alexnet();
        let layers = net.weighted_layers();
        let assigns: Vec<LayerParallelism> = layers
            .iter()
            .map(|l| {
                if l.is_conv() {
                    LayerParallelism::ModelBatch { pr: 1, pc: 512 }
                } else {
                    LayerParallelism::ModelBatch { pr: 16, pc: 32 }
                }
            })
            .collect();
        let full = integrated_full(&layers, &assigns, 2048.0);
        // Conv layers contribute no all-gather (pr = 1).
        for lc in full.layers.iter().take(5) {
            assert_eq!(lc.cost.allgather, CostTerms::ZERO, "{}", lc.name);
        }
        // FC layers do.
        assert!(full.layers[5].cost.allgather.words > 0.0);
    }

    #[test]
    fn integrated_beats_pure_batch_at_scale() {
        // The paper's headline regime: B=2048, P=512 — an intermediate
        // grid has lower total communication than pure batch.
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let batch = integrated_model_batch(&layers, 2048.0, 1, 512).seconds(&m);
        let best = (0..10)
            .map(|k| 1usize << k)
            .filter(|&pr| 512 % pr == 0)
            .map(|pr| integrated_model_batch(&layers, 2048.0, pr, 512 / pr).seconds(&m))
            .fold(f64::INFINITY, f64::min);
        assert!(best < batch, "best grid {best} vs pure batch {batch}");
    }

    #[test]
    #[should_panic(expected = "one assignment per weighted layer")]
    fn mismatched_assignment_length_panics() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let _ = integrated_full(&layers, &[], 64.0);
    }
}
