//! The pure-strategy costs: Eq. 3 (model), Eq. 4 (batch), Eq. 7
//! (domain), and the Eq. 6 redistribution cost.

use collectives::cost::{ceil_log2, frac, CostTerms};
use dnn::WeightedLayer;

use super::{CommCost, CostBreakdown};

/// Eq. 3 — pure model parallelism over `p` processes with batch `b`:
///
/// ```text
/// Σ_{i=1..L} (α⌈log P⌉ + βB·(P−1)/P·d_i)
///   + 2·Σ_{i=2..L} (α⌈log P⌉ + βB·(P−1)/P·d_{i−1})
/// ```
pub fn pure_model(layers: &[WeightedLayer], b: f64, p: usize) -> CostBreakdown {
    let mut out = CostBreakdown::default();
    for (idx, l) in layers.iter().enumerate() {
        let mut c = CommCost::ZERO;
        c.allgather = CostTerms::new(ceil_log2(p), b * frac(p) * l.d_out() as f64);
        if idx > 0 {
            c.dx_allreduce =
                CostTerms::new(2.0 * ceil_log2(p), 2.0 * b * frac(p) * l.d_in() as f64);
        }
        out.push(&l.name, c);
    }
    out
}

/// Eq. 4 — pure batch parallelism over `p` processes:
///
/// ```text
/// 2·Σ_i (α⌈log P⌉ + β·(P−1)/P·|W_i|)
/// ```
pub fn pure_batch(layers: &[WeightedLayer], p: usize) -> CostBreakdown {
    let mut out = CostBreakdown::default();
    for l in layers {
        let c = CommCost {
            dw_allreduce: CostTerms::new(2.0 * ceil_log2(p), 2.0 * frac(p) * l.weights as f64),
            ..CommCost::ZERO
        };
        out.push(&l.name, c);
    }
    out
}

/// Eq. 7 — pure domain parallelism over `p` processes with batch `b`:
/// per-layer halo exchanges (forward on the input activation with
/// `⌊kh/2⌋` rows, backward on the output activation with `⌊kw/2⌋`
/// rows) plus the same ∆W all-reduce as pure batch. 1×1 convolutions
/// exchange nothing at all (the paper's special case). FC layers get
/// `kh = X_H`, `kw = X_W` — the halo degenerates to (half of) the whole
/// input, which is why domain parallelism is "not applicable to fully
/// connected layers".
pub fn pure_domain(layers: &[WeightedLayer], b: f64, p: usize) -> CostBreakdown {
    let mut out = CostBreakdown::default();
    for l in layers {
        let mut c = CommCost::ZERO;
        let (kh, kw) = l.halo_kernel();
        let fwd_rows = (kh / 2) as f64;
        let bwd_rows = (kw / 2) as f64;
        if fwd_rows > 0.0 {
            c.halo += CostTerms::new(1.0, b * (l.in_shape.w * l.in_shape.c) as f64 * fwd_rows);
        }
        if bwd_rows > 0.0 {
            c.halo += CostTerms::new(1.0, b * (l.out_shape.w * l.out_shape.c) as f64 * bwd_rows);
        }
        c.dw_allreduce = CostTerms::new(2.0 * ceil_log2(p), 2.0 * frac(p) * l.weights as f64);
        out.push(&l.name, c);
    }
    out
}

/// Eq. 6 — cost of redistributing the activations of one layer from a
/// batch distribution to a model distribution:
/// `α⌈log P⌉ + βB·(P−1)/P·d_i`. The paper notes this is asymptotically
/// free next to the model-parallel step that follows (3× larger), so
/// the strategy costs ignore it; it is exposed for the redistribution
/// analysis bench.
pub fn redistribution(d_i: usize, b: f64, p: usize) -> CostTerms {
    CostTerms::new(ceil_log2(p), b * frac(p) * d_i as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use dnn::zoo::{alexnet, mlp};

    #[test]
    fn batch_cost_is_weight_volume() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let p = 64;
        let c = pure_batch(&layers, p);
        let total_w: usize = layers.iter().map(|l| l.weights).sum();
        let expect_words = 2.0 * frac(p) * total_w as f64;
        assert!((c.total.total().words - expect_words).abs() < 1e-6);
        assert_eq!(c.total.allgather, CostTerms::ZERO);
        assert_eq!(c.total.halo, CostTerms::ZERO);
    }

    #[test]
    fn batch_bandwidth_saturates_for_large_p() {
        // Eq. 4: for P ≫ 1 the bandwidth cost is independent of P.
        let net = alexnet();
        let layers = net.weighted_layers();
        let w256 = pure_batch(&layers, 256).total.total().words;
        let w4096 = pure_batch(&layers, 4096).total.total().words;
        assert!((w4096 / w256 - 1.0).abs() < 0.01, "{w256} vs {w4096}");
    }

    #[test]
    fn model_cost_scales_with_batch() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        let c1 = pure_model(&layers, 256.0, 16).seconds(&m);
        let c2 = pure_model(&layers, 512.0, 16).seconds(&m);
        assert!(c2 > 1.9 * c1, "bandwidth term dominates and doubles");
    }

    #[test]
    fn model_first_layer_has_no_dx_allreduce() {
        // Eq. 3's second sum starts at i=2: "we do not need to
        // backpropagate the gradient beyond the first layer".
        let net = mlp("m", &[8, 16, 4]);
        let layers = net.weighted_layers();
        let c = pure_model(&layers, 4.0, 2);
        assert_eq!(c.layers[0].cost.dx_allreduce, CostTerms::ZERO);
        assert!(c.layers[1].cost.dx_allreduce.words > 0.0);
    }

    #[test]
    fn single_process_costs_nothing() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let m = MachineModel::cori_knl();
        assert_eq!(pure_model(&layers, 256.0, 1).seconds(&m), 0.0);
        assert_eq!(pure_batch(&layers, 1).seconds(&m), 0.0);
        assert_eq!(
            pure_domain(&layers, 256.0, 1).total.dw_allreduce,
            CostTerms::ZERO
        );
    }

    #[test]
    fn domain_halo_skips_1x1() {
        use dnn::zoo::resnet18ish;
        let net = resnet18ish();
        let layers = net.weighted_layers();
        let c = pure_domain(&layers, 64.0, 8);
        for lc in &c.layers {
            let l = layers.iter().find(|l| l.name == lc.name).unwrap();
            if l.halo_kernel() == (1, 1) {
                assert_eq!(lc.cost.halo, CostTerms::ZERO, "{}", lc.name);
            }
        }
    }

    #[test]
    fn domain_halo_is_independent_of_p() {
        // Boundary volume per process does not grow with P (only two
        // neighbours), unlike the all-gather of model parallelism.
        let net = alexnet();
        let layers = net.weighted_layers();
        let c8 = pure_domain(&layers, 64.0, 8);
        let c64 = pure_domain(&layers, 64.0, 64);
        assert_eq!(c8.total.halo, c64.total.halo);
    }

    #[test]
    fn fc_domain_halo_is_huge() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let c = pure_domain(&layers, 64.0, 8);
        let fc6 = &c.layers[5];
        let conv5 = &c.layers[4];
        assert!(
            fc6.cost.halo.words > conv5.cost.halo.words,
            "FC halo (whole input) exceeds a 3x3 conv halo"
        );
    }

    #[test]
    fn redistribution_is_a_third_of_model_step() {
        // Eq. 6 discussion: the redistribution is one-third of the
        // subsequent model-parallel per-layer cost (allgather + 2x
        // allreduce of comparable volume).
        let d = 10_000usize;
        let b = 64.0;
        let p = 16;
        let redist = redistribution(d, b, p);
        let model_layer = CostTerms::new(3.0 * ceil_log2(p), 3.0 * b * frac(p) * d as f64);
        assert!((model_layer.words / redist.words - 3.0).abs() < 1e-12);
    }
}
