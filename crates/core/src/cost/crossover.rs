//! Eq. 5 — the model-vs-batch communication-volume crossover for a
//! convolutional layer.
//!
//! ```text
//! volume(batch) / volume(model) = 2·|W_i| / (3·B·d_i)
//!                               = 2·kh·kw·X_C / (3·B·Y_H·Y_W)
//! ```
//!
//! Batch parallelism wins when the ratio is below one, i.e. when
//! `B > 2·kh·kw·X_C / (3·Y_H·Y_W)`. The paper's worked example: AlexNet
//! 3×3 filters on 13×13×384 input activations give a crossover near
//! `B = 12` — "it is not a foregone conclusion that batch parallelism
//! is always favorable".

use dnn::WeightedLayer;

/// The Eq. 5 ratio `Tcomm-volume(batch) / Tcomm-volume(model)` at batch
/// size `b`: `2|W_i| / (3·B·d_i)`. Values below 1 mean batch
/// parallelism moves less data. Defined for FC layers too (the same
/// `2|W|/3Bd` volume argument applies).
pub fn batch_over_model_volume_ratio(l: &WeightedLayer, b: f64) -> f64 {
    2.0 * l.weights as f64 / (3.0 * b * l.d_out() as f64)
}

/// The crossover batch size `B* = 2|W_i| / (3·d_i)`: model parallelism
/// moves less data for `B < B*`, batch parallelism for `B > B*`.
pub fn crossover_batch(l: &WeightedLayer) -> f64 {
    2.0 * l.weights as f64 / (3.0 * l.d_out() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::zoo::alexnet;

    #[test]
    fn alexnet_3x3_on_13x13x384_crosses_near_12() {
        // The paper: "model parallelism has lower communication volume
        // than batch parallelism for B ≤ 12" for this layer (conv4:
        // 3x3x384 filters on 13x13x384).
        let net = alexnet();
        let layers = net.weighted_layers();
        let conv4 = &layers[3];
        assert_eq!(conv4.in_shape.c, 384);
        let b_star = crossover_batch(conv4);
        // 2*3*3*384 / (3*13*13) = 6912/507 ≈ 13.6 — the paper rounds to
        // "B ≤ 12"; check the stated inequality holds at 12 and fails
        // at 14.
        assert!((13.0..15.0).contains(&b_star), "B* = {b_star}");
        assert!(batch_over_model_volume_ratio(conv4, 12.0) > 1.0);
        assert!(batch_over_model_volume_ratio(conv4, 14.0) < 1.0);
    }

    #[test]
    fn fc_layers_favor_model_parallelism_much_longer() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let fc6 = &layers[5];
        // |W| = 9216*4096, d = 4096: B* = 2*9216/3 = 6144.
        assert!((crossover_batch(fc6) - 6144.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_decreases_with_batch() {
        let net = alexnet();
        let layers = net.weighted_layers();
        let l = &layers[1];
        assert!(batch_over_model_volume_ratio(l, 8.0) > batch_over_model_volume_ratio(l, 64.0));
    }

    #[test]
    fn ratio_is_one_at_crossover() {
        let net = alexnet();
        for l in net.weighted_layers() {
            let b_star = crossover_batch(&l);
            let r = batch_over_model_volume_ratio(&l, b_star);
            assert!((r - 1.0).abs() < 1e-12, "{}: {r}", l.name);
        }
    }
}
