//! Communication-cost models — the paper's Eqs. 3–9, implemented
//! exactly as printed.
//!
//! All costs are symbolic [`CostTerms`] (α counts + word counts) per
//! **one SGD iteration**, broken down by collective so reports can
//! reproduce the paper's stacked/hatched bars:
//!
//! * `allgather` — forward activation assembly across the model
//!   dimension (the blocking collective the paper holds against model
//!   parallelism),
//! * `dx_allreduce` — backward activation-gradient all-reduce across
//!   the model dimension,
//! * `dw_allreduce` — weight-gradient all-reduce across the batch
//!   dimension (the *cross-hatched* "batch parallel communication"
//!   portion of the paper's Fig. 6 bars), and
//! * `halo` — domain-parallel boundary exchanges.
//!
//! The paper writes its all-reduce terms with `⌈log₂ P⌉` latency and
//! ring bandwidth (see `collectives::cost::paper_allreduce`); these
//! functions follow the paper's arithmetic so the figure binaries
//! reproduce its numbers.

pub mod crossover;
pub mod integrated;
pub mod pure;

pub use crossover::{batch_over_model_volume_ratio, crossover_batch};
pub use integrated::{best_grid, integrated_full, integrated_model_batch};
pub use pure::{pure_batch, pure_domain, pure_model, redistribution};

use collectives::cost::CostTerms;
use std::ops::{Add, AddAssign};

use crate::machine::MachineModel;

/// Per-iteration communication cost, broken down by collective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommCost {
    /// Forward all-gather across the model dimension.
    pub allgather: CostTerms,
    /// Backward ∆X all-reduce across the model dimension.
    pub dx_allreduce: CostTerms,
    /// ∆W all-reduce across the batch dimension.
    pub dw_allreduce: CostTerms,
    /// Domain-parallel halo exchanges.
    pub halo: CostTerms,
}

impl CommCost {
    /// The zero cost.
    pub const ZERO: CommCost = CommCost {
        allgather: CostTerms::ZERO,
        dx_allreduce: CostTerms::ZERO,
        dw_allreduce: CostTerms::ZERO,
        halo: CostTerms::ZERO,
    };

    /// Sum of all components.
    pub fn total(&self) -> CostTerms {
        self.allgather + self.dx_allreduce + self.dw_allreduce + self.halo
    }

    /// Total seconds on a machine.
    pub fn seconds(&self, m: &MachineModel) -> f64 {
        m.seconds(self.total())
    }

    /// Seconds attributable to the batch-dimension ∆W all-reduce (the
    /// hatched portion of the paper's bars).
    pub fn batch_seconds(&self, m: &MachineModel) -> f64 {
        m.seconds(self.dw_allreduce)
    }

    /// Seconds of communication that occur during backpropagation and
    /// are therefore overlappable in the Fig. 8 model: the two
    /// all-reduces plus the backward halo (here the halo is charged
    /// half-forward, half-backward).
    pub fn backprop_seconds(&self, m: &MachineModel) -> f64 {
        m.seconds(self.dx_allreduce + self.dw_allreduce + self.halo * 0.5)
    }
}

impl Add for CommCost {
    type Output = CommCost;
    fn add(self, o: CommCost) -> CommCost {
        CommCost {
            allgather: self.allgather + o.allgather,
            dx_allreduce: self.dx_allreduce + o.dx_allreduce,
            dw_allreduce: self.dw_allreduce + o.dw_allreduce,
            halo: self.halo + o.halo,
        }
    }
}

impl AddAssign for CommCost {
    fn add_assign(&mut self, o: CommCost) {
        *self = *self + o;
    }
}

/// A per-layer cost entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerComm {
    /// Layer name (`conv3`, `fc7`, …).
    pub name: String,
    /// That layer's contribution.
    pub cost: CommCost,
}

/// A full per-iteration cost breakdown: per-layer entries plus totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostBreakdown {
    /// One entry per weighted layer, in order.
    pub layers: Vec<LayerComm>,
    /// Sum over layers.
    pub total: CommCost,
}

impl CostBreakdown {
    pub(crate) fn push(&mut self, name: &str, cost: CommCost) {
        self.total += cost;
        self.layers.push(LayerComm {
            name: name.to_string(),
            cost,
        });
    }

    /// Total seconds on a machine.
    pub fn seconds(&self, m: &MachineModel) -> f64 {
        self.total.seconds(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let c = CommCost {
            allgather: CostTerms::new(1.0, 10.0),
            dx_allreduce: CostTerms::new(2.0, 20.0),
            dw_allreduce: CostTerms::new(3.0, 30.0),
            halo: CostTerms::new(4.0, 40.0),
        };
        assert_eq!(c.total(), CostTerms::new(10.0, 100.0));
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = CostBreakdown::default();
        let c = CommCost {
            allgather: CostTerms::new(1.0, 5.0),
            ..CommCost::ZERO
        };
        b.push("conv1", c);
        b.push("conv2", c);
        assert_eq!(b.layers.len(), 2);
        assert_eq!(b.total.allgather, CostTerms::new(2.0, 10.0));
    }
}
