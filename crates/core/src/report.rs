//! Minimal aligned-text tables and CSV emission for the experiment
//! binaries, so every figure/table of the paper can be regenerated as
//! the same rows the paper prints.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with an adaptive unit (µs/ms/s).
pub fn fmt_seconds(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s < 1e-3 {
        format!("{:.2}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 3600.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}h", s / 3600.0)
    }
}

/// Formats a speedup factor like the paper's bold annotations ("2.5x").
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["grid", "time"]);
        t.row(vec!["1x512".into(), "81ms".into()]);
        t.row(vec!["16x32".into(), "9ms".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5, "title + header + rule + 2 rows");
        // Both rows align to the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "z".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",z\n");
    }

    #[test]
    fn second_formatting_units() {
        assert_eq!(fmt_seconds(0.0), "0");
        assert_eq!(fmt_seconds(2e-6), "2.00us");
        assert_eq!(fmt_seconds(0.0815), "81.50ms");
        assert_eq!(fmt_seconds(3.5), "3.50s");
        assert_eq!(fmt_seconds(7200.0), "2.00h");
    }

    #[test]
    fn speedup_format() {
        assert_eq!(fmt_speedup(2.53), "2.5x");
    }
}
